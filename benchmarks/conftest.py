"""Shared configuration for the figure-reproduction benchmarks.

Each benchmark regenerates one table or figure from the paper's
evaluation. By default the grids run in *quick* mode (reduced allocation
volume, one seed, a representative workload subset) so the whole
directory finishes in minutes; set ``REPRO_FULL=1`` for the full grids
(every workload, paper-size volumes, two seeds).

Two more environment knobs thread through the parallel/persistent
execution layer (see EXPERIMENTS.md, "Running sweeps in parallel"):

* ``REPRO_JOBS=N`` — fan uncached grid cells out over N worker
  processes (0 = one per CPU). Results are bit-identical to serial.
* ``REPRO_CACHE_DIR=DIR`` — persist completed cells to DIR so repeated
  benchmark invocations skip everything already measured.
"""

import os

import pytest

from repro.sim.cache import ResultCache
from repro.sim.experiment import ExperimentRunner

FULL = os.environ.get("REPRO_FULL", "") == "1"
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", "")

#: Allocation-volume scale factor for quick mode.
QUICK_SCALE = 0.35
#: Representative subset covering the paper's archetypes: small-heavy
#: (sunflow), medium-heavy (pmd, jython), large-heavy (xalan), big live
#: set (hsqldb), generic (antlr).
QUICK_WORKLOADS = ("antlr", "hsqldb", "jython", "pmd", "sunflow", "xalan")
QUICK_HEAPS = (1.5, 2.0, 3.0)


def experiment_scale() -> float:
    return 1.0 if FULL else QUICK_SCALE


def experiment_workloads():
    return None if FULL else QUICK_WORKLOADS  # None -> full suite


def experiment_heaps():
    return (1.25, 1.5, 2.0, 3.0, 4.0, 6.0) if FULL else QUICK_HEAPS


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    seeds = (0, 1) if FULL else (0,)
    cache = ResultCache(CACHE_DIR) if CACHE_DIR else None
    return ExperimentRunner(seeds=seeds, cache=cache, jobs=JOBS)


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
