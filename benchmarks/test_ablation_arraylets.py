"""Ablation (paper section 3.3.3): discontiguous arrays vs perfect pages.

The paper notes that managed runtimes could split large arrays into
arraylets (Sartor et al.'s Z-rays) instead of demanding perfect pages —
the software-only alternative to clustering hardware. This bench pits
the two strategies against each other on the large-object-heavy xalan
across failure rates, also sweeping the arraylet size.
"""

from dataclasses import replace

from conftest import experiment_scale, run_once

from repro.faults.generator import FailureModel
from repro.sim.machine import RunConfig, run_benchmark


def run_sweep():
    scale = experiment_scale()
    base = RunConfig(workload="xalan", heap_multiplier=2.0, scale=scale)
    plain = run_benchmark(base)
    rows = {}
    for rate in (0.0, 0.10, 0.25):
        for arraylets in (False, True):
            config = replace(
                base,
                failure_model=FailureModel(rate=rate),
                arraylets=arraylets,
            )
            result = run_benchmark(config)
            key = (rate, "arraylets" if arraylets else "LOS")
            rows[key] = (
                result.time_units / plain.time_units if result.completed else None,
                result.borrowed_pages,
            )
    return rows


def test_ablation_arraylets(benchmark):
    rows = run_once(benchmark, run_sweep)
    print()
    print("xalan: LOS + perfect pages vs discontiguous arrays")
    print("==================================================")
    for (rate, mode), (ratio, borrowed) in sorted(rows.items()):
        shown = f"{ratio:.3f}" if ratio is not None else "DNF"
        print(f"  {rate:4.0%} failures, {mode:9s}: time {shown:>6s}, "
              f"{borrowed:5d} pages borrowed")
    # Arraylets must eliminate most DRAM borrowing under failures
    # (their whole point: no perfect pages needed for arrays).
    _, los_borrow = rows[(0.10, "LOS")]
    _, arraylet_borrow = rows[(0.10, "arraylets")]
    assert arraylet_borrow < los_borrow
    # And their access tax shows even without failures (Sartor: <13 %).
    clean_ratio, _ = rows[(0.0, "arraylets")]
    if clean_ratio is not None:
        assert 1.0 < clean_ratio < 1.15
