"""Ablation (paper section 3.3.3): OS failure-map granularity.

The failure map may use coarser granularities that trade less metadata
storage for less available memory as failures accrue. This bench
quantifies that trade-off at a 10 % failure rate.
"""

from dataclasses import replace

from conftest import experiment_scale, experiment_workloads, run_once

from repro.faults.generator import FailureModel
from repro.hardware.geometry import Geometry
from repro.sim.machine import RunConfig


def run_sweep(runner):
    workloads = experiment_workloads() or ()
    if not workloads:
        from repro.workloads.dacapo import analysis_suite

        workloads = tuple(spec.name for spec in analysis_suite())
    scale = experiment_scale()
    baseline = RunConfig(workload="antlr", heap_multiplier=2.0, scale=scale)
    geometry = Geometry()
    rows = {}
    for granularity_lines in (1, 4, 16, 64):  # 64 B .. whole 4 KB page
        config = replace(
            baseline,
            failure_model=FailureModel(
                rate=0.10,
                hw_region_pages=2,
                map_granularity_lines=granularity_lines,
            ),
        )
        value = runner.normalized_geomean(list(workloads), config, baseline)
        rows[granularity_lines * geometry.pcm_line] = value
    return rows


def test_ablation_map_granularity(runner, benchmark):
    rows = run_once(benchmark, run_sweep, runner)
    print()
    print("OS failure-map granularity at 10% failures + 2CL")
    print("================================================")
    for granularity_bytes, value in sorted(rows.items()):
        shown = f"{value:.3f}" if value is not None else "DNF"
        print(f"  {granularity_bytes:5d} B map granularity: {shown}")
    values = [v for v in rows.values() if v is not None]
    assert values, "at least one granularity must complete"
    fine = rows[64]
    coarse = rows[4096]
    # Coarser maps lose more memory, so they can only be worse.
    if fine is not None and coarse is not None:
        assert coarse >= fine * 0.98
