"""Ablation (paper section 7.3): clustering-region size.

The paper argues two-page regions are the sweet spot: one-page regions
never produce whole perfect pages, while larger regions "quickly
degenerate to the two-page case" and add redirection-map pressure. This
bench sweeps the region size at a fixed failure rate.
"""

from dataclasses import replace

from conftest import FULL, experiment_scale, experiment_workloads, run_once

from repro.faults.generator import FailureModel
from repro.sim.machine import RunConfig


def run_sweep(runner):
    workloads = experiment_workloads() or ()
    if not workloads:
        from repro.workloads.dacapo import analysis_suite

        workloads = tuple(spec.name for spec in analysis_suite())
    scale = experiment_scale()
    baseline = RunConfig(workload="antlr", heap_multiplier=2.0, scale=scale)
    rows = {}
    for region_pages in (1, 2, 4):
        for rate in (0.25, 0.50):
            config = replace(
                baseline,
                failure_model=FailureModel(rate=rate, hw_region_pages=region_pages),
            )
            value = runner.normalized_geomean(list(workloads), config, baseline)
            rows[(region_pages, rate)] = value
    return rows


def test_ablation_region_size(runner, benchmark):
    rows = run_once(benchmark, run_sweep, runner)
    print()
    print("Clustering-region size (geomean overhead vs unmodified S-IX)")
    print("=============================================================")
    for (region_pages, rate), value in sorted(rows.items()):
        shown = f"{value:.3f}" if value is not None else "DNF"
        print(f"  {region_pages}-page regions at {rate:.0%} failures: {shown}")
    # Two-page clustering should beat one-page at 50% (perfect pages).
    one, two = rows[(1, 0.50)], rows[(2, 0.50)]
    if one is not None and two is not None:
        assert two <= one * 1.03
    # Four-page regions should be roughly comparable to two-page
    # (the paper: larger regions degenerate to the two-page case).
    four = rows[(4, 0.50)]
    if two is not None and four is not None:
        assert abs(four - two) < 0.15
