"""Ablation (paper section 7.2): is wear leveling helpful or harmful?

The paper argues wear leveling — accepted hardware wisdom — becomes
harmful once failures start, because uniformly spread failures maximize
fragmentation; and that failure-aware software plus retirement of the
first failing lines is the better strategy. This bench ages one module
per configuration and reports lifetime and endurance utilization. It
also reproduces the abstract's motivating number: page-grained
retirement kills the module when only ~2 % of lines have failed.
"""

import dataclasses

from conftest import FULL, run_once

from repro.hardware.wear_leveling import StartGapWearLeveler
from repro.sim.lifetime import (
    retire_on_first_failure_lifetime,
    run_lifetime,
    write_heavy,
)
from repro.workloads import workload


def _spec():
    spec = write_heavy(workload("avrora"), mutations_per_object=2.0)
    alloc = 4_000_000 if FULL else 1_500_000
    return dataclasses.replace(spec, total_alloc_bytes=alloc)


def run_all():
    spec = _spec()
    cap = 30 if FULL else 15
    endurance = 40.0
    results = {
        "retire page on first failure": retire_on_first_failure_lifetime(
            spec, max_iterations=cap, endurance_mean_writes=endurance
        ),
        "failure-aware, no clustering": run_lifetime(
            spec, clustering=False, max_iterations=cap, endurance_mean_writes=endurance
        ),
        "failure-aware, 2CL": run_lifetime(
            spec, clustering=True, max_iterations=cap, endurance_mean_writes=endurance
        ),
        "failure-aware, start-gap": run_lifetime(
            spec,
            clustering=False,
            wear_leveler=StartGapWearLeveler(gap_write_interval=20),
            max_iterations=cap,
            endurance_mean_writes=endurance,
        ),
    }
    return results


def test_ablation_wear_leveling(benchmark):
    results = run_once(benchmark, run_all)
    print()
    print("Memory lifetime under different wear-management strategies")
    print("==========================================================")
    for label, result in results.items():
        print(
            f"{label:32s} {result.iterations_completed:3d} iterations, "
            f"{result.final_failed_fraction:6.1%} of lines consumed"
        )
    retire = results["retire page on first failure"]
    aware = results["failure-aware, no clustering"]
    # The paper's motivation: page retirement wastes the memory while
    # only a tiny fraction of lines has actually failed...
    assert retire.final_failed_fraction < 0.10
    # ...and failure-aware software runs substantially longer.
    assert aware.iterations_completed >= 2 * retire.iterations_completed
