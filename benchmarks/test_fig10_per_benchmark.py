"""Figure 10: per-benchmark results for 1- and 2-page clustering."""

from conftest import FULL, experiment_scale, run_once

from repro.sim.experiments import figure10


def test_fig10_per_benchmark(runner, benchmark):
    workloads = None if FULL else ("hsqldb", "jython", "pmd", "sunflow", "xalan")
    result = run_once(
        benchmark, figure10, runner, workloads=workloads, scale=experiment_scale()
    )
    print()
    print(result.render())
    rows = {label: values for label, values in result.rows}
    # Columns: 1CL 10/25/50, then 2CL 10/25/50.
    for name, values in rows.items():
        one_cl_50, two_cl_50 = values[2], values[5]
        if one_cl_50 is not None and two_cl_50 is not None:
            assert two_cl_50 <= one_cl_50 * 1.05, (
                f"{name}: 2-page clustering should not lose to 1-page"
            )
    # The paper singles out pmd and jython as sensitive at the 50%
    # two-page threshold: they should show the largest 2CL-50% overheads
    # among the medium-heavy workloads.
    if "pmd" in rows and "sunflow" in rows:
        pmd = rows["pmd"][5]
        sunflow = rows["sunflow"][5]
        if pmd is not None and sunflow is not None:
            assert pmd >= sunflow * 0.95
