"""Figure 3: MS vs Immix vs Sticky variants across heap sizes."""

from conftest import experiment_heaps, experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import figure3


def test_fig3_collectors(runner, benchmark):
    result = run_once(
        benchmark,
        figure3,
        runner,
        heap_multipliers=experiment_heaps(),
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(result.render())
    # Paper shape: the Immix family outperforms the mark-sweep family,
    # most visibly in constrained heaps.
    smallest = min(x for x, _ in result.series["IX"])
    by_name = {name: dict(points) for name, points in result.series.items()}
    ms = by_name["MS"][smallest]
    ix = by_name["IX"][smallest]
    if ms is not None and ix is not None:
        assert ix <= ms, "Immix should not lose to mark-sweep in small heaps"
    # At the largest heap every collector is close to the baseline.
    largest = max(x for x, _ in result.series["IX"])
    for name, points in by_name.items():
        value = points[largest]
        if value is not None:
            assert value < 1.10, f"{name} unexpectedly slow at a large heap"
