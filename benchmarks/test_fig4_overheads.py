"""Figure 4: per-benchmark overhead of failure-aware S-IX + 2-page
clustering at 0/10/25/50 % failures, normalized to unmodified S-IX."""

from conftest import FULL, experiment_scale, run_once

from repro.sim.experiments import figure4


def test_fig4_overheads(runner, benchmark):
    workloads = None if FULL else (
        "antlr", "hsqldb", "jython", "lusearch", "pmd", "sunflow", "xalan"
    )
    result = run_once(
        benchmark, figure4, runner, workloads=workloads, scale=experiment_scale()
    )
    print()
    print(result.render())
    rows = dict((label, values) for label, values in result.rows)
    geomeans = rows["geomean*"]
    # Paper headline: no overhead without failures; ~4 % at 10 %,
    # ~12 % at 50 % with two-page clustering.
    assert geomeans[0] is not None and abs(geomeans[0] - 1.0) < 0.02
    assert geomeans[1] is not None and geomeans[1] < 1.12
    assert geomeans[3] is not None and geomeans[3] < 1.30
    # Overheads grow with the failure rate.
    assert geomeans[3] > geomeans[0]
