"""Figure 5: compensation vs fragmentation at 10 % failures."""

from conftest import experiment_heaps, experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import figure5


def test_fig5_compensation(runner, benchmark):
    result = run_once(
        benchmark,
        figure5,
        runner,
        heap_multipliers=experiment_heaps(),
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(result.render())
    by_name = {name: dict(points) for name, points in result.series.items()}
    heaps = sorted({x for pts in result.series.values() for x, _ in pts})
    mid = heaps[len(heaps) // 2]
    base = by_name["S-IXPCM (no failures)"][mid]
    no_comp = by_name["S-IXPCM 10% NoComp"][mid]
    comp = by_name["S-IXPCM 10%"][mid]
    clustered = by_name["S-IXPCM 10% 2CL"][mid]
    # Paper shape: NoComp worst (less working memory), compensation
    # helps, clustering helps further, none beats the no-failure run.
    if None not in (base, no_comp, comp, clustered):
        assert no_comp >= comp >= clustered >= base * 0.98
