"""Figure 6: the effect of Immix line size, with and without failures."""

from conftest import experiment_heaps, experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import figure6


def test_fig6_line_size(runner, benchmark):
    fig_a, fig_b = run_once(
        benchmark,
        figure6,
        runner,
        heap_multipliers=experiment_heaps(),
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(fig_a.render())
    print()
    print(fig_b.render())
    # Paper shape (6b): with 10 % failures and no clustering, false
    # failures punish the 256 B line hardest.
    heaps = sorted({x for pts in fig_b.series.values() for x, _ in pts})
    for heap in heaps[1:]:
        l64 = dict(fig_b.series["S-IXPCM L64 10%"]).get(heap)
        l256 = dict(fig_b.series["S-IXPCM L256 10%"]).get(heap)
        if l64 is not None and l256 is not None:
            assert l256 >= l64 * 0.98, (
                f"L256 should suffer at least as much as L64 under "
                f"failures (heap {heap})"
            )
