"""Figure 7: failure-rate sweep at a fixed 2x heap, per line size."""

from conftest import FULL, experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import figure7


def test_fig7_failure_sweep(runner, benchmark):
    rates = (
        (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50)
        if FULL
        else (0.0, 0.10, 0.25, 0.50)
    )
    result = run_once(
        benchmark,
        figure7,
        runner,
        rates=rates,
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(result.render())
    # Paper shape: at rate 0 every line size is near 1.0; as the rate
    # rises, larger lines suffer false failures first and curves may
    # terminate (DNF), exactly like the paper's truncated lines.
    for name, points in result.series.items():
        at_zero = dict(points)[0.0]
        assert at_zero is not None and at_zero < 1.06, name
    l256 = dict(result.series["S-IXPCM L256"])
    if l256[0.10] is not None:
        assert l256[0.10] > 1.05, "L256 should visibly degrade at 10%"
