"""Figure 8: the failure-clustering granularity limit study."""

from conftest import FULL, experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import figure8


def test_fig8_clustering_limit(runner, benchmark):
    granularities = (
        (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384)
        if FULL
        else (64, 256, 1024, 4096, 16384)
    )
    result = run_once(
        benchmark,
        figure8,
        runner,
        granularities=granularities,
        rates=(0.10, 0.25, 0.50),
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(result.render())
    # Paper shape: coarser failure clusters dramatically reduce the
    # penalty; the fine-granularity end of the 25 %/50 % curves may not
    # run at all (the paper's curves start at 128 B for that reason).
    for name, points in result.series.items():
        values = [v for _, v in points if v is not None]
        assert values, f"no clustering granularity completed for {name}"
        finest_done = min(x for x, v in points if v is not None)
        coarsest = max(x for x, _ in points)
        fine_v = dict(points)[finest_done]
        coarse_v = dict(points)[coarsest]
        assert coarse_v <= fine_v * 1.02, (
            f"{name}: coarser clustering should not be slower "
            f"({fine_v:.3f} -> {coarse_v:.3f})"
        )
