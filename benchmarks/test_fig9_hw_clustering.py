"""Figure 9: proposed clustering hardware — performance and demand."""

from conftest import FULL, experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import figure9


def test_fig9_hw_clustering(runner, benchmark):
    line_sizes = (64, 128, 256) if FULL else (64, 256)
    fig_a, fig_b = run_once(
        benchmark,
        figure9,
        runner,
        line_sizes=line_sizes,
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(fig_a.render())
    print()
    print(fig_b.render())
    # Paper shape, performance: at every failure rate, hardware
    # clustering beats no clustering, and two-page clustering is at
    # least as good as one-page.
    perf = {name: dict(points) for name, points in fig_a.series.items()}
    for rate in (0.10, 0.50):
        unclustered = perf["L256"].get(rate)
        one_page = perf["L256 1CL"].get(rate)
        two_page = perf["L256 2CL"].get(rate)
        assert two_page is not None, "2CL must complete everywhere"
        if one_page is not None:
            assert two_page <= one_page * 1.03
        if unclustered is not None:
            assert two_page <= unclustered * 1.02
    # Paper shape, demand: clustering greatly reduces perfect-page
    # borrowing (fig 9b reports demand; our borrow counts mirror it).
    demand = {name: dict(points) for name, points in fig_b.series.items()}
    unclustered_demand = demand["L256"].get(0.10)
    clustered_demand = demand["L256 2CL"].get(0.10)
    if unclustered_demand is not None and clustered_demand is not None:
        assert clustered_demand <= unclustered_demand
