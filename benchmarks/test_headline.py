"""Abstract / section 8 headline numbers.

Paper: zero overhead with no failures; without clustering hardware
~17 % at 10 % failed lines (and failure-to-run at 25 %+ with 256 B
lines); with two-page clustering 3.9 % at 10 % and 12.4 % at 50 %.
"""

from conftest import experiment_scale, experiment_workloads, run_once

from repro.sim.experiments import headline


def test_headline(runner, benchmark):
    result = run_once(
        benchmark,
        headline,
        runner,
        workloads=experiment_workloads(),
        scale=experiment_scale(),
    )
    print()
    print(result.render())
    rows = {label: values[0] for label, values in result.rows}
    no_failures = rows["no failures, failure-aware"]
    assert no_failures is not None and abs(no_failures - 1.0) < 0.02, (
        "failure awareness must be free when nothing fails"
    )
    clustered_10 = rows["10% + 2-page clustering"]
    clustered_50 = rows["50% + 2-page clustering"]
    assert clustered_10 is not None and clustered_10 < 1.10
    assert clustered_50 is not None and clustered_50 < 1.25
    unclustered_10 = rows["10% unclustered"]
    if unclustered_10 is not None:
        # Clustering hardware must pay for itself.
        assert clustered_10 < unclustered_10
