"""Hot-path kernel microbenchmarks (pytest-benchmark rig).

Times each vectorized kernel against its retained pure-Python
reference on the same deterministic synthetic inputs the ``repro
microbench`` subcommand uses, and asserts both the output identity and
the speedups the kernel overhaul claims. Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -q

The thresholds are deliberately looser than locally measured numbers
(shared CI machines jitter); bit-identity is exact.
"""

import pytest

from repro.hardware.geometry import Geometry
from repro.heap import line_table
from repro.heap.heap_table import HeapTable
from repro.sim.microbench import (
    MULTI_LINE_OBJECT_SIZES,
    bench_kernels,
    build_synthetic_block,
    build_synthetic_failure_table,
    synthetic_line_tables,
)


@pytest.fixture(autouse=True)
def _fast_kernels():
    previous = line_table.set_kernel_mode("fast")
    yield
    line_table.set_kernel_mode(previous)


@pytest.fixture(scope="module")
def tables():
    geometry = Geometry(immix_line=64)  # 512-line tables: the big case
    return list(synthetic_line_tables(geometry.immix_lines_per_block).values())


def test_free_runs(benchmark, tables):
    benchmark(lambda: [line_table.free_runs(t) for t in tables])
    for table in tables:
        assert line_table.free_runs(table) == line_table.free_runs_reference(table)


def test_fragmentation_index(benchmark, tables):
    benchmark(lambda: [line_table.fragmentation_index(t) for t in tables])
    for table in tables:
        assert line_table.fragmentation_index(
            table
        ) == line_table.fragmentation_index_reference(table)


def test_sweep_small_objects(benchmark):
    block = build_synthetic_block(Geometry(), seed=0)
    benchmark(lambda: block.rebuild_line_marks(1))


def test_sweep_multi_line_objects(benchmark):
    block = build_synthetic_block(
        Geometry(immix_line=64), seed=0, object_sizes=MULTI_LINE_OBJECT_SIZES
    )
    benchmark(lambda: block.rebuild_line_marks(1))


def test_cached_free_runs(benchmark):
    block = build_synthetic_block(Geometry(), seed=0)
    benchmark(block.free_runs)


def test_failure_table_decode(benchmark):
    table = build_synthetic_failure_table(Geometry(), seed=0)
    pages = table.imperfect_pages()

    def decode():
        table.failed_line_count()
        table.compressed_size_bytes()
        for page in pages:
            table.failed_offsets(page)

    benchmark(decode)


def shared_heap(n_blocks=16):
    table = HeapTable(Geometry())
    blocks = [
        build_synthetic_block(Geometry(), seed=i, table=table, virtual_index=i)
        for i in range(n_blocks)
    ]
    return table, blocks


def test_heap_scan(benchmark):
    table, _ = shared_heap()

    def scan():
        table.touch()
        table.free_line_count()
        table.failed_line_count()
        return table.slots_with_free_lines()

    benchmark(scan)


def test_heap_sweep_shared_table(benchmark):
    _, blocks = shared_heap(8)
    benchmark(lambda: [block.rebuild_line_marks(1) for block in blocks])


def test_result_codec_round_trip(benchmark):
    from repro.faults.generator import FailureModel
    from repro.sim.machine import RunConfig, run_benchmark
    from repro.sim.transport import decode_result, encode_result

    result = run_benchmark(
        RunConfig(workload="luindex", scale=0.05, seed=0,
                  failure_model=FailureModel(rate=0.25))
    )
    benchmark(lambda: decode_result(encode_result(result)))


def test_kernel_speedups_and_identity():
    """The microbench suite itself: identity is exact, speedups hold."""
    entries = {e["kernel"]: e for e in bench_kernels(iterations=200)}
    assert all(e["identical"] for e in entries.values()), entries
    # CI-safe floors, well under locally measured numbers (see
    # EXPERIMENTS.md for the measured table).
    floors = {
        "line_table.free_runs": 2.0,
        "block.rebuild_line_marks (multi-line objects)": 3.0,
        "block.free_runs (cached)": 10.0,
        "block.objects_overlapping_line": 10.0,
        "failure_table decode": 3.0,
        "sorted_defrag_candidates": 4.0,
        "heap_table line counts (heap-scan)": 8.0,
        "heap_table.slots_with_free_lines": 1.5,
        "heap sweep (shared table, 8 blocks)": 2.0,
    }
    # The cheapest kernels time in tens of microseconds total, where a
    # single scheduler spike can sink any floor; one retry at higher
    # iteration count absorbs that without loosening the floors.
    failing = [k for k, f in floors.items() if entries[k]["speedup"] < f]
    if failing:
        retry = {e["kernel"]: e for e in bench_kernels(iterations=500)}
        for kernel in failing:
            entries[kernel] = max(
                entries[kernel], retry[kernel], key=lambda e: e["speedup"]
            )
    for kernel, floor in floors.items():
        assert entries[kernel]["speedup"] >= floor, (
            f"{kernel}: {entries[kernel]['speedup']:.2f}x < {floor}x floor"
        )
    # The spool frame's win is bytes moved, not codec CPU: assert the
    # size relation, leave the round-trip speed to the benchmark rows.
    codec = entries["result codec (spool frame vs pickle)"]
    assert codec["frame_bytes"] < codec["pickle_bytes"], codec
