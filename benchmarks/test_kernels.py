"""Hot-path kernel microbenchmarks (pytest-benchmark rig).

Times each vectorized kernel against its retained pure-Python
reference on the same deterministic synthetic inputs the ``repro
microbench`` subcommand uses, and asserts both the output identity and
the speedups the kernel overhaul claims. Run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -q

The thresholds are deliberately looser than locally measured numbers
(shared CI machines jitter); bit-identity is exact.
"""

import pytest

from repro.hardware.geometry import Geometry
from repro.heap import line_table
from repro.sim.microbench import (
    MULTI_LINE_OBJECT_SIZES,
    bench_kernels,
    build_synthetic_block,
    build_synthetic_failure_table,
    synthetic_line_tables,
)


@pytest.fixture(autouse=True)
def _fast_kernels():
    previous = line_table.set_kernel_mode("fast")
    yield
    line_table.set_kernel_mode(previous)


@pytest.fixture(scope="module")
def tables():
    geometry = Geometry(immix_line=64)  # 512-line tables: the big case
    return list(synthetic_line_tables(geometry.immix_lines_per_block).values())


def test_free_runs(benchmark, tables):
    benchmark(lambda: [line_table.free_runs(t) for t in tables])
    for table in tables:
        assert line_table.free_runs(table) == line_table.free_runs_reference(table)


def test_fragmentation_index(benchmark, tables):
    benchmark(lambda: [line_table.fragmentation_index(t) for t in tables])
    for table in tables:
        assert line_table.fragmentation_index(
            table
        ) == line_table.fragmentation_index_reference(table)


def test_sweep_small_objects(benchmark):
    block = build_synthetic_block(Geometry(), seed=0)
    benchmark(lambda: block.rebuild_line_marks(1))


def test_sweep_multi_line_objects(benchmark):
    block = build_synthetic_block(
        Geometry(immix_line=64), seed=0, object_sizes=MULTI_LINE_OBJECT_SIZES
    )
    benchmark(lambda: block.rebuild_line_marks(1))


def test_cached_free_runs(benchmark):
    block = build_synthetic_block(Geometry(), seed=0)
    benchmark(block.free_runs)


def test_failure_table_decode(benchmark):
    table = build_synthetic_failure_table(Geometry(), seed=0)
    pages = table.imperfect_pages()

    def decode():
        table.failed_line_count()
        table.compressed_size_bytes()
        for page in pages:
            table.failed_offsets(page)

    benchmark(decode)


def test_kernel_speedups_and_identity():
    """The microbench suite itself: identity is exact, speedups hold."""
    entries = {e["kernel"]: e for e in bench_kernels(iterations=200)}
    assert all(e["identical"] for e in entries.values()), entries
    # CI-safe floors, well under locally measured numbers (see
    # EXPERIMENTS.md for the measured table).
    floors = {
        "line_table.free_runs": 2.0,
        "block.rebuild_line_marks (multi-line objects)": 3.0,
        "block.free_runs (cached)": 10.0,
        "block.objects_overlapping_line": 10.0,
        "failure_table decode": 3.0,
        "sorted_defrag_candidates": 4.0,
    }
    for kernel, floor in floors.items():
        assert entries[kernel]["speedup"] >= floor, (
            f"{kernel}: {entries[kernel]['speedup']:.2f}x < {floor}x floor"
        )
