"""Section 4.2: estimated full-heap collection pauses.

The paper reports a 7 ms mean full-heap collection with hsqldb worst at
44 ms, fop and xalan next. Our simulated heaps are ~4x smaller than the
real DaCapo runs, so absolute pauses are smaller; the *ranking* (hsqldb
worst, big-live-set benchmarks at the top) is the reproduced shape.
"""

from conftest import experiment_scale, run_once

from repro.sim.experiments import section42_pauses


def test_sec42_pauses(runner, benchmark):
    result = run_once(benchmark, section42_pauses, runner, scale=experiment_scale())
    print()
    print(result.render())
    pauses = {label: values[0] for label, values in result.rows if label != "mean"}
    mean = dict(result.rows)["mean"][0]
    assert mean > 0
    # hsqldb (largest live set) must be the worst or nearly so.
    worst = max(pauses, key=pauses.get)
    assert pauses["hsqldb"] >= 0.85 * pauses[worst]
    assert pauses["hsqldb"] > mean
