#!/usr/bin/env python
"""Chip binning: turning defective memory into product tiers.

Reproduces the paper's section 7.4 argument in numbers: fabrication
variation leaves many chips with born-dead cells; discarding everything
beyond a tiny defect budget wrecks yield, while a failure-aware stack
makes chips with arbitrary defect counts usable — so manufacturers can
bin them (premium / standard / value / salvage) the way CPUs are binned
by frequency.

Run:  python examples/chip_binning.py
"""

from repro.sim.binning import evaluate_bins, render_binning_report, sample_population


def main() -> None:
    population = sample_population(n_chips=2000, median_density=0.004, seed=7)
    reports = evaluate_bins(population, workload="antlr", scale=0.35)
    print(render_binning_report(population, reports))
    print()
    recovered = population.yield_fraction() - population.traditional_yield()
    print(f"Failure awareness recovers {recovered:.1%} of the production run "
          "that would otherwise be scrapped,")
    print("at the per-bin overheads shown above "
          "(measured with two-page clustering at a 2x heap).")


if __name__ == "__main__":
    main()
