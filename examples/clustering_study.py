#!/usr/bin/env python
"""Failure clustering: why concentrated failures beat uniform ones.

Reproduces the paper's central architectural argument in miniature:
the same number of failed lines costs wildly different amounts of
performance depending on *where* the failures sit. Uniformly spread
failures (what wear leveling produces) fragment the heap and poison
many 256 B Immix lines with false failures; clustered failures leave
large contiguous runs and whole perfect pages.

Runs one medium-object-heavy workload (pmd) at 25 % failed lines under
several placements of those failures, and prints what each does to the
memory manager.

Run:  python examples/clustering_study.py

The same grid ships as a declarative plan — run it through the
sweep machinery (parallel, cached, resumable) instead:

    python -m repro plan plans/clustering_study.yaml --dry-run
    python -m repro sweep --plan plans/clustering_study.yaml --jobs 4
"""

from dataclasses import replace

from repro.faults.generator import FailureModel
from repro.sim.machine import RunConfig, run_benchmark


def main() -> None:
    base = RunConfig(workload="pmd", heap_multiplier=2.0, scale=0.5, seed=1)
    baseline = run_benchmark(base)

    variants = [
        ("no failures", FailureModel()),
        ("25% uniform (wear-leveled memory)", FailureModel(rate=0.25)),
        ("25% pre-clustered at 1 KB", FailureModel(rate=0.25, cluster_bytes=1024)),
        ("25% pre-clustered at 4 KB", FailureModel(rate=0.25, cluster_bytes=4096)),
        ("25% + 1-page clustering hw", FailureModel(rate=0.25, hw_region_pages=1)),
        ("25% + 2-page clustering hw", FailureModel(rate=0.25, hw_region_pages=2)),
    ]

    print("pmd at a 2x heap, 25% of PCM lines failed, by failure placement\n")
    print(f"{'configuration':36s} {'time':>7s} {'GCs':>5s} "
          f"{'hole skips':>11s} {'perfect demand':>15s}")
    print("-" * 80)
    for label, model in variants:
        result = run_benchmark(replace(base, failure_model=model))
        if not result.completed:
            print(f"{label:36s} {'DNF':>7s}   — {result.failure_note[:40]}")
            continue
        ratio = result.time_units / baseline.time_units
        print(f"{label:36s} {ratio:6.3f}x {result.stats['collections']:>5d} "
              f"{result.stats['run_advances']:>11d} "
              f"{result.perfect_page_demand:>15d}")

    print(
        "\nThe uniform distribution — exactly what wear leveling strives for —\n"
        "is the most expensive placement; hardware clustering at two-page\n"
        "regions makes 25% failed memory nearly free. This is the paper's\n"
        "'wear leveling considered harmful' result."
    )


if __name__ == "__main__":
    main()
