#!/usr/bin/env python
"""Heap-size study: the GC space-time trade-off under failures.

Sweeps heap sizes for one benchmark under three configurations and
prints the classic time-vs-space curves the paper's figure 5 plots:
failures shift the curve up and to the right; compensation and
clustering push it back down.

Run:  python examples/heap_size_study.py

The same grid ships as a declarative plan — run it through the
sweep machinery (parallel, cached, resumable) instead:

    python -m repro plan plans/heap_size_study.yaml --dry-run
    python -m repro sweep --plan plans/heap_size_study.yaml --jobs 4
"""

from dataclasses import replace

from repro.faults.generator import FailureModel
from repro.sim.machine import RunConfig, run_benchmark


def main() -> None:
    heaps = (1.25, 1.5, 2.0, 3.0, 4.0)
    configs = {
        "no failures": dict(failure_model=FailureModel(), compensate=True),
        "10% failed, no compensation": dict(
            failure_model=FailureModel(rate=0.10), compensate=False
        ),
        "10% failed, compensated": dict(
            failure_model=FailureModel(rate=0.10), compensate=True
        ),
        "10% failed, compensated + 2CL": dict(
            failure_model=FailureModel(rate=0.10, hw_region_pages=2),
            compensate=True,
        ),
    }

    base = RunConfig(workload="antlr", heap_multiplier=max(heaps), scale=0.5)
    reference = run_benchmark(base).time_units

    print("antlr: normalized time vs heap size (reference: no failures "
          f"at {max(heaps):g}x min heap)\n")
    header = f"{'heap (x min)':>12s}" + "".join(f"{name[:26]:>28s}" for name in configs)
    print(header)
    print("-" * len(header))
    for heap in heaps:
        row = f"{heap:>12g}"
        for name, overrides in configs.items():
            result = run_benchmark(replace(base, heap_multiplier=heap, **overrides))
            if result.completed:
                row += f"{result.time_units / reference:>28.3f}"
            else:
                row += f"{'DNF':>28s}"
        print(row)

    print(
        "\nReading the columns left to right at any heap size shows the\n"
        "paper's figure-5 decomposition: losing working memory (no\n"
        "compensation) hurts most in small heaps; compensation removes\n"
        "that but leaves fragmentation and false failures; clustering\n"
        "hardware removes most of the rest."
    )


if __name__ == "__main__":
    main()
