#!/usr/bin/env python
"""Memory aging: how long does a PCM module stay useful?

Ages one (deliberately fragile) PCM module by running a write-heavy
workload on it repeatedly, under four management strategies:

1. the DRAM-era baseline that retires a whole page on its first failed
   line — the paper's motivation: "only 2 % of lines need fail and the
   entire wearable memory becomes unusable";
2. the failure-aware runtime stepping around individual failed lines;
3. the same plus two-page failure-clustering hardware;
4. failure-aware plus Start-Gap wear leveling, to probe the paper's
   "wear leveling considered harmful" claim (section 7.2).

Every iteration exercises the full dynamic-failure path: cell wear ->
ECC exhaustion -> failure buffer -> OS interrupt -> runtime up-call ->
evacuating collection.

Run:  python examples/memory_aging.py
"""

import dataclasses

from repro.hardware.wear_leveling import StartGapWearLeveler
from repro.sim.lifetime import (
    retire_on_first_failure_lifetime,
    run_lifetime,
    write_heavy,
)
from repro.workloads import workload


def main() -> None:
    spec = write_heavy(workload("avrora"), mutations_per_object=2.0)
    spec = dataclasses.replace(spec, total_alloc_bytes=1_500_000)
    cap = 15
    endurance = 40.0  # scaled-down mean writes per line (real PCM: ~1e8)

    print("Aging one PCM module per strategy "
          f"(endurance ~{endurance:.0f} writes/line, {cap}-iteration cap)\n")

    results = [
        retire_on_first_failure_lifetime(
            spec, max_iterations=cap, endurance_mean_writes=endurance
        ),
        run_lifetime(
            spec, clustering=False, max_iterations=cap,
            endurance_mean_writes=endurance,
        ),
        run_lifetime(
            spec, clustering=True, max_iterations=cap,
            endurance_mean_writes=endurance,
        ),
        run_lifetime(
            spec, clustering=False,
            wear_leveler=StartGapWearLeveler(gap_write_interval=20),
            max_iterations=cap, endurance_mean_writes=endurance,
            label="start-gap wear leveling",
        ),
    ]

    print(f"{'strategy':34s} {'iterations':>10s} {'lines consumed':>15s}")
    print("-" * 62)
    for result in results:
        iterations = result.iterations_completed
        capped = "+" if iterations >= cap else " "
        print(f"{result.label:34s} {iterations:>9d}{capped} "
              f"{result.final_failed_fraction:>14.1%}")

    retire, aware = results[0], results[1]
    print()
    print(f"Page retirement killed the module after "
          f"{retire.iterations_completed} iterations with only "
          f"{retire.final_failed_fraction:.1%} of lines actually failed —")
    print(f"the failure-aware runtime ran "
          f"{aware.iterations_completed}+ iterations on the same memory.")
    print("\nPer-iteration failure growth (failure-aware, no clustering):")
    for record in aware.records:
        bar = "#" * int(60 * record.failed_fraction)
        print(f"  iter {record.iteration:2d}  "
              f"{record.failed_fraction:6.1%}  {bar}")


if __name__ == "__main__":
    main()
