#!/usr/bin/env python
"""Quickstart: a failure-aware VM on memory with 10 % failed lines.

Builds the full cooperative stack — an aged PCM module, the
failure-aware OS, and a Sticky Immix VM — then allocates a small object
graph and prints where things landed and what the heap looks like.

Run:  python examples/quickstart.py
"""

from repro import FailureModel, VirtualMachine, VmConfig
from repro.units import KiB, MiB


def main() -> None:
    # A 2 MB heap on PCM where 10 % of 64 B lines have already failed,
    # with the paper's two-page failure-clustering hardware enabled.
    config = VmConfig(
        heap_bytes=2 * MiB,
        collector="sticky-immix",
        failure_model=FailureModel(rate=0.10, hw_region_pages=2),
        seed=42,
    )
    vm = VirtualMachine(config)
    print("Built a VM on", vm.injector.describe())
    print(
        f"Heap: {vm.supply.total_pages} pages "
        f"({vm.supply.free_perfect} perfect / {vm.supply.free_imperfect} imperfect)"
    )

    # Allocate a little object graph: a rooted list of records, each
    # holding a payload buffer. The collector steps around failed lines
    # automatically; pinned objects will never be moved.
    head = vm.alloc(64)
    vm.add_root(head)
    for i in range(2000):
        record = vm.alloc(48)
        vm.add_ref(head, record)
        payload = vm.alloc(500, pinned=(i % 500 == 0))
        vm.add_ref(record, payload)
    big = vm.alloc(24 * KiB)  # goes to the large object space
    vm.add_ref(head, big)

    print(f"\nAllocated {vm.stats.objects_allocated} objects "
          f"({vm.stats.bytes_allocated / KiB:.0f} KB)")
    print(f"Large object placed on perfect pages at {big.address:#x}")

    # Force a full collection and look at the heap.
    vm.collect(force_full=True)
    census = vm.heap_census()
    print(f"\nAfter a full collection: {census['blocks']} blocks in use, "
          f"{census['failed_lines']} failed Immix lines being stepped around,")
    print(f"{census['free_lines']} free lines, {census['los_objects']} large objects, "
          f"{census['free_pages']} free pages")
    print(f"Collections so far: {vm.stats.collections} "
          f"({vm.stats.full_collections} full)")
    print(f"Simulated execution time: {vm.simulated_ms():.1f} ms")

    # The same allocations on a failure-free heap cost the same — the
    # paper's "no overhead in the absence of failures".
    print("\nPerfect-page demand:", vm.supply.accountant.summary())


if __name__ == "__main__":
    main()
