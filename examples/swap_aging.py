#!/usr/bin/env python
"""Swapping imperfect pages: why clustering rescues the OS too.

The runtime is not the only consumer of failure maps: when the OS swaps
an imperfect page out and back in, the destination page's holes must be
compatible with the data layout. Scanning for a hole-subset match has
limited efficacy (the paper cites Ipek et al.); under failure
clustering a simple failure-count comparison suffices and almost always
hits. This example quantifies both as memory ages.

Run:  python examples/swap_aging.py
"""

from repro.sim.swap_study import render_swap_study, run_swap_study


def main() -> None:
    results = {}
    for rate in (0.02, 0.10, 0.25):
        for clustered in (False, True):
            label = f"{rate:.0%} worn, " + ("clustered" if clustered else "uniform")
            results[label] = run_swap_study(rate, clustered, seed=3)
    print(render_swap_study(results))
    print()
    uniform = results["10% worn, uniform"]
    clustered = results["10% worn, clustered"]
    print(f"At 10% wear: with uniform failures, {uniform.stall_rate:.0%} of "
          "swap-in attempts stall waiting for a")
    print("hole-compatible frame (Ipek et al.'s 'limited efficacy'); with "
          f"clustering only {clustered.stall_rate:.0%} stall,")
    print("because any frame with the same or fewer failures is compatible "
          "by construction.")


if __name__ == "__main__":
    main()
