#!/usr/bin/env python
"""Cost-model calibration helper.

Runs the full workload suite across the paper's key configurations once,
caches the raw event counters, and evaluates candidate cost models
offline against the paper's anchor numbers:

* no failures, failure-aware == 1.000
* 10% / 50% unclustered  -> ~1.17 / ~1.33 (may DNF at high rates)
* 10% / 50% two-page clustering -> ~1.039 / ~1.124
* mean run ~1817 ms, mean full-GC pause ~7 ms, ~15 GCs at 2x heap

The raw counters are kept in the shared content-addressed result cache
(`scripts/.calibration_cache/` by default), so repeated calibration
runs — and any figure/sweep runs pointed at the same `--cache-dir` —
skip every cell already measured. `--jobs N` fans uncached cells out
over worker processes.

Usage: python scripts/calibrate.py [--scale 0.5] [--seeds 0 1] [--jobs 4]
"""

import argparse
import sys
from pathlib import Path

from repro.faults.generator import FailureModel
from repro.runtime.time_model import CostModel
from repro.sim.cache import ResultCache
from repro.sim.experiment import geomean
from repro.sim.machine import RunConfig
from repro.sim.parallel import run_grid
from repro.workloads.dacapo import analysis_suite

CACHE_DIR = Path(__file__).parent / ".calibration_cache"

CONFIGS = {
    # (failure model, immix line size)
    "base": (FailureModel(), 256),
    "u10": (FailureModel(rate=0.10), 256),
    "u25": (FailureModel(rate=0.25), 256),
    "u50": (FailureModel(rate=0.50), 256),
    "u10_L64": (FailureModel(rate=0.10), 64),
    "u50_L64": (FailureModel(rate=0.50), 64),
    "base_L64": (FailureModel(), 64),
    "c1_10": (FailureModel(rate=0.10, hw_region_pages=1), 256),
    "c1_50": (FailureModel(rate=0.50, hw_region_pages=1), 256),
    "c2_10": (FailureModel(rate=0.10, hw_region_pages=2), 256),
    "c2_25": (FailureModel(rate=0.25, hw_region_pages=2), 256),
    "c2_50": (FailureModel(rate=0.50, hw_region_pages=2), 256),
}


def collect(scale, seeds, jobs=1, cache=None):
    cells = []
    grid = []
    for spec in analysis_suite():
        for key, (model, line) in CONFIGS.items():
            for seed in seeds:
                cells.append((spec.name, key, seed))
                grid.append(
                    RunConfig(
                        workload=spec.name,
                        heap_multiplier=2.0,
                        failure_model=model,
                        immix_line=line,
                        scale=scale,
                        seed=seed,
                    )
                )
    results, stats = run_grid(grid, jobs=jobs, cache=cache)
    rows = {}
    for (name, key, seed), result in zip(cells, results):
        rows[(name, key, seed)] = result
        print(
            f"  {name:13s} {key:6s} seed{seed} "
            f"{'ok ' if result.completed else 'DNF'} "
            f"GCs={result.stats['collections']}",
            file=sys.stderr,
        )
    print(
        f"  grid: {stats.cells} cells, {stats.cache_hits} cache hits, "
        f"{stats.cache_misses} misses, {stats.wall_s:.1f}s wall "
        f"(utilization {stats.utilization:.0%})",
        file=sys.stderr,
    )
    return rows


def evaluate(rows, model: CostModel, seeds):
    """Geomean overhead per config key under a candidate cost model."""
    names = sorted({name for name, _, _ in rows})
    out = {}
    for key in CONFIGS:
        ratios = []
        dnf = []
        for name in names:
            num, den = [], []
            for seed in seeds:
                r = rows[(name, key, seed)]
                b = rows[(name, "base", seed)]
                if not r.completed:
                    dnf.append(name)
                    break
                num.append(_time(model, r))
                den.append(_time(model, b))
            else:
                ratios.append(sum(num) / sum(den))
        out[key] = (geomean(ratios) if ratios else float("nan"), sorted(set(dnf)))
    return out


def _time(model: CostModel, result):
    # Recompute from counters so cost models can be swapped offline.
    import dataclasses

    from repro.collectors.stats import GcStats

    # result.stats also carries derived summary keys (live-bytes series
    # percentiles etc.) that are not GcStats fields; keep only the
    # counters the cost model consumes.
    fields = {f.name for f in dataclasses.fields(GcStats)}
    stats = GcStats(**{k: v for k, v in result.stats.items() if k in fields})
    return model.total_time(stats)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--seeds", type=int, nargs="+", default=[0])
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--cache-dir", default=str(CACHE_DIR))
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore the persistent cache and re-run every cell",
    )
    args = parser.parse_args()

    cache = None if args.fresh else ResultCache(args.cache_dir)
    rows = collect(args.scale, args.seeds, jobs=args.jobs, cache=cache)

    model = CostModel()
    out = evaluate(rows, model, args.seeds)
    targets = {
        "base": 1.0, "u10": 1.17, "u50": 1.33,
        "c2_10": 1.039, "c2_50": 1.124,
    }
    print(f"{'config':8s} {'overhead':>9s} {'target':>8s}  DNFs")
    for key, (value, dnf) in out.items():
        target = targets.get(key, float('nan'))
        print(f"{key:8s} {value:9.3f} {target:8.3f}  {','.join(dnf) if dnf else '-'}")


if __name__ == "__main__":
    main()
