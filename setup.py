"""Setup shim: enables editable installs on environments without the
``wheel`` package (offline boxes where PEP 660 editable wheels cannot be
built). ``pip install -e . --no-build-isolation`` works when wheel is
available; ``python setup.py develop`` works everywhere.
"""

from setuptools import setup

setup()
