"""repro: failure-aware managed runtimes for wearable memories.

A from-scratch reproduction of Gao, Strauss, Blackburn, McKinley,
Burger & Larus, *"Using Managed Runtime Systems to Tolerate Holes in
Wearable Memories"* (PLDI 2013).

Quickstart::

    from repro import VirtualMachine, VmConfig, FailureModel
    from repro.units import MiB

    config = VmConfig(
        heap_bytes=2 * MiB,
        failure_model=FailureModel(rate=0.10, hw_region_pages=2),
    )
    vm = VirtualMachine(config)
    obj = vm.alloc(64)
    vm.add_root(obj)
    print(vm.simulated_ms(), "simulated ms so far")

Layers (bottom to top): :mod:`repro.hardware` (PCM, ECC, failure buffer,
clustering), :mod:`repro.osim` (page pools, failure table, syscalls),
:mod:`repro.faults` (failure-map generation, injection, debit-credit
accounting), :mod:`repro.heap` + :mod:`repro.collectors` (Immix, Sticky
Immix, mark-sweep), :mod:`repro.runtime` (the VM facade and time model),
:mod:`repro.workloads` (synthetic DaCapo), :mod:`repro.sim` (experiment
harnesses for every figure in the paper).
"""

from .collectors import GcStats, ImmixCollector, ImmixConfig, MarkSweepCollector
from .errors import (
    ConfigError,
    OutOfMemoryError,
    PerfectMemoryExhaustedError,
    ReproError,
)
from .faults import FailureMap, FailureModel, FaultInjector, PerfectPageAccountant
from .hardware import Geometry, PcmModule
from .runtime import DEFAULT_COST_MODEL, CostModel, VirtualMachine, VmConfig
from .sim import ExperimentRunner, RunConfig, RunResult, run_benchmark
from .workloads import DACAPO, TraceDriver, WorkloadSpec, workload

__version__ = "1.0.0"

__all__ = [
    "GcStats",
    "ImmixCollector",
    "ImmixConfig",
    "MarkSweepCollector",
    "ConfigError",
    "OutOfMemoryError",
    "PerfectMemoryExhaustedError",
    "ReproError",
    "FailureMap",
    "FailureModel",
    "FaultInjector",
    "PerfectPageAccountant",
    "Geometry",
    "PcmModule",
    "DEFAULT_COST_MODEL",
    "CostModel",
    "VirtualMachine",
    "VmConfig",
    "ExperimentRunner",
    "RunConfig",
    "RunResult",
    "run_benchmark",
    "DACAPO",
    "TraceDriver",
    "WorkloadSpec",
    "workload",
    "__version__",
]
