"""Cross-layer heap auditor (the reproduction's sanitizer).

The paper's whole design rests on four views of failure state agreeing:
hardware ECC state, the OS failure table, the runtime's per-block line
marks, and the clustering redirection maps. This package verifies that
agreement — one checker per layer (:mod:`.invariants`), a coordinator
that runs them at configurable points (:mod:`.audit`), and randomized
fault-injection campaigns (:mod:`.campaign`).

Enable in-run auditing with ``--verify-heap {off,gc,upcall,paranoid}``
or the ``REPRO_VERIFY`` environment variable; run a standalone campaign
with ``python -m repro check``.
"""

from .audit import (
    PARANOID_ALLOC_INTERVAL,
    VERIFY_LEVELS,
    AuditReport,
    HeapAuditor,
    Violation,
    check_verify_level,
)
from .campaign import CampaignResult, CampaignRun, run_campaign
from .invariants import ALL_CHECKERS, audit_vm, run_all_checkers

__all__ = [
    "ALL_CHECKERS",
    "AuditReport",
    "CampaignResult",
    "CampaignRun",
    "HeapAuditor",
    "PARANOID_ALLOC_INTERVAL",
    "VERIFY_LEVELS",
    "Violation",
    "audit_vm",
    "check_verify_level",
    "run_all_checkers",
    "run_campaign",
]
