"""Violation records and the heap-audit coordinator.

The paper's design only works if four views of the same failure state
stay consistent: the hardware's ECC-exhausted lines, the OS failure
table's per-page bitmaps, the per-block Immix line marks, and the
clustering redirection maps. :class:`HeapAuditor` cross-checks them at
configurable points in a run; every disagreement becomes a structured
:class:`Violation` carrying the layer, the page/block/line coordinates,
and a human-readable diff of the two disagreeing views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError, HeapAuditError

#: ``--verify-heap`` / ``REPRO_VERIFY`` levels, weakest to strongest.
#:
#: off       no checking (the default; zero overhead)
#: gc        full audit after every collection and at end of run
#: upcall    ``gc`` plus an audit after every dynamic-failure up-call
#: paranoid  ``upcall`` plus a sampled audit during mutator allocation
VERIFY_LEVELS = ("off", "gc", "upcall", "paranoid")

#: Paranoid mode audits every Nth allocation; a full audit is O(heap),
#: so auditing every allocation would make runs quadratic.
PARANOID_ALLOC_INTERVAL = 64


@dataclass(frozen=True)
class Violation:
    """One cross-layer inconsistency found by a checker.

    ``expected`` and ``actual`` are renderings of the two disagreeing
    views (the authoritative one first), so a report reads as a diff:
    which layer diverged, where, and what each side believes.
    """

    #: Stable kebab-case identifier of the broken invariant.
    invariant: str
    #: Layer that holds the diverging state: ``hardware`` / ``os`` /
    #: ``heap`` / ``runtime``.
    layer: str
    #: What went wrong, in one sentence.
    message: str
    #: The authoritative view (what the state should be).
    expected: str = ""
    #: The diverging view (what was actually found).
    actual: str = ""
    #: Physical page index, when the violation is page-addressable.
    page: Optional[int] = None
    #: Immix block virtual index, when block-addressable.
    block: Optional[int] = None
    #: Line index — an Immix line when ``block`` is set, otherwise a
    #: page-relative PCM line offset.
    line: Optional[int] = None

    def where(self) -> str:
        coords = [
            f"{name}={value}"
            for name, value in (("page", self.page), ("block", self.block), ("line", self.line))
            if value is not None
        ]
        return ", ".join(coords) if coords else "heap-wide"

    def describe(self) -> str:
        text = f"[{self.layer}] {self.invariant} at {self.where()}: {self.message}"
        if self.expected or self.actual:
            text += f"\n    expected: {self.expected}\n    actual:   {self.actual}"
        return text

    def to_dict(self) -> dict:
        return {
            "invariant": self.invariant,
            "layer": self.layer,
            "message": self.message,
            "expected": self.expected,
            "actual": self.actual,
            "page": self.page,
            "block": self.block,
            "line": self.line,
        }


@dataclass
class AuditReport:
    """Outcome of one full audit pass."""

    #: What prompted the audit (``gc``, ``upcall``, ``alloc``, ``final``,
    #: or ``manual``).
    trigger: str
    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        if self.ok:
            return f"audit ({self.trigger}): {self.checks_run} checkers, no violations"
        lines = [
            f"audit ({self.trigger}): {len(self.violations)} violation(s) "
            f"across {self.checks_run} checkers"
        ]
        lines.extend(f"  {v.describe()}" for v in self.violations)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "trigger": self.trigger,
            "checks_run": self.checks_run,
            "violations": [v.to_dict() for v in self.violations],
        }


def check_verify_level(level: str) -> str:
    if level not in VERIFY_LEVELS:
        raise ConfigError(
            f"unknown verify level {level!r}; choose from {VERIFY_LEVELS}"
        )
    return level


class HeapAuditor:
    """Runs every layer checker against one VM at configured points.

    Parameters
    ----------
    vm:
        The :class:`~repro.runtime.vm.VirtualMachine` to audit.
    level:
        One of :data:`VERIFY_LEVELS`.
    record_only:
        Collect violations in :attr:`violations` instead of raising
        :class:`~repro.errors.HeapAuditError` (campaign mode).
    """

    def __init__(self, vm, level: str = "off", record_only: bool = False) -> None:
        self.vm = vm
        self.level = check_verify_level(level)
        self.record_only = record_only
        self.audits_run = 0
        self.violations: List[Violation] = []
        self.reports: List[AuditReport] = []
        self._allocs_since_audit = 0

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self.level != "off"

    def audit(self, trigger: str = "manual") -> AuditReport:
        """One full pass over every checker, regardless of level."""
        from .invariants import run_all_checkers

        violations, checks_run = run_all_checkers(self.vm, trigger)
        report = AuditReport(trigger=trigger, violations=violations, checks_run=checks_run)
        self.audits_run += 1
        self.reports.append(report)
        if not report.ok:
            self.violations.extend(report.violations)
            if not self.record_only:
                raise HeapAuditError(report.render())
        return report

    # ------------------------------------------------------------------
    # Hooks, called by the VM
    # ------------------------------------------------------------------
    def after_gc(self) -> None:
        if self.enabled:
            self.audit("gc")

    def after_upcall(self) -> None:
        if self.level in ("upcall", "paranoid"):
            self.audit("upcall")

    def after_alloc(self) -> None:
        if self.level != "paranoid":
            return
        self._allocs_since_audit += 1
        if self._allocs_since_audit >= PARANOID_ALLOC_INTERVAL:
            self._allocs_since_audit = 0
            self.audit("alloc")

    def final(self) -> Optional[AuditReport]:
        """End-of-run audit; the cheapest place to catch drift."""
        if self.enabled:
            return self.audit("final")
        return None
