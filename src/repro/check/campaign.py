"""Randomized fault-injection audit campaigns.

A campaign runs real workloads on a *wearing* memory module — so
dynamic failures arrive mid-run through the full hardware → OS →
runtime path — with the heap auditor in paranoid, record-only mode.
Every audit pass cross-checks all four layers; the campaign aggregates
the violations (zero is the passing grade) together with evidence that
the runs actually exercised the failure machinery.

Campaign workloads pin nothing and run in roomy heaps: pinned objects
and abort-restored evacuations may *legitimately* leave live data on
failed lines (the paper's rules), and a clean campaign needs every
violation to be a real bug, not a tolerated degradation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..faults.generator import FailureModel
from ..faults.injector import FaultInjector
from ..hardware.geometry import Geometry
from ..hardware.pcm import EnduranceModel, PcmModule
from ..workloads.dacapo import workload
from ..workloads.driver import TraceDriver, estimate_min_heap
from .audit import HeapAuditor, Violation

#: Default workload trio: small/churny, medium-heavy, and LOS-heavy
#: allocation mixes, so block space, overflow path, and large object
#: space all see failures.
DEFAULT_WORKLOADS = ("luindex", "antlr", "fop")

#: The three failure scenarios each campaign cycles through.
SCENARIOS = (
    ("dynamic, 2-page clustering", 0.0, 2),
    ("dynamic, no clustering", 0.0, 0),
    ("static 10% + dynamic, no clustering", 0.10, 0),
)


@dataclass
class CampaignRun:
    """One workload x scenario audit run."""

    workload: str
    scenario: str
    seed: int
    heap_bytes: int
    audits: int
    dynamic_failures: int
    duplicate_failures: int
    upcalls: int
    collections: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign."""

    runs: List[CampaignRun] = field(default_factory=list)

    @property
    def violations(self) -> List[Violation]:
        return [v for run in self.runs for v in run.violations]

    @property
    def total_dynamic_failures(self) -> int:
        return sum(run.dynamic_failures for run in self.runs)

    @property
    def total_audits(self) -> int:
        return sum(run.audits for run in self.runs)

    @property
    def ok(self) -> bool:
        return not self.violations and self.total_dynamic_failures > 0

    def render(self) -> str:
        lines = [
            f"{'workload':<12} {'scenario':<36} {'audits':>6} "
            f"{'dyn.fail':>8} {'dup':>4} {'upcalls':>7} {'violations':>10}"
        ]
        for run in self.runs:
            lines.append(
                f"{run.workload:<12} {run.scenario:<36} {run.audits:>6} "
                f"{run.dynamic_failures:>8} {run.duplicate_failures:>4} "
                f"{run.upcalls:>7} {len(run.violations):>10}"
            )
        lines.append(
            f"campaign: {len(self.runs)} runs, {self.total_audits} audits, "
            f"{self.total_dynamic_failures} dynamic failures, "
            f"{len(self.violations)} violation(s)"
        )
        if self.total_dynamic_failures == 0:
            lines.append(
                "WARNING: no dynamic failures occurred — the campaign did "
                "not exercise the failure path"
            )
        for violation in self.violations:
            lines.append("  " + violation.describe())
        return "\n".join(lines)


def _campaign_spec(name: str, scale: float):
    """A campaign-safe variant of a catalog workload.

    Pinning is disabled (pinned objects may legitimately sit on failed
    lines forever — every violation in a campaign must be a bug) and
    mutation is forced on so application stores actually wear lines.
    """
    spec = workload(name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return dataclasses.replace(
        spec,
        pinned_fraction=0.0,
        mutations_per_object=max(spec.mutations_per_object, 0.6),
    )


def _build_vm(
    spec,
    geometry: Geometry,
    static_rate: float,
    region_pages: int,
    seed: int,
    level: str,
) -> "VirtualMachine":
    """A VM over a wearing module, auditor in record-only mode."""
    # Imported lazily: runtime.vm imports check.audit at module load,
    # so a top-level import here would close a circular chain.
    from ..runtime.vm import VirtualMachine, VmConfig

    heap = 2 * estimate_min_heap(spec, seed=seed, geometry=geometry)
    block = geometry.block
    raw = (heap + block - 1) // block * block
    region = geometry.region
    pcm_bytes = (raw + region - 1) // region * region + 4 * region
    pcm = PcmModule(
        size_bytes=pcm_bytes,
        geometry=geometry,
        # Low endurance on purpose: campaign traffic peaks at a few
        # dozen writes per line, and the campaign needs lines to die
        # mid-run so the dynamic-failure path gets audited.
        endurance=EnduranceModel(mean_writes=20.0, cv=0.3, seed=seed),
        clustering_enabled=region_pages > 0,
        failure_buffer_capacity=128,
        seed=seed,
    )
    if static_rate > 0.0:
        static_map = FailureModel(rate=static_rate).build(
            pcm.n_lines, geometry, seed
        )
        pcm.inject_static_failures(static_map.failed_lines)
    injector = FaultInjector(FailureModel(), geometry=geometry, pcm=pcm)
    config = VmConfig(
        heap_bytes=heap,
        geometry=geometry,
        wear_writes=True,
        compensate=False,
        seed=seed,
        verify="off",
    )
    vm = VirtualMachine(config, injector=injector)
    vm.auditor = HeapAuditor(vm, level=level, record_only=True)
    return vm


def run_campaign(
    seed: int = 0,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 0.05,
    level: str = "paranoid",
) -> CampaignResult:
    """Run the audit campaign; deterministic for a given seed."""
    names = list(workloads) if workloads else list(DEFAULT_WORKLOADS)
    result = CampaignResult()
    for w_index, name in enumerate(names):
        spec = _campaign_spec(name, scale)
        scenario_label, static_rate, region_pages = SCENARIOS[
            (seed + w_index) % len(SCENARIOS)
        ]
        geometry = Geometry(region_pages=region_pages or 2)
        run_seed = seed * 1000 + w_index
        vm = _build_vm(spec, geometry, static_rate, region_pages, run_seed, level)
        TraceDriver(spec, run_seed).run(vm)
        vm.auditor.final()
        result.runs.append(
            CampaignRun(
                workload=name,
                scenario=scenario_label,
                seed=run_seed,
                heap_bytes=vm.config.heap_bytes,
                audits=vm.auditor.audits_run,
                dynamic_failures=vm.stats.dynamic_failed_lines,
                duplicate_failures=vm.stats.duplicate_dynamic_failures,
                upcalls=vm.os.upcalls,
                collections=vm.stats.collections,
                violations=list(vm.auditor.violations),
            )
        )
    return result
