"""One checker per layer of the cooperative stack.

Each checker recomputes a layer's view of the failure/heap state from
first principles and compares it against the state the layer actually
maintains. The layers and their authoritative chains:

* hardware — ECC-exhausted lines, redirection maps (permutations with a
  contiguous failed run at the region's parity edge);
* os — failure-table bitmaps mirror the module's failed logical lines,
  page pools partition the page universe, the failure buffer is drained
  after every service;
* heap — per-block line marks match a recomputation from the block's
  objects and failed lines, objects never overlap each other or a
  failed line;
* runtime — every heap page has exactly one owner (block, LOS, free
  span, or parked penalty), the page directory mirrors ownership, and
  byte/debt accounting conserves.

Checkers tolerate the model's documented transients: line marks lag
allocation until the next sweep (``Block.place`` does not mark), an
evacuation-flagged block legitimately holds live objects on failed
lines until the forced collection runs, and pinned or abort-restored
objects may overlap failed lines permanently (the paper's "never move
pinned objects" rule).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..collectors.immix import ImmixCollector
from ..hardware.clustering import region_direction
from ..heap import line_table, object_model
from ..heap.heap_table import UNMAPPED
from ..heap.line_table import FAILED, FREE, LIVE, LIVE_PINNED
from ..osim.page import PageKind
from .audit import Violation


def _expected_line_states(block) -> bytearray:
    """Recompute a block's line marks the way the sweep would."""
    states = bytearray(block.n_lines)
    for line in block.failed_lines:
        states[line] = FAILED
    line_size = block.geometry.immix_line
    for obj in block.objects:
        state = LIVE_PINNED if obj.pinned else LIVE
        for line in obj.line_span(line_size):
            if states[line] == FAILED:
                continue
            if states[line] != LIVE_PINNED:
                states[line] = state
    return states


def _overlap_tolerated(block, obj) -> bool:
    """Live-on-failed overlaps the model legitimately reaches."""
    return obj.pinned or block.evacuate or obj.oid in block.aborted_evacuations


# ======================================================================
# Heap layer
# ======================================================================
def check_block_line_marks(vm, violations: List[Violation], trigger: str) -> None:
    """Per block: actual line marks vs a recomputation from objects."""
    collector = vm.collector
    if not isinstance(collector, ImmixCollector):
        return
    for block in collector.blocks:
        expected = _expected_line_states(block)
        actual = block.line_states
        for line in range(block.n_lines):
            exp, act = expected[line], actual[line]
            if exp == act:
                continue
            if block.allocated_since_gc and act in (FREE, LIVE) and exp in (
                LIVE,
                LIVE_PINNED,
            ):
                # place() does not mark lines; marks lag allocation
                # until the next sweep. Only the stale direction is
                # legal — a mark claiming MORE than the objects do is
                # still a violation.
                continue
            invariant = (
                "failed-line-masked" if line in block.failed_lines else "line-mark-drift"
            )
            violations.append(
                Violation(
                    invariant=invariant,
                    layer="heap",
                    block=block.virtual_index,
                    line=line,
                    message="line mark disagrees with recomputation from "
                    "the block's objects and failed-line set",
                    expected=line_table.state_name(exp),
                    actual=line_table.state_name(act),
                )
            )


def check_object_placement(vm, violations: List[Violation], trigger: str) -> None:
    """Objects stay in bounds, never overlap, never sit on failed lines.

    Reads the block's extent index (the same offset-sorted view the
    bisect kernels consume) rather than re-sorting the object list —
    the auditor validates the heap *through* the cached summaries, and
    :func:`check_kernel_caches` separately proves those summaries match
    a reference recomputation.
    """
    collector = vm.collector
    if not isinstance(collector, ImmixCollector):
        return
    for block in collector.blocks:
        line_size = block.geometry.immix_line
        placed, _starts = block.extent_index()
        prev_end = 0
        prev_oid = None
        for obj in placed:
            if obj.offset + obj.size > block.geometry.block:
                violations.append(
                    Violation(
                        invariant="object-out-of-bounds",
                        layer="heap",
                        block=block.virtual_index,
                        message=f"object {obj.oid} ends at byte "
                        f"{obj.offset + obj.size}",
                        expected=f"<= block size {block.geometry.block}",
                        actual=f"offset {obj.offset} + size {obj.size}",
                    )
                )
            if obj.offset < prev_end:
                violations.append(
                    Violation(
                        invariant="object-overlap",
                        layer="heap",
                        block=block.virtual_index,
                        message=f"objects {prev_oid} and {obj.oid} overlap",
                        expected=f"object {obj.oid} to start at or after "
                        f"byte {prev_end}",
                        actual=f"starts at byte {obj.offset}",
                    )
                )
            prev_end = max(prev_end, obj.offset + obj.size)
            prev_oid = obj.oid
            for line in obj.line_span(line_size):
                if line in block.failed_lines and not _overlap_tolerated(block, obj):
                    violations.append(
                        Violation(
                            invariant="object-on-failed-line",
                            layer="heap",
                            block=block.virtual_index,
                            line=line,
                            message=f"live object {obj.oid} overlaps a "
                            "failed line with no evacuation pending",
                            expected="failed lines hold no live data",
                            actual=f"object spans lines "
                            f"{obj.line_span(line_size)}",
                        )
                    )


def check_block_failure_seeding(vm, violations: List[Violation], trigger: str) -> None:
    """block.failed_lines == Immix lines poisoned by its pages' holes."""
    collector = vm.collector
    if not isinstance(collector, ImmixCollector):
        return
    geometry = vm.geometry
    for block in collector.blocks:
        expected: Set[int] = set()
        for slot, page in enumerate(block.pages):
            for offset in page.failed_offsets:
                byte_offset = slot * geometry.page + offset * geometry.pcm_line
                expected.add(byte_offset // geometry.immix_line)
        if expected != block.failed_lines:
            violations.append(
                Violation(
                    invariant="failed-line-seeding",
                    layer="heap",
                    block=block.virtual_index,
                    message="block failed-line set disagrees with the "
                    "false-failure expansion of its pages' failure maps",
                    expected=f"lines {sorted(expected)}",
                    actual=f"lines {sorted(block.failed_lines)}",
                )
            )


# ======================================================================
# OS layer
# ======================================================================
def check_failure_chain(vm, violations: List[Violation], trigger: str) -> None:
    """VM failure maps ⊆ OS failure table == module failed lines."""
    os_mm = vm.os
    pcm = vm.injector.pcm
    geometry = vm.geometry
    per_page = geometry.lines_per_page

    # OS table vs hardware: the table must record exactly the logical
    # lines the module reports failed (static absorb + serviced drains).
    table_lines: Set[int] = set()
    for page_index in os_mm.failure_table.imperfect_pages():
        for offset in os_mm.failure_table.failed_offsets(page_index):
            table_lines.add(page_index * per_page + offset)
    hw_lines = pcm.failed_logical_lines()
    if table_lines != hw_lines:
        missing = sorted(hw_lines - table_lines)[:8]
        extra = sorted(table_lines - hw_lines)[:8]
        violations.append(
            Violation(
                invariant="failure-table-sync",
                layer="os",
                message="OS failure table diverged from the module's "
                "failed logical lines",
                expected=f"{len(hw_lines)} hardware lines "
                f"(first unrecorded: {missing})",
                actual=f"{len(table_lines)} table lines "
                f"(first phantom: {extra})",
            )
        )

    # VM view vs OS table: every hole the runtime believes in must be
    # backed by the OS table. (Subset, not equality: a dynamic failure
    # on a page currently free in the VM's supply never reaches the
    # collector's per-page view.) Whole-page retirement — the DRAM-era
    # page_retirement flag or a MigrantStore-style pool policy —
    # fabricates whole-page holes VM-side on purpose, so the comparison
    # is meaningless there.
    if not getattr(vm, "_retire_pages", vm.config.page_retirement):
        for page, where in _vm_heap_pages(vm):
            if page.index < 0 or page.index >= os_mm.n_pcm_pages:
                continue
            os_offsets = os_mm.failure_table.failed_offsets(page.index)
            extra_offsets = set(page.failed_offsets) - os_offsets
            if extra_offsets:
                violations.append(
                    Violation(
                        invariant="vm-failure-map-subset",
                        layer="os",
                        page=page.index,
                        message=f"runtime page ({where}) records failed "
                        "offsets the OS failure table never saw",
                        expected=f"subset of OS offsets {sorted(os_offsets)}",
                        actual=f"extra offsets {sorted(extra_offsets)}",
                    )
                )

    # The failure buffer must be drained once service completes. The
    # upcall audit runs *inside* service_failures, before the OS
    # acknowledges what it received, so entries are expected there.
    if trigger != "upcall" and len(pcm.failure_buffer) != 0:
        pending = [f"{e.address:#x}" for e in pcm.failure_buffer.pending()[:8]]
        violations.append(
            Violation(
                invariant="failure-buffer-drained",
                layer="os",
                message="failure buffer holds entries outside a service "
                "window (the OS drain/acknowledge cycle leaked them)",
                expected="0 entries",
                actual=f"{len(pcm.failure_buffer)} entries at {pending}",
            )
        )


def check_os_pools(vm, violations: List[Violation], trigger: str) -> None:
    """Pools partition the page universe; descriptors match the table."""
    os_mm = vm.os
    pools = os_mm.pools
    membership: Dict[int, List[str]] = {}
    for name, indices in (
        ("perfect", pools._perfect),
        ("imperfect", pools._imperfect),
        ("dram", pools._dram),
        ("allocated", pools._allocated),
    ):
        for index in indices:
            membership.setdefault(index, []).append(name)
    for index, descriptor in pools.pages.items():
        owners = membership.get(index, [])
        if len(owners) != 1:
            violations.append(
                Violation(
                    invariant="page-pool-partition",
                    layer="os",
                    page=index,
                    message="every physical page belongs to exactly one "
                    "pool or the allocated set",
                    expected="exactly one owner",
                    actual=f"owners {owners or ['none']}",
                )
            )
            continue
        owner = owners[0]
        if owner == "perfect" and not descriptor.is_perfect:
            violations.append(
                Violation(
                    invariant="perfect-pool-purity",
                    layer="os",
                    page=index,
                    message="imperfect page sitting in the perfect pool",
                    expected="no failed offsets",
                    actual=f"offsets {sorted(descriptor.failed_offsets)}",
                )
            )
        if owner == "imperfect" and descriptor.is_perfect:
            violations.append(
                Violation(
                    invariant="imperfect-pool-purity",
                    layer="os",
                    page=index,
                    message="perfect page sitting in the imperfect pool",
                    expected="at least one failed offset",
                    actual="page descriptor is perfect",
                )
            )
        if owner == "dram" and descriptor.kind is not PageKind.DRAM:
            violations.append(
                Violation(
                    invariant="dram-pool-purity",
                    layer="os",
                    page=index,
                    message="PCM page sitting in the DRAM pool",
                    expected="kind DRAM",
                    actual=f"kind {descriptor.kind.name}",
                )
            )
        if (
            descriptor.kind is PageKind.PCM
            and index < os_mm.n_pcm_pages
            and set(descriptor.failed_offsets)
            != os_mm.failure_table.failed_offsets(index)
        ):
            violations.append(
                Violation(
                    invariant="page-descriptor-sync",
                    layer="os",
                    page=index,
                    message="page descriptor's failure set diverged from "
                    "the failure-table bitmap",
                    expected=f"table offsets "
                    f"{sorted(os_mm.failure_table.failed_offsets(index))}",
                    actual=f"descriptor offsets "
                    f"{sorted(descriptor.failed_offsets)}",
                )
            )
    for index in membership:
        if index not in pools.pages:
            violations.append(
                Violation(
                    invariant="page-pool-partition",
                    layer="os",
                    page=index,
                    message="pool references a page with no descriptor",
                    expected="an entry in pools.pages",
                    actual=f"owners {membership[index]}",
                )
            )


# ======================================================================
# Hardware layer
# ======================================================================
def check_redirection_maps(vm, violations: List[Violation], trigger: str) -> None:
    """Installed maps are permutations with the failed run at the edge."""
    pcm = vm.injector.pcm
    if pcm.clustering is None:
        return
    geometry = vm.geometry
    per_region = geometry.lines_per_region
    hw_lines = pcm.failed_logical_lines()
    for region_index, rmap in sorted(pcm.clustering._maps.items()):
        if sorted(rmap.logical_to_physical) != list(range(rmap.n_lines)):
            violations.append(
                Violation(
                    invariant="redirection-permutation",
                    layer="hardware",
                    message=f"region {region_index} redirection map is "
                    "not a permutation of its line offsets",
                    expected=f"a permutation of 0..{rmap.n_lines - 1}",
                    actual=f"{len(set(rmap.logical_to_physical))} distinct "
                    f"entries over {rmap.n_lines} slots",
                )
            )
        if rmap.direction != region_direction(region_index):
            violations.append(
                Violation(
                    invariant="redirection-parity",
                    layer="hardware",
                    message=f"region {region_index} clusters failures at "
                    "the wrong edge for its parity",
                    expected=region_direction(region_index),
                    actual=rmap.direction,
                )
            )
        failed_zone = rmap.failed_logical_offsets()
        if len(failed_zone) != rmap.failed_count:
            violations.append(
                Violation(
                    invariant="redirection-failed-run",
                    layer="hardware",
                    message=f"region {region_index} failed-zone length "
                    "disagrees with its failure count",
                    expected=f"{rmap.failed_count} offsets",
                    actual=f"range {failed_zone}",
                )
            )
        base = region_index * per_region
        unreported = [
            base + offset for offset in failed_zone if base + offset not in hw_lines
        ]
        if unreported:
            violations.append(
                Violation(
                    invariant="redirection-reported",
                    layer="hardware",
                    message=f"region {region_index} map holds failed "
                    "slots the module never reported as failed lines",
                    expected="every failed-zone slot in "
                    "pcm.failed_logical_lines()",
                    actual=f"unreported logical lines {unreported[:8]}",
                )
            )
        # One-way count check: software may observe extra failures in a
        # region (statically injected pre-clustered maps never install
        # hardware maps), but the map must never exceed the physical
        # failure count of its region.
        physical_in_region = sum(
            1 for line in pcm._failed_physical if line // per_region == region_index
        )
        if rmap.failed_count > physical_in_region:
            violations.append(
                Violation(
                    invariant="redirection-overcount",
                    layer="hardware",
                    message=f"region {region_index} map records more "
                    "failures than physically occurred in the region",
                    expected=f"<= {physical_in_region} physical failures",
                    actual=f"failed_count {rmap.failed_count}",
                )
            )


# ======================================================================
# Runtime layer
# ======================================================================
def _vm_heap_pages(vm) -> List[Tuple[object, str]]:
    """Every live HeapPage the runtime tracks, with its owner label."""
    pages: List[Tuple[object, str]] = []
    supply = vm.supply
    collector = vm.collector
    if isinstance(collector, ImmixCollector):
        for block in collector.blocks:
            for page in block.pages:
                pages.append((page, f"block {block.virtual_index}"))
        for obj in collector.los.objects():
            for page in obj.los_placement.pages:
                pages.append((page, f"los object {obj.oid}"))
    for span in supply._spans:
        for page in span.free:
            pages.append((page, f"span {span.index} free list"))
    for page in supply._parked:
        pages.append((page, "parked penalty"))
    return pages


def check_page_conservation(vm, violations: List[Violation], trigger: str) -> None:
    """Every supply page is owned exactly once; the directory mirrors it."""
    collector = vm.collector
    supply = vm.supply
    if not isinstance(collector, ImmixCollector):
        return
    universe = {page.index for span in supply._spans for page in span.pages}
    owners: Dict[int, List[str]] = {}
    for page, where in _vm_heap_pages(vm):
        if page.index >= 0:
            owners.setdefault(page.index, []).append(where)
    for index in sorted(universe | set(owners)):
        holders = owners.get(index, [])
        if index not in universe:
            violations.append(
                Violation(
                    invariant="page-conservation",
                    layer="runtime",
                    page=index,
                    message="runtime holds a page outside the supply's "
                    "span universe",
                    expected="a page from the mapped heap",
                    actual=f"held by {holders}",
                )
            )
        elif len(holders) != 1:
            violations.append(
                Violation(
                    invariant="page-conservation",
                    layer="runtime",
                    page=index,
                    message="heap page must have exactly one owner "
                    "(block, LOS, free span, or parked)",
                    expected="exactly one owner",
                    actual=f"owners {holders or ['none']}",
                )
            )

    # Borrowed (negative-index) pages: the lent set must be exactly the
    # negative pages reachable through blocks and LOS placements.
    lent = {page.index for page in supply._borrowed_held}
    reachable = {
        page.index
        for page, _ in _vm_heap_pages(vm)
        if page.index < 0 and page.borrowed
    }
    if lent != reachable:
        violations.append(
            Violation(
                invariant="borrowed-page-tracking",
                layer="runtime",
                message="the supply's lent-page ledger diverged from the "
                "borrowed pages actually placed in the heap",
                expected=f"ledger {sorted(lent)}",
                actual=f"reachable {sorted(reachable)}",
            )
        )

    # The page directory must map exactly the pages blocks and the LOS
    # hold, each entry pointing back at its true owner.
    expected_dir: Dict[int, Tuple] = {}
    for block in collector.blocks:
        for slot, page in enumerate(block.pages):
            expected_dir[page.index] = ("block", id(block), slot)
    for obj in collector.los.objects():
        for page in obj.los_placement.pages:
            expected_dir[page.index] = ("los", id(obj))
    actual_dir: Dict[int, Tuple] = {}
    for index, entry in collector.page_directory.items():
        if entry[0] == "block":
            actual_dir[index] = ("block", id(entry[1]), entry[2])
        else:
            actual_dir[index] = ("los", id(entry[1]))
    for index in sorted(set(expected_dir) | set(actual_dir)):
        if expected_dir.get(index) != actual_dir.get(index):
            violations.append(
                Violation(
                    invariant="page-directory-sync",
                    layer="runtime",
                    page=index,
                    message="page directory entry disagrees with the "
                    "page's actual owner (dynamic failures on this page "
                    "would be misrouted)",
                    expected=str(expected_dir.get(index)),
                    actual=str(actual_dir.get(index)),
                )
            )


def check_space_accounting(vm, violations: List[Violation], trigger: str) -> None:
    """Debt/parked/lent ledgers agree; byte accounting stays conserved."""
    supply = vm.supply
    debt = supply.accountant.debt
    parked = len(supply._parked)
    lent = len(supply._borrowed_held)
    if not (debt == parked == lent):
        violations.append(
            Violation(
                invariant="borrow-penalty-accounting",
                layer="runtime",
                message="debit-credit ledgers diverged: every borrowed "
                "page parks exactly one penalty page",
                expected="debt == parked == lent pages",
                actual=f"debt {debt}, parked {parked}, lent {lent}",
            )
        )
    collector = vm.collector
    if not isinstance(collector, ImmixCollector):
        return
    los_pages = sum(obj.los_placement.n_pages for obj in collector.los.objects())
    if los_pages != collector.los.pages_in_use:
        violations.append(
            Violation(
                invariant="los-page-accounting",
                layer="runtime",
                message="LOS pages_in_use diverged from the sum of its "
                "live placements",
                expected=f"{los_pages} pages across placements",
                actual=f"pages_in_use {collector.los.pages_in_use}",
            )
        )
    live_bytes = sum(obj.size for block in collector.blocks for obj in block.objects)
    live_bytes += sum(obj.size for obj in collector.los.objects())
    # Arraylet spines are accounted at their own size, but their placed
    # chunks each carry a header plus alignment padding the accounting
    # never sees — allow that bounded overhead (chunks are counted
    # cumulatively, so this is a sound one-sided allowance).
    arraylet_allowance = vm.stats.arraylet_chunks * (
        object_model.HEADER_BYTES + object_model.ALIGNMENT - 1
    )
    allowed = vm.stats.bytes_allocated + arraylet_allowance
    if live_bytes > allowed:
        violations.append(
            Violation(
                invariant="byte-accounting",
                layer="runtime",
                message="live placed bytes exceed cumulative allocation "
                "(an object was placed without being accounted)",
                expected=f"<= {allowed} bytes allocated",
                actual=f"{live_bytes} live bytes",
            )
        )


def check_time_breakdown(vm, violations: List[Violation], trigger: str) -> None:
    """Traced phase totals telescope to the cost model's total time.

    The tracer charges every simulated-clock delta to exactly one
    phase, so the per-phase totals must sum to
    ``cost_model.total_time(stats)`` — the same value
    ``RunResult.time_units`` reports. A gap means a cost path ran
    outside phase accounting (or was double-counted); no-ops when the
    VM is untraced.
    """
    tracer = getattr(vm, "tracer", None)
    if tracer is None:
        return
    total = vm.cost_model.total_time(vm.stats)
    breakdown = tracer.phase_breakdown()
    summed = sum(breakdown.values())
    # Bucket-accumulation rounding only; thousands of phase switches
    # stay within a few ulps, so 1e-9 relative is generous headroom.
    tolerance = 1e-9 * max(1.0, abs(total))
    if abs(summed - total) > tolerance:
        violations.append(
            Violation(
                invariant="time-breakdown",
                layer="runtime",
                message="per-phase time breakdown does not sum to the "
                "cost model's total simulated time",
                expected=f"sum == total_time {total!r}",
                actual=f"sum {summed!r} over phases "
                f"{sorted(breakdown)} (delta {summed - total!r})",
            )
        )


def check_kernel_caches(vm, violations: List[Violation], trigger: str) -> None:
    """Cached hot-path summaries agree with a reference recomputation.

    The fast kernels trust generation counters to invalidate the
    per-block free-run summary, the object extent index, and the OS
    failure table's decoded-offset cache. A mutation that bypasses the
    owning object's mutators would leave a cache stale; this checker
    recomputes each summary with the retained reference kernels and
    flags any divergence. Under ``REPRO_KERNELS=reference`` the cached
    accessors already recompute per query, so the check is trivially
    clean — which is itself the bit-identity claim.
    """
    collector = vm.collector
    if isinstance(collector, ImmixCollector):
        for block in collector.blocks:
            summary = block.line_summary()
            reference_runs = line_table.free_runs_reference(block.line_states)
            reference_free = line_table.count_state(block.line_states, FREE)
            reference_largest = max(
                (length for _start, length in reference_runs), default=0
            )
            if (
                summary.runs != reference_runs
                or summary.free_lines != reference_free
                or summary.largest_run != reference_largest
            ):
                violations.append(
                    Violation(
                        invariant="kernel-cache-coherence",
                        layer="heap",
                        block=block.virtual_index,
                        message="cached free-run summary diverged from the "
                        "reference recomputation (a line-state mutation "
                        "bypassed the block's generation counter)",
                        expected=f"runs {reference_runs[:8]}, "
                        f"free {reference_free}, largest {reference_largest}",
                        actual=f"runs {summary.runs[:8]}, "
                        f"free {summary.free_lines}, "
                        f"largest {summary.largest_run}",
                    )
                )
            objs, starts = block.extent_index()
            expected_objs = sorted(
                (o for o in block.objects if o.offset is not None),
                key=lambda o: o.offset,
            )
            if [o.oid for o in objs] != [o.oid for o in expected_objs] or starts != [
                o.offset for o in expected_objs
            ]:
                violations.append(
                    Violation(
                        invariant="kernel-cache-coherence",
                        layer="heap",
                        block=block.virtual_index,
                        message="cached object extent index diverged from a "
                        "fresh offset sort of the block's objects",
                        expected=f"{len(expected_objs)} placed objects at "
                        f"{[o.offset for o in expected_objs][:8]}",
                        actual=f"{len(objs)} indexed objects at {starts[:8]}",
                    )
                )
    heap_table = getattr(collector, "table", None)
    if heap_table is not None:
        pairs = (
            ("free_line_count", heap_table.free_line_count(),
             heap_table.free_line_count_reference()),
            ("failed_line_count", heap_table.failed_line_count(),
             heap_table.failed_line_count_reference()),
            ("slots_with_free_lines", heap_table.slots_with_free_lines(),
             heap_table.slots_with_free_lines_reference()),
        )
        for name, fast, reference in pairs:
            if fast != reference:
                violations.append(
                    Violation(
                        invariant="kernel-cache-coherence",
                        layer="heap",
                        message=f"heap table's whole-heap {name} kernel "
                        "diverged from the per-slot reference scan",
                        expected=f"{reference}",
                        actual=f"{fast}",
                    )
                )
        for slot in heap_table.active_slots():
            guard = heap_table.lines[heap_table.base(slot) + heap_table.lines_per_block]
            if guard != UNMAPPED:
                violations.append(
                    Violation(
                        invariant="kernel-cache-coherence",
                        layer="heap",
                        message=f"slot {slot}'s guard byte was overwritten "
                        "(a segment write escaped its block)",
                        expected=f"0x{UNMAPPED:02X}",
                        actual=f"0x{guard:02X}",
                    )
                )
    supply = vm.supply
    if supply.free_real_pages != supply.recount_free_pages():
        violations.append(
            Violation(
                invariant="kernel-cache-coherence",
                layer="heap",
                message="page supply's incremental free-page count diverged "
                "from the per-span recount",
                expected=f"{supply.recount_free_pages()} free pages",
                actual=f"{supply.free_real_pages}",
            )
        )
    for span in supply._spans:
        n_perfect = sum(1 for page in span.free if page.is_perfect)
        if span.n_free_perfect != n_perfect:
            violations.append(
                Violation(
                    invariant="kernel-cache-coherence",
                    layer="heap",
                    message=f"span {span.index}'s incremental free-perfect "
                    "count diverged from a rescan of its free list",
                    expected=f"{n_perfect} perfect pages",
                    actual=f"{span.n_free_perfect}",
                )
            )
    table = vm.os.failure_table
    count = 0
    for page_index in table.imperfect_pages():
        bitmap = table.bitmap(page_index)
        reference_offsets = {
            i for i in range(vm.geometry.lines_per_page) if bitmap >> i & 1
        }
        count += len(reference_offsets)
        if table.failed_offsets(page_index) != reference_offsets:
            violations.append(
                Violation(
                    invariant="kernel-cache-coherence",
                    layer="os",
                    page=page_index,
                    message="failure table's decoded offset cache diverged "
                    "from its bitmap",
                    expected=f"offsets {sorted(reference_offsets)}",
                    actual=f"offsets {sorted(table.failed_offsets(page_index))}",
                )
            )
    if table.failed_line_count() != count:
        violations.append(
            Violation(
                invariant="kernel-cache-coherence",
                layer="os",
                message="failure table's incremental failed-line count "
                "diverged from the popcount of its bitmaps",
                expected=f"{count} failed lines",
                actual=f"{table.failed_line_count()}",
            )
        )


def check_snapshot_coherence(vm, violations: List[Violation], trigger: str) -> None:
    """Snapshotting must neither perturb the machine nor diverge from it.

    Capture the whole machine, digest it before and after (capture
    purity), restore the image and digest the twin (round-trip
    fidelity). A full pickle round-trip per audit is too heavy for the
    per-GC triggers, so this checker only engages on ``final`` and
    ``manual`` audits — every verified run still proves its machine
    was snapshot-safe at least once, at its most complex state.
    """
    if trigger not in ("final", "manual"):
        return
    # Imported lazily: repro.sim pulls the whole stack back in, and a
    # module-level import here would cycle through repro.runtime.vm.
    from ..sim.snapshot import MachineSnapshot, machine_digest

    before = machine_digest(vm)
    snapshot = MachineSnapshot.capture(vm, kind="audit")
    after = machine_digest(vm)
    if after != before:
        violations.append(
            Violation(
                invariant="snapshot-capture-purity",
                layer="runtime",
                message="capturing a snapshot mutated the live machine",
                expected=f"digest {before[:16]}…",
                actual=f"digest {after[:16]}…",
            )
        )
        return
    restored_digest = machine_digest(snapshot.restore())
    if restored_digest != before:
        violations.append(
            Violation(
                invariant="snapshot-round-trip",
                layer="runtime",
                message="a restored snapshot diverges from its source machine",
                expected=f"digest {before[:16]}…",
                actual=f"digest {restored_digest[:16]}…",
            )
        )


#: The full checker suite, in layer order (hardware outward), ending
#: with the meta-checkers that validate the caching and snapshot
#: machinery itself.
ALL_CHECKERS = (
    check_redirection_maps,
    check_failure_chain,
    check_os_pools,
    check_block_failure_seeding,
    check_block_line_marks,
    check_object_placement,
    check_page_conservation,
    check_space_accounting,
    check_time_breakdown,
    check_kernel_caches,
    check_snapshot_coherence,
)


def run_all_checkers(vm, trigger: str = "manual") -> Tuple[List[Violation], int]:
    """Run every checker against ``vm``; returns (violations, n_run)."""
    violations: List[Violation] = []
    for checker in ALL_CHECKERS:
        checker(vm, violations, trigger)
    return violations, len(ALL_CHECKERS)


def audit_vm(vm, trigger: str = "manual"):
    """Convenience: one full audit pass, returning the report."""
    from .audit import AuditReport

    violations, checks_run = run_all_checkers(vm, trigger)
    return AuditReport(trigger=trigger, violations=violations, checks_run=checks_run)
