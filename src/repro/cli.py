"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``    regenerate one or more of the paper's figures
``sweep``      run a (workload x rate x heap) grid, in parallel
``plan``       precheck / dry-run a declarative experiment plan
``report``     aggregate a sweep flight-recorder ledger
``bench``      run one workload at one configuration and dump counters
``trace``      record a Chrome trace of one (wearing) run
``check``      run a randomized fault-injection audit campaign
``microbench`` time the hot-path kernels against their reference twins
``lifetime``   age a PCM module under a wear-management strategy
``serve``      long-running shared-cache experiment service (HTTP)
``workloads``  list the synthetic DaCapo-style workloads

Grids can be spelled as flags or as declarative **experiment plans**
(YAML/JSON files with Cartesian sweep expansion; see
:mod:`repro.sim.plan` and the shipped files under ``plans/``):
``repro plan FILE`` prechecks a plan against the schema and exits 2 on
any violation, ``repro plan FILE --dry-run`` renders the fully
expanded cell list (with estimated cache hits against ``--cache-dir``)
without executing anything, and ``sweep --plan FILE`` /
``figures --plan FILE`` execute one — through exactly the same
cache/retry/quarantine machinery as the flag spelling, producing a
bit-identical ``results`` section for the same grid.

The ``figures`` and ``sweep`` commands accept ``--jobs`` (fan the grid
out over worker processes; results are bit-identical to serial) and
``--cache-dir`` (persist completed cells on disk so re-runs are nearly
free). ``sweep`` additionally writes a ``BENCH_sweep.json`` artifact
with per-cell wall times, cache hit/miss counts, worker utilization,
and a deterministic ``results`` section.

Sweeps are fault tolerant and resumable: ``--retries``/``--timeout``
(or an armed ``REPRO_CHAOS``) route cells through the fault-tolerant
executor — crashed or hung workers are retried with backoff, and cells
that keep failing are quarantined (exit code 3, partial artifact)
instead of aborting the sweep. ``sweep --resume`` restarts a killed
sweep against the same ``--cache-dir``: completed cells replay from
the cache and only the remainder re-executes. ``bench`` can snapshot
the whole simulated machine every N driver steps
(``--checkpoint-every``) and continue from a snapshot
(``--resume-from``) with bit-identical results; ``lifetime`` does the
same at iteration granularity.

Output streams follow one convention (see :mod:`repro.obs.log`):
stdout carries primary output — human reports (suppressed by ``-q``)
and machine-readable JSON (never suppressed) — while stderr carries
narration. ``figures``, ``sweep`` and ``bench`` accept ``--trace`` and
``--metrics-out`` to record Chrome traces / Prometheus metrics of the
runs they execute; ``trace`` is the dedicated single-run recorder and
defaults to a *wearing* module so the hardware failure path is hot.

Where the *harness* spends real wall-clock time is a separate
recorder: ``sweep --ledger PATH`` appends per-cell flight-recorder
events (queue, attempt, retry, cache, quarantine — schema
``repro.ledger/1``) from every process the sweep touches,
``--progress`` narrates live done/total + hit rate + ETA, and
``--profile-cells`` runs cProfile inside the workers. ``repro report
LEDGER`` folds the ledger into a wall-clock breakdown (phase totals,
slowest cells, hotspots) and can export a merged wall-clock Chrome
trace with one track per worker. All of it is observational: the
artifact's ``results`` section is bit-identical with the recorder on
or off.

Examples::

    python -m repro workloads
    python -m repro figures headline fig4 --scale 0.35
    python -m repro figures all --jobs 4 --cache-dir .repro-cache
    python -m repro sweep --workloads pmd xalan --rates 0 0.1 0.5 --jobs 4
    python -m repro plan plans/smoke.yaml --dry-run --cache-dir .repro-cache
    python -m repro sweep --plan plans/smoke.yaml --jobs 4
    python -m repro sweep --plan plans/smoke.yaml --jobs 4 --progress \
        --ledger sweep.ledger.jsonl --profile-cells
    python -m repro report sweep.ledger.jsonl --json --trace-out wall.json
    python -m repro bench pmd --rate 0.25 --clustering 2 --heap 2.0
    python -m repro trace --workload luindex --scale 0.1 --out trace.json
    python -m repro check --seed 0
    python -m repro microbench --iterations 2000 --out BENCH_kernels.json
    python -m repro lifetime --strategy retire --iterations 10
    python -m repro serve --port 8321 --cache-dir .repro-cache --jobs 4
    python -m repro.serve.client plans/smoke.yaml --out artifact.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from typing import List, Optional

from .check.audit import VERIFY_LEVELS
from .errors import PlanError, SnapshotError
from .faults.generator import FailureModel
from .ioutil import atomic_write_json, atomic_write_text
from .obs import log as obslog
from .obs.ledger import SweepLedger, SweepProgress, aggregate, read_ledger
from .obs.metrics import (
    SWEEP_QUARANTINED_CELLS_TOTAL,
    SWEEP_RETRIES_TOTAL,
    SWEEP_TIMEOUTS_TOTAL,
    SWEEP_WORKER_CRASHES_TOTAL,
    MetricsRegistry,
)
from .obs.profile import merge_profiles, render_hotspots
from .obs.trace import DEFAULT_CAPACITY, Tracer
from .sim.cache import ResultCache, result_to_dict
from .sim.chaos import ChaosConfig
from .sim.experiment import ExperimentRunner
from .sim.ftexec import RetryPolicy
from .sim.machine import (
    RunConfig,
    resume_benchmark,
    run_benchmark,
    run_wearing_benchmark,
)
from .sim.parallel import run_grid
from .sim.plan import cell_slug, dry_run_payload, load_and_expand, render_dry_run
from .sim.snapshot import CheckpointPolicy
from .workloads.dacapo import DACAPO

#: figure name -> callable(runner, scale) -> list of FigureResult
_FIGURES = {}


def _register_figures() -> None:
    from .sim import experiments as ex

    _FIGURES.update(
        {
            "fig3": lambda r, s: [ex.figure3(r, scale=s)],
            "fig4": lambda r, s: [ex.figure4(r, scale=s)],
            "fig5": lambda r, s: [ex.figure5(r, scale=s)],
            "fig6": lambda r, s: list(ex.figure6(r, scale=s)),
            "fig7": lambda r, s: [ex.figure7(r, scale=s)],
            "fig8": lambda r, s: [ex.figure8(r, scale=s)],
            "fig9": lambda r, s: list(ex.figure9(r, scale=s)),
            "fig10": lambda r, s: [ex.figure10(r, scale=s)],
            "pauses": lambda r, s: [ex.section42_pauses(r, scale=s)],
            "headline": lambda r, s: [ex.headline(r, scale=s)],
            "policies": lambda r, s: [ex.policy_comparison(r, scale=s)],
        }
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Failure-aware managed runtimes for wearable memories "
        "(PLDI 2013 reproduction)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress human reports and narration (JSON output and "
        "warnings still print)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="debug narration on stderr",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument(
        "names",
        nargs="*",
        default=["headline"],
        help="figure ids (fig3..fig10, pauses, headline, or 'all')",
    )
    figures.add_argument("--scale", type=float, default=0.35)
    figures.add_argument("--seeds", type=int, nargs="+", default=[0])
    figures.add_argument("--progress", action="store_true")
    figures.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    figures.add_argument(
        "--plan",
        metavar="FILE",
        default=None,
        help="take the figure list, scale, and seeds from an experiment "
        "plan (its 'figures' key) instead of the flags",
    )
    _add_execution_arguments(figures)
    _add_fault_tolerance_arguments(figures)
    _add_observability_arguments(figures, directory=True)
    figures.add_argument(
        "--sweep-json",
        metavar="PATH",
        default=None,
        help="write a BENCH_sweep.json execution artifact to PATH",
    )
    figures.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="append wall-clock flight-recorder events for every "
        "prefetch fan-out to PATH (aggregate with 'repro report')",
    )

    sweep = sub.add_parser(
        "sweep", help="run a (workload x rate x heap) grid in parallel"
    )
    sweep.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="workload subset (default: analysis suite)",
    )
    sweep.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.10, 0.25, 0.50]
    )
    sweep.add_argument("--heaps", type=float, nargs="+", default=[2.0])
    sweep.add_argument("--clustering", type=int, default=0, metavar="PAGES")
    sweep.add_argument("--line", type=int, default=256, choices=[64, 128, 256])
    sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    sweep.add_argument("--scale", type=float, default=0.35)
    _add_policy_arguments(sweep)
    sweep.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_sweep.json",
        help="sweep artifact path (default: %(default)s)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="restart an interrupted sweep: replay completed cells from "
        "--cache-dir (required) and execute only the remainder",
    )
    sweep.add_argument(
        "--plan",
        metavar="FILE",
        default=None,
        help="run the grid an experiment plan expands to (YAML/JSON, "
        "see plans/); conflicts with the grid-shape flags",
    )
    _add_execution_arguments(sweep)
    _add_fault_tolerance_arguments(sweep)
    _add_observability_arguments(sweep, directory=True)
    sweep.add_argument(
        "--ledger",
        metavar="PATH",
        default=None,
        help="append per-cell wall-clock flight-recorder events "
        "(schema repro.ledger/1, JSONL) from every sweep process to "
        "PATH; aggregate with 'repro report'",
    )
    sweep.add_argument(
        "--profile-cells",
        action="store_true",
        help="run each worker attempt under cProfile and spool pstats "
        "per cell ('repro report' merges them into a hotspot table); "
        "implies a ledger (default: <out>.ledger.jsonl)",
    )
    sweep.add_argument(
        "--progress",
        action="store_true",
        help="narrate live progress on stderr: done/total, running "
        "cells, cache hit rate, EMA-based ETA",
    )

    plan = sub.add_parser(
        "plan",
        help="precheck and dry-run a declarative experiment plan",
    )
    plan.add_argument("file", metavar="FILE", help="plan file (YAML or JSON)")
    plan.add_argument(
        "--dry-run",
        action="store_true",
        help="render the fully expanded cell list (count, per-cell "
        "slugs, estimated cache hits) without executing anything",
    )
    plan.add_argument(
        "--json", action="store_true", help="emit the dry run as JSON"
    )
    plan.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="estimate dry-run cache hits against this result cache",
    )
    plan.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the cache-hit estimate even with --cache-dir",
    )

    report = sub.add_parser(
        "report",
        help="aggregate a sweep flight-recorder ledger into a "
        "wall-clock breakdown",
    )
    report.add_argument(
        "ledger",
        metavar="LEDGER",
        help="ledger JSONL file written by 'sweep --ledger'",
    )
    report.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    report.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="rows in the slowest-cells and hotspot tables "
        "(default: %(default)s)",
    )
    report.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="also export the ledger as a merged wall-clock Chrome "
        "trace (one track per worker process)",
    )

    bench = sub.add_parser("bench", help="run one workload configuration")
    bench.add_argument("workload")
    bench.add_argument("--heap", type=float, default=2.0, metavar="MULTIPLIER")
    bench.add_argument("--rate", type=float, default=0.0)
    bench.add_argument("--clustering", type=int, default=0, metavar="PAGES")
    bench.add_argument("--line", type=int, default=256, choices=[64, 128, 256])
    bench.add_argument(
        "--collector",
        default="sticky-immix",
        choices=["immix", "sticky-immix", "marksweep", "sticky-marksweep"],
    )
    bench.add_argument("--no-compensate", action="store_true")
    bench.add_argument(
        "--arraylets",
        action="store_true",
        help="discontiguous arrays instead of the page-grained LOS",
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=0)
    _add_policy_arguments(bench)
    bench.add_argument(
        "--verify-heap",
        default=None,
        choices=list(VERIFY_LEVELS),
        metavar="LEVEL",
        help="cross-layer heap auditing: off, gc, upcall, or paranoid "
        "(default: the REPRO_VERIFY environment variable, else off)",
    )
    bench.add_argument(
        "--checkpoint",
        metavar="PATH",
        default="BENCH_checkpoint.snap",
        help="machine-snapshot path for --checkpoint-every "
        "(default: %(default)s)",
    )
    bench.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="STEPS",
        help="snapshot the whole simulated machine every N driver steps "
        "(0 = off); the snapshot resumes with --resume-from",
    )
    bench.add_argument(
        "--resume-from",
        metavar="PATH",
        default=None,
        help="continue an interrupted run from a checkpoint snapshot; "
        "the configuration travels inside the snapshot and the result "
        "is bit-identical to an uninterrupted run",
    )
    _add_observability_arguments(bench, directory=False)

    trace = sub.add_parser(
        "trace", help="record a Chrome trace (Perfetto-loadable) of one run"
    )
    trace.add_argument("--workload", required=True)
    trace.add_argument("--heap", type=float, default=2.0, metavar="MULTIPLIER")
    trace.add_argument("--rate", type=float, default=0.0)
    trace.add_argument("--clustering", type=int, default=2, metavar="PAGES")
    trace.add_argument("--line", type=int, default=256, choices=[64, 128, 256])
    trace.add_argument(
        "--collector",
        default="sticky-immix",
        choices=["immix", "sticky-immix", "marksweep", "sticky-marksweep"],
    )
    trace.add_argument("--scale", type=float, default=0.35)
    trace.add_argument("--seed", type=int, default=0)
    _add_policy_arguments(trace)
    trace.add_argument(
        "--wear",
        type=float,
        default=25.0,
        metavar="WRITES",
        help="mean line endurance in writes; the run wears the module so "
        "dynamic failures arrive mid-run (0 = aged module, static "
        "failures only; default: %(default)s)",
    )
    trace.add_argument(
        "--out",
        metavar="PATH",
        default="trace.json",
        help="Chrome trace_event JSON output (default: %(default)s)",
    )
    trace.add_argument(
        "--jsonl",
        metavar="PATH",
        default=None,
        help="also write raw events as JSON Lines to PATH",
    )
    trace.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write Prometheus text-format metrics to PATH",
    )
    trace.add_argument(
        "--buffer",
        type=int,
        default=DEFAULT_CAPACITY,
        metavar="EVENTS",
        help="trace ring-buffer capacity (default: %(default)s)",
    )

    check = sub.add_parser(
        "check", help="run a randomized fault-injection audit campaign"
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="workload subset (default: luindex antlr fop)",
    )
    check.add_argument("--scale", type=float, default=0.05)
    check.add_argument(
        "--level",
        default="paranoid",
        choices=[lvl for lvl in VERIFY_LEVELS if lvl != "off"],
        help="audit trigger density (default: %(default)s)",
    )

    microbench = sub.add_parser(
        "microbench",
        help="time the hot-path kernels against their reference twins",
    )
    microbench.add_argument(
        "--iterations",
        type=int,
        default=2000,
        help="timing iterations per kernel (default: %(default)s)",
    )
    microbench.add_argument("--seed", type=int, default=0)
    microbench.add_argument(
        "--workloads", nargs="+", default=["luindex"], metavar="NAME",
        help="end-to-end grid workloads (default: %(default)s)",
    )
    microbench.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.25]
    )
    microbench.add_argument("--heap", type=float, default=2.0, metavar="MULTIPLIER")
    microbench.add_argument("--scale", type=float, default=0.1)
    microbench.add_argument(
        "--verify-heap",
        default=None,
        choices=list(VERIFY_LEVELS),
        metavar="LEVEL",
        help="audit the end-to-end runs at this level (off, gc, upcall, "
        "or paranoid); the audits run under both kernel modes",
    )
    microbench.add_argument(
        "--skip-end-to-end",
        action="store_true",
        help="kernel timings only; skip the fast-vs-reference grid",
    )
    microbench.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_kernels.json",
        help="benchmark artifact path (default: %(default)s)",
    )

    lifetime = sub.add_parser("lifetime", help="age a PCM module")
    lifetime.add_argument(
        "--strategy",
        default="aware",
        choices=["retire", "aware", "clustered", "start-gap"],
    )
    lifetime.add_argument("--workload", default="avrora")
    lifetime.add_argument("--iterations", type=int, default=12)
    lifetime.add_argument("--endurance", type=float, default=40.0)
    lifetime.add_argument(
        "--checkpoint",
        metavar="PATH",
        default="LIFETIME_checkpoint.snap",
        help="snapshot path for --checkpoint-every (default: %(default)s)",
    )
    lifetime.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="ITERS",
        help="snapshot the aging module every N completed iterations "
        "(0 = off); not supported by the 'retire' strategy",
    )
    lifetime.add_argument(
        "--resume",
        metavar="PATH",
        default=None,
        help="continue an aging study from a lifetime snapshot (pass "
        "the same strategy/workload/endurance arguments)",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived shared-cache experiment service",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port (0 = ephemeral; default: %(default)s)",
    )
    _add_execution_arguments(serve)
    _add_fault_tolerance_arguments(serve)

    sub.add_parser("workloads", help="list workloads")
    return parser


def _add_policy_arguments(parser: argparse.ArgumentParser) -> None:
    """The three policy seams (see repro.policies); defaults = paper."""
    from .policies import PLACEMENT_POLICIES, POOL_POLICIES, WEAR_POLICIES

    parser.add_argument(
        "--wear-policy",
        default="none",
        choices=sorted(WEAR_POLICIES),
        help="hardware wear-leveling policy (default: %(default)s, "
        "the paper's design)",
    )
    parser.add_argument(
        "--pool-policy",
        default="paper",
        choices=sorted(POOL_POLICIES),
        help="OS page-pool supply/migration policy (default: %(default)s)",
    )
    parser.add_argument(
        "--placement-policy",
        default="paper",
        choices=sorted(PLACEMENT_POLICIES),
        help="runtime large-object placement policy (default: %(default)s)",
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared parallel/cache knobs for grid-running subcommands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run grid (0 = one per CPU); "
        "parallel results are bit-identical to serial",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist completed cells here; re-runs skip cached cells",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir: neither read nor write the disk cache",
    )


def _add_fault_tolerance_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared fault-tolerant-executor knobs for grid-running subcommands.

    Any of these (or an armed ``REPRO_CHAOS``) routes uncached cells
    through :mod:`repro.sim.ftexec` instead of the plain pool.
    """
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="attempts per cell before quarantine (default: "
        f"{RetryPolicy().max_attempts} once fault tolerance is engaged; "
        "1 = quarantine on first failure)",
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay before the first retry; doubles per attempt "
        f"with deterministic jitter (default: {RetryPolicy().base_delay_s:g})",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any cell attempt running longer than this",
    )


def _build_retry_policy(args) -> Optional[RetryPolicy]:
    """The executor policy implied by the flags, or None (plain pool).

    An armed ``REPRO_CHAOS`` also engages the executor: injected worker
    deaths would hang or abort a plain ``multiprocessing.Pool``.
    """
    chaos_armed = ChaosConfig.from_env() is not None
    if args.retries is None and args.retry_delay is None and not (
        args.timeout is not None or chaos_armed
    ):
        return None
    defaults = RetryPolicy()
    return RetryPolicy(
        max_attempts=(
            args.retries if args.retries is not None else defaults.max_attempts
        ),
        base_delay_s=(
            args.retry_delay
            if args.retry_delay is not None
            else defaults.base_delay_s
        ),
    )


def _sweep_metrics_registry(stats) -> MetricsRegistry:
    """Executor counters as metrics (the untraced sweep/figures path)."""
    registry = MetricsRegistry()
    report = stats.fault_tolerance
    registry.counter(
        SWEEP_RETRIES_TOTAL, "cell attempts retried after a failure"
    ).inc(report.retries)
    registry.counter(
        SWEEP_TIMEOUTS_TOTAL, "cell attempts killed for overrunning --timeout"
    ).inc(report.timeouts)
    registry.counter(
        SWEEP_WORKER_CRASHES_TOTAL, "worker processes that died mid-cell"
    ).inc(report.worker_crashes)
    registry.counter(
        SWEEP_QUARANTINED_CELLS_TOTAL, "cells abandoned after exhausting retries"
    ).inc(len(report.quarantined))
    return registry


def _add_observability_arguments(
    parser: argparse.ArgumentParser, directory: bool
) -> None:
    """Shared ``--trace``/``--metrics-out`` knobs.

    Grid commands take a directory (one Chrome trace per cell); bench
    takes a single output file.
    """
    if directory:
        parser.add_argument(
            "--trace",
            metavar="DIR",
            default=None,
            help="record a Chrome trace per executed cell into DIR "
            "(forces serial, uncached execution)",
        )
    else:
        parser.add_argument(
            "--trace",
            metavar="PATH",
            default=None,
            help="record a Chrome trace of the measured run to PATH",
        )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="write Prometheus text-format metrics to PATH",
    )


def _build_sweep_recorder(args):
    """(ledger, profile_dir) implied by the sweep recorder flags.

    ``--progress`` alone records in memory (listeners only, no file);
    ``--profile-cells`` needs a file for workers to announce their
    spools in, so it defaults the ledger to ``<out>.ledger.jsonl``.
    """
    if not (args.ledger or args.profile_cells or args.progress):
        return None, None
    ledger_path = args.ledger
    if ledger_path is None and args.profile_cells:
        ledger_path = os.path.splitext(args.out)[0] + ".ledger.jsonl"
        obslog.info(f"--profile-cells: recording ledger at {ledger_path}")
    ledger = SweepLedger(ledger_path)
    if args.progress:
        ledger.add_listener(SweepProgress(log=obslog.info))
    profile_dir = None
    if args.profile_cells:
        profile_dir = os.path.splitext(ledger_path)[0] + ".profiles"
    return ledger, profile_dir


def _build_cache(args) -> Optional[ResultCache]:
    if args.no_cache or not args.cache_dir:
        return None
    cache = ResultCache(args.cache_dir)
    # Writers killed mid-publish (chaos, OOM-killer, a yanked node) can
    # only leak unrenamed *.tmp files; reclaim them on startup.
    removed = cache.sweep_orphans()
    if removed:
        obslog.debug(f"cache: removed {removed} orphaned temp file(s)")
    return cache


def _trace_slug(config: RunConfig) -> str:
    """Filesystem-safe cell identifier for per-cell trace files.

    Delegates to :func:`repro.sim.plan.cell_slug`, which covers every
    sweepable dimension — an earlier version omitted clustering and
    scale, so cells differing only there overwrote each other's traces.
    """
    return cell_slug(config)


def _trace_metadata(config: RunConfig, result=None) -> dict:
    meta = {
        "workload": config.workload,
        "collector": config.collector,
        "rate": config.failure_model.rate,
        "heap_multiplier": config.heap_multiplier,
        "immix_line": config.immix_line,
        "seed": config.seed,
        "scale": config.scale,
    }
    if result is not None:
        meta["completed"] = result.completed
        meta["time_units"] = result.time_units
        meta["dynamic_failed_lines"] = result.stats.get("dynamic_failed_lines", 0)
    return meta


def _write_metrics(registry: MetricsRegistry, path: str) -> None:
    atomic_write_text(path, registry.render_prometheus())
    obslog.info(f"metrics: {path}")


def _render_phase_breakdown(breakdown: dict, total: float) -> List[str]:
    lines = ["phase breakdown (simulated time units)"]
    for phase, units in sorted(breakdown.items(), key=lambda kv: -kv[1]):
        share = units / total if total else 0.0
        lines.append(f"  {phase:16s} {units:16.0f} {share:7.1%}")
    return lines


def _write_sweep_artifact(path: str, stats_dict: dict) -> None:
    # Atomic publish: a sweep killed mid-write must leave any previous
    # artifact intact, not a torn BENCH_sweep.json — the same guarantee
    # ResultCache.put makes for cache entries.
    atomic_write_json(path, stats_dict, indent=2)
    cache = stats_dict.get("cache", {})
    obslog.info(
        f"sweep artifact: {path} ({stats_dict['cells']} cells, "
        f"{cache.get('hits', 0)} cache hits, {cache.get('misses', 0)} misses, "
        f"utilization {stats_dict['utilization']:.0%})"
    )


#: Grid-shape flags `sweep --plan` refuses to mix with a plan file:
#: (flag, argparse attribute, parser default).
_SWEEP_GRID_FLAGS = (
    ("--workloads", "workloads", None),
    ("--rates", "rates", [0.0, 0.10, 0.25, 0.50]),
    ("--heaps", "heaps", [2.0]),
    ("--clustering", "clustering", 0),
    ("--line", "line", 256),
    ("--seeds", "seeds", [0]),
    ("--scale", "scale", 0.35),
    ("--wear-policy", "wear_policy", "none"),
    ("--pool-policy", "pool_policy", "paper"),
    ("--placement-policy", "placement_policy", "paper"),
)


def cmd_figures(args) -> int:
    _register_figures()
    names = list(args.names)
    scale = args.scale
    seeds = list(args.seeds)
    if args.plan:
        conflicts = []
        if names != ["headline"]:
            conflicts.append("explicit figure names")
        if scale != 0.35:
            conflicts.append("--scale")
        if seeds != [0]:
            conflicts.append("--seeds")
        if conflicts:
            obslog.warn(
                "--plan supplies the figure list, scale, and seeds; "
                f"drop {', '.join(conflicts)} or the plan"
            )
            return 2
        plan = load_and_expand(args.plan)
        if not plan.figures:
            obslog.warn(
                f"plan {plan.name!r} lists no figures; add a 'figures:' "
                "key or run it with 'sweep --plan'"
            )
            return 2
        names = list(plan.figures)
        scale = plan.scale
        seeds = list(plan.seeds)
    if names == ["all"] or "all" in names:
        names = list(_FIGURES)
    unknown = [n for n in names if n not in _FIGURES]
    if unknown:
        obslog.warn(f"unknown figures: {', '.join(unknown)}")
        obslog.warn(f"available: {', '.join(_FIGURES)}")
        return 2
    progress = (lambda m: obslog.info(f"  .. {m}")) if args.progress else None
    cache = _build_cache(args)
    jobs = args.jobs
    registry = None
    tracer_factory = None
    trace_sink = None
    if args.trace and args.ledger:
        # Traced figures run serially in-process; there is no fan-out
        # for a flight recorder to observe.
        obslog.warn(
            "--trace runs cells serially in-process, which bypasses "
            "the fan-out --ledger records; drop one of the two"
        )
        return 2
    ledger = SweepLedger(args.ledger) if args.ledger else None
    if args.trace or args.metrics_out:
        registry = MetricsRegistry()
    if args.trace:
        # Tracers survive neither worker processes nor the disk cache:
        # a traced figure run is serial and pays for every cell.
        if jobs != 1:
            obslog.warn("--trace forces serial execution; ignoring --jobs")
            jobs = 1
        if cache is not None:
            obslog.warn("--trace disables the result cache for this run")
            cache = None
        os.makedirs(args.trace, exist_ok=True)

        def tracer_factory(config):
            return Tracer(metrics=registry)

        def trace_sink(config, tracer):
            from .obs.export import write_chrome_trace

            path = os.path.join(args.trace, _trace_slug(config) + ".trace.json")
            write_chrome_trace(tracer, path, metadata=_trace_metadata(config))
            obslog.debug(f"trace: {path}")

    runner = ExperimentRunner(
        seeds=tuple(seeds),
        progress=progress,
        cache=cache,
        jobs=jobs,
        tracer_factory=tracer_factory,
        trace_sink=trace_sink,
        retry=_build_retry_policy(args),
        timeout_s=args.timeout,
        ledger=ledger,
    )
    if args.json:
        payload = {
            name: [result.to_dict() for result in _FIGURES[name](runner, scale)]
            for name in names
        }
        print(json.dumps(payload, indent=2))
    else:
        for name in names:
            for result in _FIGURES[name](runner, scale):
                obslog.out(result.render())
                obslog.out()
    if cache is not None:
        counters = cache.counters()
        obslog.info(
            f"cache: {counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['stores']} stores ({args.cache_dir})"
        )
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    if ledger is not None and ledger.path:
        obslog.info(
            f"ledger: {ledger.path} ({len(ledger.events)} parent events; "
            "aggregate with 'repro report')"
        )
    if args.sweep_json:
        summary = runner.sweep_summary()
        if summary is None:
            from .sim.parallel import SweepStats

            summary = SweepStats(jobs=max(1, jobs))
        payload = summary.to_dict()
        if cache is not None:
            # The runner's lazy path also consults the cache directly;
            # the cache's own counters are the authoritative totals.
            payload["cache"] = {"hits": cache.hits, "misses": cache.misses}
        _write_sweep_artifact(args.sweep_json, payload)
    return 0


def cmd_sweep(args) -> int:
    from .workloads.dacapo import DACAPO, analysis_suite

    # Conflicting intent is a usage error, not a warning: a user who
    # asked for --resume or retries must not get a silently degraded
    # run (consistent with the --resume-without---cache-dir check).
    if args.trace:
        conflicts = [
            flag
            for flag, present in (
                ("--resume", args.resume),
                ("--retries", args.retries is not None),
                ("--retry-delay", args.retry_delay is not None),
                ("--timeout", args.timeout is not None),
                ("--ledger", args.ledger is not None),
                ("--profile-cells", args.profile_cells),
                ("--progress", args.progress),
            )
            if present
        ]
        if conflicts:
            obslog.warn(
                "--trace runs the sweep serially in-process and cannot "
                f"honour {', '.join(conflicts)}; drop --trace or the "
                "conflicting flag(s)"
            )
            return 2
    if args.plan:
        conflicts = [
            flag
            for flag, attribute, default in _SWEEP_GRID_FLAGS
            if getattr(args, attribute) != default
        ]
        if conflicts:
            obslog.warn(
                "--plan defines the grid; conflicting grid flags: "
                f"{', '.join(conflicts)}"
            )
            return 2
        plan = load_and_expand(args.plan)
        if not plan.cells:
            obslog.warn(
                f"plan {plan.name!r} expands to no grid cells (a "
                "figures-only plan?); run it with 'figures --plan'"
            )
            return 2
        grid = list(plan.cells)
        obslog.info(f"plan: {plan.name} expands to {len(grid)} cell(s)")
    else:
        available = [spec.name for spec in DACAPO]
        names = args.workloads or [spec.name for spec in analysis_suite()]
        unknown = [name for name in names if name not in available]
        if unknown:
            obslog.warn(f"unknown workloads: {', '.join(unknown)}")
            obslog.warn(f"available: {', '.join(available)}")
            return 2
        grid = [
            RunConfig(
                workload=name,
                heap_multiplier=heap,
                failure_model=FailureModel(rate=rate, hw_region_pages=args.clustering),
                immix_line=args.line,
                seed=seed,
                scale=args.scale,
                wear_policy=args.wear_policy,
                pool_policy=args.pool_policy,
                placement_policy=args.placement_policy,
            )
            for name in names
            for rate in args.rates
            for heap in args.heaps
            for seed in args.seeds
        ]
    if args.resume and (args.no_cache or not args.cache_dir):
        obslog.warn(
            "--resume replays completed cells from the persistent cache; "
            "pass --cache-dir (without --no-cache)"
        )
        return 2
    if args.trace:
        if _build_retry_policy(args) is not None:
            # Only an armed REPRO_CHAOS can reach this now: the
            # explicit-flag conflicts already errored out above.
            obslog.warn(
                "--trace runs serially in-process; ignoring REPRO_CHAOS"
            )
        results, stats = _run_traced_sweep(args, grid)
        ledger = None
    else:
        cache = _build_cache(args)
        ledger, profile_dir = _build_sweep_recorder(args)
        results, stats = run_grid(
            grid,
            jobs=args.jobs,
            cache=cache,
            retry=_build_retry_policy(args),
            timeout_s=args.timeout,
            chaos=ChaosConfig.from_env(),
            ledger=ledger,
            profile_dir=profile_dir,
        )
        if ledger is not None and ledger.path:
            obslog.info(
                f"ledger: {ledger.path} (aggregate with 'repro report')"
            )
        if args.resume:
            obslog.info(
                f"resume: {stats.cache_hits} of {len(grid)} cell(s) "
                f"replayed from {args.cache_dir}"
            )
        if args.metrics_out:
            _write_metrics(_sweep_metrics_registry(stats), args.metrics_out)
    obslog.out(f"{'workload':13s} {'rate':>5s} {'heap':>5s} {'seed':>4s} "
               f"{'status':>7s} {'time(ms)':>10s}")
    for result in results:
        config = result.config
        status = "ok" if result.completed else "DNF"
        time_ms = f"{result.time_ms:10.1f}" if result.completed else f"{'-':>10s}"
        obslog.out(f"{config.workload:13s} {config.failure_model.rate:5.0%} "
                   f"{config.heap_multiplier:5.2g} {config.seed:4d} "
                   f"{status:>7s} {time_ms}")
    for cell in stats.fault_tolerance.quarantined:
        obslog.warn(
            f"quarantined: {cell.workload} {cell.description} after "
            f"{cell.attempts} attempt(s): {'; '.join(cell.failures)}"
        )
    payload = stats.to_dict()
    if ledger is not None:
        # Additive wall-clock block from the flight recorder; the
        # bit-identity CI jobs compare "results" only, so this never
        # perturbs them.
        events = read_ledger(ledger.path)[0] if ledger.path else ledger.events
        payload["wall_clock"] = aggregate(events, top=5)
    # Deterministic per-cell results (input order, quarantined cells
    # absent): this is the section the chaos-smoke CI job compares
    # between a disturbed and an undisturbed sweep.
    payload["results"] = [result_to_dict(result) for result in results]
    _write_sweep_artifact(args.out, payload)
    # Exit 3 = partial results: the sweep survived, but some cells
    # exhausted their retries and are missing from the artifact.
    return 3 if stats.fault_tolerance.quarantined else 0


def _run_traced_sweep(args, grid: List[RunConfig]):
    """Serial sweep with one tracer per cell and a shared registry.

    Worker processes and the disk cache cannot carry trace events, so
    the traced path runs every cell inline; the SweepStats record is
    assembled by hand to keep the BENCH_sweep.json artifact identical
    in shape to the pooled path.
    """
    from .obs.export import write_chrome_trace
    from .sim.parallel import CellTiming, SweepStats, _describe

    if args.jobs not in (0, 1):
        obslog.warn("--trace runs the sweep serially; ignoring --jobs")
    if args.cache_dir and not args.no_cache:
        obslog.warn("--trace disables the result cache for this run")
    os.makedirs(args.trace, exist_ok=True)
    registry = MetricsRegistry()
    stats = SweepStats(jobs=1, cells=len(grid))
    results = []
    started = time.perf_counter()
    for index, config in enumerate(grid):
        tracer = Tracer(metrics=registry)
        cell_start = time.perf_counter()
        result = run_benchmark(config, tracer=tracer)
        wall = time.perf_counter() - cell_start
        stats.busy_s += wall
        stats.timings.append(
            CellTiming(
                index=index,
                workload=config.workload,
                description=_describe(config),
                wall_s=wall,
                cached=False,
                completed=result.completed,
            )
        )
        path = os.path.join(args.trace, _trace_slug(config) + ".trace.json")
        write_chrome_trace(tracer, path, metadata=_trace_metadata(config, result))
        obslog.debug(f"trace: {path}")
        results.append(result)
    stats.wall_s = time.perf_counter() - started
    obslog.info(f"traces: {len(grid)} cell(s) in {args.trace}")
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    return results, stats


def cmd_report(args) -> int:
    from .obs.export import (
        LEDGER_CATEGORIES,
        validate_chrome_trace,
        write_ledger_chrome_trace,
    )

    try:
        events, problems = read_ledger(args.ledger)
    except OSError as exc:
        obslog.warn(f"report: cannot read {args.ledger}: {exc}")
        return 2
    for problem in problems:
        obslog.warn(f"ledger: {problem}")
    if not events:
        obslog.warn(f"report: {args.ledger} holds no events")
        return 1
    report = aggregate(events, top=args.top)
    hotspots: List[dict] = []
    if report["profiles"]:
        hotspots, profile_problems = merge_profiles(
            report["profiles"], top=args.top
        )
        for problem in profile_problems:
            obslog.warn(f"profile: {problem}")
    if args.trace_out:
        payload = write_ledger_chrome_trace(events, args.trace_out)
        for problem in validate_chrome_trace(payload, LEDGER_CATEGORIES):
            obslog.warn(f"trace: {problem}")
        obslog.info(
            f"wall-clock trace: {args.trace_out} "
            f"({len(report['workers'])} worker track(s))"
        )
    if args.json:
        payload = dict(report)
        payload["hotspots"] = hotspots
        payload["ledger_problems"] = problems
        print(json.dumps(payload, indent=2))
        return 0

    obslog.out(f"ledger        {args.ledger} ({len(events)} events)")
    obslog.out(
        f"cells         {report['cells']} ({report['executed']} executed, "
        f"{report['cache']['hits']} cached, "
        f"{len(report['quarantined'])} quarantined), "
        f"jobs {report['jobs']}"
    )
    if report["wall_s"] is not None:
        obslog.out(
            f"wall clock    {report['wall_s']:.2f}s measured, "
            f"{report['accounted_s']:.2f}s accounted, "
            f"coverage {report['coverage']:.1%}"
        )
    else:
        obslog.out(
            "wall clock    unbounded ledger (no sweep_begin/sweep_end "
            "pair); phase totals only"
        )
    obslog.out("phase breakdown (wall seconds)")
    accounted = report["accounted_s"] or 1.0
    for phase, seconds in report["phases"].items():
        obslog.out(f"  {phase:12s} {seconds:10.3f}s {seconds / accounted:7.1%}")
    hit_rate = report["cache"]["hit_rate"]
    obslog.out(
        f"cache         {report['cache']['hits']} hit(s), "
        f"{report['cache']['misses']} miss(es)"
        + (f", hit rate {hit_rate:.0%}" if hit_rate is not None else "")
    )
    obslog.out(
        f"faults        {report['retries']} retried, "
        f"{len(report['quarantined'])} quarantined, "
        f"waste {report['waste_s']:.2f}s"
    )
    transport = report.get("transport", {})
    if transport.get("result_bytes") or transport.get("pickle_bytes"):
        moved = transport["result_bytes"]
        pickled = transport["pickle_bytes"]
        line = f"transport     {moved / 1024:.1f} KiB moved"
        if pickled > moved:
            line += (
                f" (pickle would have moved {pickled / 1024:.1f} KiB; "
                f"saved {transport['saved_bytes'] / 1024:.1f} KiB, "
                f"{1 - moved / pickled:.0%})"
            )
        obslog.out(line)
    obslog.out(f"workers       {len(report['workers'])} process(es)")
    if report["slowest_cells"]:
        obslog.out(f"slowest cells (top {len(report['slowest_cells'])})")
        for cell in report["slowest_cells"]:
            obslog.out(
                f"  cell {cell['cell']:4d} {cell['workload'] or '?':13s} "
                f"{cell['wall_s']:8.3f}s {cell['attempts']} attempt(s) "
                f"{cell['outcome']}"
            )
    if hotspots:
        obslog.out(
            f"hotspots (merged from {len(report['profiles'])} "
            "profile spool(s))"
        )
        for line in render_hotspots(hotspots):
            obslog.out("  " + line)
    return 0


def cmd_bench(args) -> int:
    registry = None
    tracer = None
    if args.trace or args.metrics_out:
        registry = MetricsRegistry()
        tracer = Tracer(metrics=registry)
    checkpoint = None
    if args.checkpoint_every > 0:
        checkpoint = CheckpointPolicy(
            args.checkpoint, every_steps=args.checkpoint_every
        )
    if args.resume_from:
        # The snapshot carries the RunConfig; flags describing the run
        # shape are ignored so the continuation cannot diverge.
        if args.verify_heap:
            obslog.warn("--verify-heap does not apply when resuming; ignored")
        result = resume_benchmark(
            args.resume_from, tracer=tracer, checkpoint=checkpoint
        )
        config = result.config
    else:
        config = RunConfig(
            workload=args.workload,
            heap_multiplier=args.heap,
            collector=args.collector,
            failure_model=FailureModel(
                rate=args.rate, hw_region_pages=args.clustering
            ),
            immix_line=args.line,
            compensate=not args.no_compensate,
            arraylets=args.arraylets,
            seed=args.seed,
            scale=args.scale,
            wear_policy=args.wear_policy,
            pool_policy=args.pool_policy,
            placement_policy=args.placement_policy,
        )
        result = run_benchmark(
            config, verify=args.verify_heap, tracer=tracer, checkpoint=checkpoint
        )
    # The baseline exists only for the slowdown ratio; it is never
    # traced, so the trace holds exactly the measured run's events.
    baseline = run_benchmark(
        replace(config, failure_model=FailureModel(), compensate=True)
    )
    obslog.out(f"workload      {config.workload}")
    obslog.out(f"configuration {config.failure_model.describe()}, "
               f"L{config.immix_line}, {config.collector}, "
               f"heap {config.heap_multiplier:g}x min")
    obslog.out(f"status        {'completed' if result.completed else 'DNF: ' + result.failure_note}")
    if result.completed:
        obslog.out(f"time          {result.time_ms:.1f} simulated ms "
                   f"({result.time_units / baseline.time_units:.3f}x the no-failure run)")
    interesting = (
        "collections", "full_collections", "run_advances", "block_requests",
        "overflow_allocs", "perfect_block_requests", "objects_copied",
    )
    for key in interesting:
        obslog.out(f"  {key:24s} {result.stats[key]}")
    obslog.out(f"  {'perfect_page_demand':24s} {result.perfect_page_demand}")
    obslog.out(f"  {'borrowed_pages':24s} {result.borrowed_pages}")
    if result.phase_breakdown:
        for line in _render_phase_breakdown(
            result.phase_breakdown, result.time_units
        ):
            obslog.out(line)
    if checkpoint is not None and checkpoint.emitted:
        obslog.info(
            f"checkpoints: {checkpoint.emitted} snapshot(s), last at "
            f"{args.checkpoint} (resume with --resume-from)"
        )
    if args.trace:
        from .obs.export import validate_chrome_trace, write_chrome_trace

        payload = write_chrome_trace(
            tracer, args.trace, metadata=_trace_metadata(config, result)
        )
        for problem in validate_chrome_trace(payload):
            obslog.warn(f"trace: {problem}")
        obslog.info(
            f"trace: {args.trace} ({tracer.recorded} events, "
            f"{tracer.dropped} dropped)"
        )
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)
    return 0 if result.completed else 1


def cmd_trace(args) -> int:
    from .obs.export import validate_chrome_trace, write_chrome_trace, write_jsonl

    available = [spec.name for spec in DACAPO]
    if args.workload not in available:
        obslog.warn(f"unknown workload: {args.workload}")
        obslog.warn(f"available: {', '.join(available)}")
        return 2
    registry = MetricsRegistry()
    tracer = Tracer(capacity=args.buffer, metrics=registry)
    config = RunConfig(
        workload=args.workload,
        heap_multiplier=args.heap,
        collector=args.collector,
        failure_model=FailureModel(rate=args.rate, hw_region_pages=args.clustering),
        immix_line=args.line,
        seed=args.seed,
        scale=args.scale,
        wear_policy=args.wear_policy,
        pool_policy=args.pool_policy,
        placement_policy=args.placement_policy,
    )
    if args.wear > 0:
        result = run_wearing_benchmark(config, mean_writes=args.wear, tracer=tracer)
    else:
        result = run_benchmark(config, tracer=tracer)
    metadata = _trace_metadata(config, result)
    metadata["wear_mean_writes"] = args.wear
    payload = write_chrome_trace(tracer, args.out, metadata=metadata)
    problems = validate_chrome_trace(payload)
    for problem in problems:
        obslog.warn(f"trace: {problem}")
    if args.jsonl:
        count = write_jsonl(tracer, args.jsonl)
        obslog.info(f"jsonl: {args.jsonl} ({count} events)")
    if args.metrics_out:
        _write_metrics(registry, args.metrics_out)

    categories = sorted({event.cat for event in tracer.events()})
    status = "completed" if result.completed else f"DNF: {result.failure_note}"
    obslog.out(f"workload      {args.workload} ({status})")
    obslog.out(f"trace         {args.out} ({tracer.recorded} events recorded, "
               f"{tracer.dropped} dropped, layers: {', '.join(categories)})")
    obslog.out(f"collections   {result.stats['collections']} "
               f"({result.stats['dynamic_failure_collections']} failure-forced, "
               f"{result.stats['dynamic_failed_lines']} lines failed dynamically)")
    if result.phase_breakdown:
        for line in _render_phase_breakdown(
            result.phase_breakdown, result.time_units
        ):
            obslog.out(line)
    obslog.info("open in Perfetto: https://ui.perfetto.dev -> Open trace file")
    return 0 if result.completed and not problems else 1


def cmd_check(args) -> int:
    from .check import run_campaign
    from .workloads.dacapo import DACAPO

    if args.workloads:
        available = [spec.name for spec in DACAPO]
        unknown = [name for name in args.workloads if name not in available]
        if unknown:
            obslog.warn(f"unknown workloads: {', '.join(unknown)}")
            obslog.warn(f"available: {', '.join(available)}")
            return 2
    result = run_campaign(
        seed=args.seed,
        workloads=args.workloads,
        scale=args.scale,
        level=args.level,
    )
    obslog.out(result.render())
    return 0 if result.ok else 1


def cmd_microbench(args) -> int:
    from .sim.microbench import payload_ok, run_microbench
    from .workloads.dacapo import DACAPO

    available = [spec.name for spec in DACAPO]
    unknown = [name for name in args.workloads if name not in available]
    if unknown:
        obslog.warn(f"unknown workloads: {', '.join(unknown)}")
        obslog.warn(f"available: {', '.join(available)}")
        return 2
    payload = run_microbench(
        iterations=args.iterations,
        seed=args.seed,
        workloads=args.workloads,
        rates=args.rates,
        heap_multiplier=args.heap,
        scale=args.scale,
        verify=args.verify_heap,
        end_to_end=not args.skip_end_to_end,
        progress=lambda message: obslog.info(f"  .. {message}"),
    )
    obslog.out(f"{'kernel':45s} {'fast(us)':>9s} {'ref(us)':>9s} "
               f"{'speedup':>8s} {'identical':>9s}")
    for entry in payload["kernels"]:
        per_fast = entry["fast_seconds"] / entry["iterations"] * 1e6
        per_reference = entry["reference_seconds"] / entry["iterations"] * 1e6
        obslog.out(f"{entry['kernel']:45s} {per_fast:9.2f} {per_reference:9.2f} "
                   f"{entry['speedup']:7.2f}x {str(entry['identical']):>9s}")
    end_to_end = payload["end_to_end"]
    if end_to_end is not None:
        grid = end_to_end["grid"]
        obslog.out(
            f"end-to-end    {grid['cells']} cell(s): "
            f"fast {end_to_end['fast_seconds']:.2f}s, "
            f"reference {end_to_end['reference_seconds']:.2f}s "
            f"({end_to_end['speedup']:.2f}x), bit-identical: "
            f"{end_to_end['bit_identical']}"
        )
        for cell in end_to_end["divergent_cells"]:
            obslog.warn(f"divergent cell: {cell}")
    atomic_write_json(args.out, payload, indent=2)
    obslog.info(f"microbench artifact: {args.out}")
    if not payload_ok(payload):
        obslog.warn("fast and reference kernels diverged; see the artifact")
        return 1
    return 0


def cmd_lifetime(args) -> int:
    import dataclasses

    from .hardware.wear_leveling import StartGapWearLeveler
    from .sim.lifetime import (
        retire_on_first_failure_lifetime,
        run_lifetime,
        write_heavy,
    )
    from .workloads.dacapo import workload

    spec = write_heavy(workload(args.workload), mutations_per_object=2.0)
    spec = dataclasses.replace(
        spec, total_alloc_bytes=min(spec.total_alloc_bytes, 1_500_000)
    )
    checkpoint = None
    if args.checkpoint_every > 0:
        checkpoint = CheckpointPolicy(
            args.checkpoint, every_steps=args.checkpoint_every
        )
    if args.strategy == "retire":
        if checkpoint is not None or args.resume:
            obslog.warn(
                "--checkpoint-every/--resume apply to the failure-aware "
                "strategies only, not 'retire'"
            )
            return 2
        result = retire_on_first_failure_lifetime(
            spec, max_iterations=args.iterations, endurance_mean_writes=args.endurance
        )
    else:
        result = run_lifetime(
            spec,
            clustering=args.strategy == "clustered",
            wear_leveler=(
                StartGapWearLeveler(gap_write_interval=20)
                if args.strategy == "start-gap"
                else None
            ),
            max_iterations=args.iterations,
            endurance_mean_writes=args.endurance,
            checkpoint=checkpoint,
            resume_from=args.resume,
        )
    if checkpoint is not None and checkpoint.emitted:
        obslog.info(
            f"checkpoints: {checkpoint.emitted} snapshot(s), last at "
            f"{args.checkpoint} (resume with --resume)"
        )
    obslog.out(result.describe())
    for record in result.records:
        bar = "#" * int(50 * record.failed_fraction)
        status = "ok " if record.completed else "DNF"
        obslog.out(f"  iter {record.iteration:2d} {status} "
                   f"{record.failed_fraction:6.1%} {bar}")
    return 0


def cmd_serve(args) -> int:
    from .serve.server import ExperimentService

    cache = _build_cache(args)
    if cache is None:
        obslog.warn(
            "serve: no --cache-dir; cross-client dedup is limited to jobs "
            "sharing this process lifetime (results are not persisted)"
        )
    service = ExperimentService(
        host=args.host,
        port=args.port,
        cache=cache,
        jobs=args.jobs,
        retry=_build_retry_policy(args),
        timeout_s=args.timeout,
    )
    host, port = service.address
    obslog.info(f"serve: listening on http://{host}:{port}")
    obslog.info(
        "serve: POST /jobs | GET /jobs/<id> | GET /jobs/<id>/artifact | "
        "GET /healthz | GET /metrics"
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        obslog.info("serve: interrupted, draining")
    finally:
        service.shutdown()
    return 0


def cmd_workloads(_args) -> int:
    for spec in DACAPO:
        obslog.out(f"{spec.name:13s} {spec.describe()}")
        obslog.out(f"{'':13s} {spec.description}")
    return 0


def cmd_plan(args) -> int:
    plan = load_and_expand(args.file)
    cache = None
    if args.dry_run and args.cache_dir and not args.no_cache:
        cache = ResultCache(args.cache_dir)
    if args.dry_run:
        if args.json:
            print(json.dumps(dry_run_payload(plan, cache), indent=2))
        else:
            obslog.out(render_dry_run(plan, cache))
        return 0
    # Precheck-only invocation: the plan compiled cleanly (load_and_expand
    # raised PlanError otherwise), so report the summary and exit 0.
    obslog.out(f"plan: {plan.name}  [{plan.source}]")
    if plan.description:
        obslog.out(f"  {plan.description}")
    for axis, size in plan.axes.items():
        obslog.out(f"  axis {axis}: {size} value(s)")
    obslog.out(f"  cells: {len(plan.cells)}")
    if plan.figures:
        obslog.out(f"  figures: {', '.join(plan.figures)}")
    obslog.out(
        "precheck OK; preview with --dry-run, execute with "
        "'sweep --plan' or 'figures --plan'"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    obslog.setup(-1 if args.quiet else args.verbose)
    # Environment switches are validated lazily (import never raises on
    # a bad value) so a typo'd REPRO_KERNELS=refrence produces a usage
    # error here — exit 2 — instead of a bare import-time traceback.
    from .heap.line_table import validate_kernel_mode
    from .sim.transport import validate_transport_mode

    for validate in (validate_kernel_mode, validate_transport_mode):
        try:
            validate()
        except ValueError as exc:
            obslog.warn(f"usage: {exc}")
            return 2
    handlers = {
        "figures": cmd_figures,
        "sweep": cmd_sweep,
        "bench": cmd_bench,
        "trace": cmd_trace,
        "check": cmd_check,
        "microbench": cmd_microbench,
        "lifetime": cmd_lifetime,
        "workloads": cmd_workloads,
        "plan": cmd_plan,
        "report": cmd_report,
        "serve": cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except PlanError as exc:
        # A plan that fails its precheck is a usage error; report every
        # problem (the precheck collects all of them), not a traceback.
        for problem in exc.problems:
            obslog.warn(f"plan: {problem.where}: {problem.message}")
        return 2
    except SnapshotError as exc:
        # Unreadable/corrupt/stale checkpoint files are usage errors
        # (bad --resume-from path, snapshot from edited sources), not
        # crashes worth a traceback.
        obslog.warn(f"snapshot: {exc}")
        return 2
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head).
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
