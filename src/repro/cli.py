"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures``    regenerate one or more of the paper's figures
``sweep``      run a (workload x rate x heap) grid, in parallel
``bench``      run one workload at one configuration and dump counters
``check``      run a randomized fault-injection audit campaign
``lifetime``   age a PCM module under a wear-management strategy
``workloads``  list the synthetic DaCapo-style workloads

The ``figures`` and ``sweep`` commands accept ``--jobs`` (fan the grid
out over worker processes; results are bit-identical to serial) and
``--cache-dir`` (persist completed cells on disk so re-runs are nearly
free). ``sweep`` additionally writes a ``BENCH_sweep.json`` artifact
with per-cell wall times, cache hit/miss counts, and worker
utilization.

Examples::

    python -m repro workloads
    python -m repro figures headline fig4 --scale 0.35
    python -m repro figures all --jobs 4 --cache-dir .repro-cache
    python -m repro sweep --workloads pmd xalan --rates 0 0.1 0.5 --jobs 4
    python -m repro bench pmd --rate 0.25 --clustering 2 --heap 2.0
    python -m repro check --seed 0
    python -m repro lifetime --strategy retire --iterations 10
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List, Optional

from .check.audit import VERIFY_LEVELS
from .faults.generator import FailureModel
from .sim.cache import ResultCache
from .sim.experiment import ExperimentRunner
from .sim.machine import RunConfig, run_benchmark
from .sim.parallel import run_grid
from .workloads.dacapo import DACAPO

#: figure name -> callable(runner, scale) -> list of FigureResult
_FIGURES = {}


def _register_figures() -> None:
    from .sim import experiments as ex

    _FIGURES.update(
        {
            "fig3": lambda r, s: [ex.figure3(r, scale=s)],
            "fig4": lambda r, s: [ex.figure4(r, scale=s)],
            "fig5": lambda r, s: [ex.figure5(r, scale=s)],
            "fig6": lambda r, s: list(ex.figure6(r, scale=s)),
            "fig7": lambda r, s: [ex.figure7(r, scale=s)],
            "fig8": lambda r, s: [ex.figure8(r, scale=s)],
            "fig9": lambda r, s: list(ex.figure9(r, scale=s)),
            "fig10": lambda r, s: [ex.figure10(r, scale=s)],
            "pauses": lambda r, s: [ex.section42_pauses(r, scale=s)],
            "headline": lambda r, s: [ex.headline(r, scale=s)],
        }
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Failure-aware managed runtimes for wearable memories "
        "(PLDI 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument(
        "names",
        nargs="*",
        default=["headline"],
        help="figure ids (fig3..fig10, pauses, headline, or 'all')",
    )
    figures.add_argument("--scale", type=float, default=0.35)
    figures.add_argument("--seeds", type=int, nargs="+", default=[0])
    figures.add_argument("--progress", action="store_true")
    figures.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    _add_execution_arguments(figures)
    figures.add_argument(
        "--sweep-json",
        metavar="PATH",
        default=None,
        help="write a BENCH_sweep.json execution artifact to PATH",
    )

    sweep = sub.add_parser(
        "sweep", help="run a (workload x rate x heap) grid in parallel"
    )
    sweep.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="workload subset (default: analysis suite)",
    )
    sweep.add_argument(
        "--rates", type=float, nargs="+", default=[0.0, 0.10, 0.25, 0.50]
    )
    sweep.add_argument("--heaps", type=float, nargs="+", default=[2.0])
    sweep.add_argument("--clustering", type=int, default=0, metavar="PAGES")
    sweep.add_argument("--line", type=int, default=256, choices=[64, 128, 256])
    sweep.add_argument("--seeds", type=int, nargs="+", default=[0])
    sweep.add_argument("--scale", type=float, default=0.35)
    sweep.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_sweep.json",
        help="sweep artifact path (default: %(default)s)",
    )
    _add_execution_arguments(sweep)

    bench = sub.add_parser("bench", help="run one workload configuration")
    bench.add_argument("workload")
    bench.add_argument("--heap", type=float, default=2.0, metavar="MULTIPLIER")
    bench.add_argument("--rate", type=float, default=0.0)
    bench.add_argument("--clustering", type=int, default=0, metavar="PAGES")
    bench.add_argument("--line", type=int, default=256, choices=[64, 128, 256])
    bench.add_argument(
        "--collector",
        default="sticky-immix",
        choices=["immix", "sticky-immix", "marksweep", "sticky-marksweep"],
    )
    bench.add_argument("--no-compensate", action="store_true")
    bench.add_argument(
        "--arraylets",
        action="store_true",
        help="discontiguous arrays instead of the page-grained LOS",
    )
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--verify-heap",
        default=None,
        choices=list(VERIFY_LEVELS),
        metavar="LEVEL",
        help="cross-layer heap auditing: off, gc, upcall, or paranoid "
        "(default: the REPRO_VERIFY environment variable, else off)",
    )

    check = sub.add_parser(
        "check", help="run a randomized fault-injection audit campaign"
    )
    check.add_argument("--seed", type=int, default=0)
    check.add_argument(
        "--workloads", nargs="+", default=None, metavar="NAME",
        help="workload subset (default: luindex antlr fop)",
    )
    check.add_argument("--scale", type=float, default=0.05)
    check.add_argument(
        "--level",
        default="paranoid",
        choices=[lvl for lvl in VERIFY_LEVELS if lvl != "off"],
        help="audit trigger density (default: %(default)s)",
    )

    lifetime = sub.add_parser("lifetime", help="age a PCM module")
    lifetime.add_argument(
        "--strategy",
        default="aware",
        choices=["retire", "aware", "clustered", "start-gap"],
    )
    lifetime.add_argument("--workload", default="avrora")
    lifetime.add_argument("--iterations", type=int, default=12)
    lifetime.add_argument("--endurance", type=float, default=40.0)

    sub.add_parser("workloads", help="list workloads")
    return parser


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared parallel/cache knobs for grid-running subcommands."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the run grid (0 = one per CPU); "
        "parallel results are bit-identical to serial",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist completed cells here; re-runs skip cached cells",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-dir: neither read nor write the disk cache",
    )


def _build_cache(args) -> Optional[ResultCache]:
    if args.no_cache or not args.cache_dir:
        return None
    return ResultCache(args.cache_dir)


def _write_sweep_artifact(path: str, stats_dict: dict) -> None:
    with open(path, "w") as handle:
        json.dump(stats_dict, handle, indent=2)
    cache = stats_dict.get("cache", {})
    print(
        f"sweep artifact: {path} ({stats_dict['cells']} cells, "
        f"{cache.get('hits', 0)} cache hits, {cache.get('misses', 0)} misses, "
        f"utilization {stats_dict['utilization']:.0%})",
        file=sys.stderr,
    )


def cmd_figures(args) -> int:
    _register_figures()
    names = list(args.names)
    if names == ["all"] or "all" in names:
        names = list(_FIGURES)
    unknown = [n for n in names if n not in _FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(_FIGURES)}", file=sys.stderr)
        return 2
    progress = (lambda m: print("  ..", m, file=sys.stderr)) if args.progress else None
    cache = _build_cache(args)
    runner = ExperimentRunner(
        seeds=tuple(args.seeds), progress=progress, cache=cache, jobs=args.jobs
    )
    if args.json:
        payload = {
            name: [result.to_dict() for result in _FIGURES[name](runner, args.scale)]
            for name in names
        }
        print(json.dumps(payload, indent=2))
    else:
        for name in names:
            for result in _FIGURES[name](runner, args.scale):
                print(result.render())
                print()
    if cache is not None:
        counters = cache.counters()
        print(
            f"cache: {counters['hits']} hits, {counters['misses']} misses, "
            f"{counters['stores']} stores ({args.cache_dir})",
            file=sys.stderr,
        )
    if args.sweep_json:
        summary = runner.sweep_summary()
        if summary is None:
            from .sim.parallel import SweepStats

            summary = SweepStats(jobs=max(1, args.jobs))
        payload = summary.to_dict()
        if cache is not None:
            # The runner's lazy path also consults the cache directly;
            # the cache's own counters are the authoritative totals.
            payload["cache"] = {"hits": cache.hits, "misses": cache.misses}
        _write_sweep_artifact(args.sweep_json, payload)
    return 0


def cmd_sweep(args) -> int:
    from .workloads.dacapo import DACAPO, analysis_suite

    available = [spec.name for spec in DACAPO]
    names = args.workloads or [spec.name for spec in analysis_suite()]
    unknown = [name for name in names if name not in available]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(available)}", file=sys.stderr)
        return 2
    grid = [
        RunConfig(
            workload=name,
            heap_multiplier=heap,
            failure_model=FailureModel(rate=rate, hw_region_pages=args.clustering),
            immix_line=args.line,
            seed=seed,
            scale=args.scale,
        )
        for name in names
        for rate in args.rates
        for heap in args.heaps
        for seed in args.seeds
    ]
    cache = _build_cache(args)
    results, stats = run_grid(grid, jobs=args.jobs, cache=cache)
    print(f"{'workload':13s} {'rate':>5s} {'heap':>5s} {'seed':>4s} "
          f"{'status':>7s} {'time(ms)':>10s}")
    for result in results:
        config = result.config
        status = "ok" if result.completed else "DNF"
        time_ms = f"{result.time_ms:10.1f}" if result.completed else f"{'-':>10s}"
        print(f"{config.workload:13s} {config.failure_model.rate:5.0%} "
              f"{config.heap_multiplier:5.2g} {config.seed:4d} "
              f"{status:>7s} {time_ms}")
    _write_sweep_artifact(args.out, stats.to_dict())
    return 0


def cmd_bench(args) -> int:
    config = RunConfig(
        workload=args.workload,
        heap_multiplier=args.heap,
        collector=args.collector,
        failure_model=FailureModel(rate=args.rate, hw_region_pages=args.clustering),
        immix_line=args.line,
        compensate=not args.no_compensate,
        arraylets=args.arraylets,
        seed=args.seed,
        scale=args.scale,
    )
    result = run_benchmark(config, verify=args.verify_heap)
    baseline = run_benchmark(
        replace(config, failure_model=FailureModel(), compensate=True)
    )
    print(f"workload      {args.workload}")
    print(f"configuration {config.failure_model.describe()}, "
          f"L{args.line}, {args.collector}, heap {args.heap:g}x min")
    print(f"status        {'completed' if result.completed else 'DNF: ' + result.failure_note}")
    if result.completed:
        print(f"time          {result.time_ms:.1f} simulated ms "
              f"({result.time_units / baseline.time_units:.3f}x the no-failure run)")
    interesting = (
        "collections", "full_collections", "run_advances", "block_requests",
        "overflow_allocs", "perfect_block_requests", "objects_copied",
    )
    for key in interesting:
        print(f"  {key:24s} {result.stats[key]}")
    print(f"  {'perfect_page_demand':24s} {result.perfect_page_demand}")
    print(f"  {'borrowed_pages':24s} {result.borrowed_pages}")
    return 0 if result.completed else 1


def cmd_check(args) -> int:
    from .check import run_campaign
    from .workloads.dacapo import DACAPO

    if args.workloads:
        available = [spec.name for spec in DACAPO]
        unknown = [name for name in args.workloads if name not in available]
        if unknown:
            print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
            print(f"available: {', '.join(available)}", file=sys.stderr)
            return 2
    result = run_campaign(
        seed=args.seed,
        workloads=args.workloads,
        scale=args.scale,
        level=args.level,
    )
    print(result.render())
    return 0 if result.ok else 1


def cmd_lifetime(args) -> int:
    import dataclasses

    from .hardware.wear_leveling import StartGapWearLeveler
    from .sim.lifetime import (
        retire_on_first_failure_lifetime,
        run_lifetime,
        write_heavy,
    )
    from .workloads.dacapo import workload

    spec = write_heavy(workload(args.workload), mutations_per_object=2.0)
    spec = dataclasses.replace(
        spec, total_alloc_bytes=min(spec.total_alloc_bytes, 1_500_000)
    )
    if args.strategy == "retire":
        result = retire_on_first_failure_lifetime(
            spec, max_iterations=args.iterations, endurance_mean_writes=args.endurance
        )
    else:
        result = run_lifetime(
            spec,
            clustering=args.strategy == "clustered",
            wear_leveler=(
                StartGapWearLeveler(gap_write_interval=20)
                if args.strategy == "start-gap"
                else None
            ),
            max_iterations=args.iterations,
            endurance_mean_writes=args.endurance,
        )
    print(result.describe())
    for record in result.records:
        bar = "#" * int(50 * record.failed_fraction)
        status = "ok " if record.completed else "DNF"
        print(f"  iter {record.iteration:2d} {status} "
              f"{record.failed_fraction:6.1%} {bar}")
    return 0


def cmd_workloads(_args) -> int:
    for spec in DACAPO:
        print(f"{spec.name:13s} {spec.describe()}")
        print(f"{'':13s} {spec.description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "figures": cmd_figures,
        "sweep": cmd_sweep,
        "bench": cmd_bench,
        "check": cmd_check,
        "lifetime": cmd_lifetime,
        "workloads": cmd_workloads,
    }
    try:
        return handlers[args.command](args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head).
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
