"""Garbage collectors: failure-aware (Sticky) Immix and mark-sweep baselines."""

from .immix import ImmixCollector, ImmixConfig
from .marksweep import SIZE_CLASSES, MarkSweepCollector, size_class_for
from .stats import GcStats

__all__ = [
    "ImmixCollector",
    "ImmixConfig",
    "SIZE_CLASSES",
    "MarkSweepCollector",
    "size_class_for",
    "GcStats",
]
