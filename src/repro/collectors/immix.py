"""The Immix mark-region collector, failure-aware (paper sections 4.1-4.2).

Faithful to the algorithm the paper extends:

* bump-pointer allocation into contiguous free-line runs, skipping over
  unavailable lines in one step;
* recycled blocks are consumed before completely free blocks;
* medium objects (larger than a line) that do not fit the current run
  divert to an *overflow* block so usable holes are not wasted;
* a page-grained large object space competes for the same page budget;
* occasional copying evacuates flagged blocks (used here for dynamic
  failures, exactly as the paper reuses the defragmentation mechanism);
* the Sticky variant adds sticky-mark-bit generational collection.

The failure-aware extension is deliberately minimal, as in the paper:
failed lines are a fourth line state seeded from the failure map, the
allocator's existing skipping machinery does the rest, and the overflow
path gains the search-then-request-perfect-block fallback.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set

from ..errors import OutOfMemoryError
from ..hardware.geometry import Geometry
from ..heap import line_table
from ..heap.block import Block
from ..heap.heap_table import HeapTable
from ..heap.large_object_space import LargeObjectSpace
from ..heap.object_model import SimObject, reachable_from
from ..heap.page_supply import PageSupply
from ..obs.trace import maybe_span
from ..units import KiB
from .stats import GcStats

#: Free-run-length histogram buckets, in lines (blocks have <= 128).
FREE_RUN_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class ImmixConfig:
    """Collector policy knobs (paper defaults)."""

    #: Objects larger than this go to the large object space.
    large_threshold: int = 8 * KiB
    #: Sticky-mark-bits generational collection (S-IX vs IX).
    generational: bool = True
    #: Copy nursery survivors opportunistically (sticky Immix default).
    copy_nursery_survivors: bool = True
    #: A nursery collection reclaiming less than this fraction of the
    #: heap escalates the next collection to a full-heap trace.
    nursery_yield_fraction: float = 0.08
    #: Paper section 3.3.3: an allocation that cannot be satisfied from
    #: imperfect memory triggers a collection and retries; only if the
    #: GC still cannot accommodate it may perfect memory be requested.
    #: Setting this False serves perfect requests immediately through
    #: the debit-credit model (an ablation of the protocol).
    collect_before_perfect: bool = True
    #: Discontiguous arrays (paper section 3.3.3, citing Sartor et
    #: al.'s Z-rays): split large objects into a spine plus fixed-size
    #: arraylets placed in ordinary line space, removing the need for
    #: perfect pages entirely at the cost of indirected accesses. The
    #: software-only alternative to clustering hardware.
    arraylets: bool = False
    #: Arraylet payload size; Sartor et al. report <13 % average
    #: overhead even at 256 B.
    arraylet_bytes: int = 2048


class _ArrayletSpine:
    """Placement record for a discontiguous (arraylet) large object."""

    __slots__ = ("chunks",)

    def __init__(self, chunks: List[SimObject]) -> None:
        self.chunks = chunks

    @property
    def virtual_base(self) -> Optional[int]:
        return self.chunks[0].address if self.chunks else None

    @property
    def n_pages(self) -> int:
        return 0  # arraylets live in line space, not the page-grained LOS

    @property
    def pages(self) -> list:
        return []


class _BumpState:
    """Cursor/limit pair over one block's free runs."""

    __slots__ = ("block", "runs", "run_idx", "cursor", "limit", "run_lines")

    def __init__(self, block: Block, runs: List[tuple]) -> None:
        self.block = block
        self.runs = runs
        self.run_idx = -1
        self.cursor = 0
        self.limit = 0
        self.run_lines = 1

    def advance_run(self, line_size: int) -> bool:
        self.run_idx += 1
        if self.run_idx >= len(self.runs):
            return False
        start, length = self.runs[self.run_idx]
        self.cursor = start * line_size
        self.limit = (start + length) * line_size
        self.run_lines = length
        return True

    def select_run(self, idx: int, line_size: int) -> None:
        start, length = self.runs[idx]
        self.run_idx = idx
        self.cursor = start * line_size
        self.limit = (start + length) * line_size
        self.run_lines = length


class ImmixCollector:
    """Failure-aware (Sticky) Immix over a :class:`PageSupply`."""

    def __init__(
        self,
        supply: PageSupply,
        geometry: Geometry,
        config: Optional[ImmixConfig] = None,
        stats: Optional[GcStats] = None,
        factory=None,
        placement=None,
    ) -> None:
        self.supply = supply
        self.geometry = geometry
        self.config = config or ImmixConfig()
        #: Large-object placement policy (:mod:`repro.policies`); None
        #: is the paper's placement (every large object demands perfect
        #: pages unless the global arraylets flag is on).
        self.placement = placement
        self.stats = stats or GcStats()
        self.los = LargeObjectSpace(supply, geometry)
        #: Whole-heap line-state arrays; every block is a segment view.
        self.table = HeapTable(geometry)
        self.blocks: List[Block] = []
        self._recycled: Deque[Block] = deque()
        self._state: Optional[_BumpState] = None
        self._overflow: Optional[_BumpState] = None
        self._epoch = 0
        self._next_block_index = 0
        self._young: List[SimObject] = []
        self._remset: Set[SimObject] = set()
        #: page index -> (block, slot) for dynamic-failure routing.
        self.page_directory: Dict[int, tuple] = {}
        # A borrowed page repaying debt adopts a real page's index
        # (PageSupply.release); re-key its directory entry or dynamic
        # failures on that page would be silently dropped.
        supply.on_page_reindexed = self._reindex_page
        #: Objects displaced by a failure and awaiting re-placement
        #: (drained by the VM after the forced full collection).
        self.displaced: List[SimObject] = []
        self._nursery_since_full = 0
        #: Object factory for arraylet chunks (set by the VM when the
        #: arraylets feature is enabled).
        self.factory = factory
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None
        self._bind_hot_scalars()

    def _bind_hot_scalars(self) -> None:
        # The allocation fast path runs once per object; chasing
        # config/geometry attribute chains there costs more than the
        # branch work itself. These are construction-time constants.
        self._large_threshold = self.config.large_threshold
        self._line_size = self.geometry.immix_line
        self._generational = self.config.generational
        self._collect_before_perfect = self.config.collect_before_perfect
        # None when the policy can never divert an object — the default
        # large path then skips the policy call entirely (bit-identical
        # to the pre-policy fast path).
        placement = self.placement
        self._tolerant_large = (
            placement.tolerant_large
            if placement is not None and placement.needs_arraylets
            else None
        )

    def __getstate__(self) -> dict:
        """Snapshot support: heap structure persists, wiring does not."""
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Re-solder the reindex callback: it is a bound method forming a
        # cycle with the supply, so it is dropped by PageSupply's own
        # __getstate__ rather than persisted.
        self.supply.on_page_reindexed = self._reindex_page

    def _trace_block_acquired(self, kind: str) -> None:
        tr = self.tracer
        if tr is not None:
            tr.instant("immix.block_acquired", args={"kind": kind})
            tr.metrics.counter(
                "repro_immix_blocks_acquired_total",
                "block acquisitions by source",
                kind=kind,
            ).inc()

    # ==================================================================
    # Allocation
    # ==================================================================
    def allocate(self, obj: SimObject, after_gc: bool = False) -> bool:
        """Place an object; False means a collection is needed first.

        The paper's protocol (section 3.3.3): an allocation that cannot
        be satisfied from imperfect memory first triggers a collection
        and retries; only when the GC *still* cannot accommodate it may
        the allocator request perfect memory. ``after_gc`` marks the
        post-collection retry, unlocking the perfect/borrow fallbacks.
        """
        size = obj.size
        allow_perfect = after_gc or not self._collect_before_perfect
        if size > self._large_threshold:
            placed = self._alloc_large(obj, allow_borrow=allow_perfect)
        elif size > self._line_size:
            placed = self._alloc_medium(obj, allow_perfect)
        else:
            placed = self._alloc_small(obj)
        if placed:
            stats = self.stats
            stats.objects_allocated += 1
            stats.bytes_allocated += size
            block = obj.block
            if block is not None and block.failed_lines:
                stats.block_sparsity_units += (
                    size * len(block.failed_lines) / block.n_lines
                )
            if self._generational:
                self._young.append(obj)
        return placed

    def _alloc_large(self, obj: SimObject, allow_borrow: bool = True) -> bool:
        if self.config.arraylets and self.factory is not None:
            return self._alloc_arraylets(obj, allow_perfect=allow_borrow)
        if (
            self._tolerant_large is not None
            and self.factory is not None
            and self._tolerant_large(obj)
        ):
            # HRM-style split: error-tolerant large objects shatter into
            # line-space arraylets (no perfect pages anywhere); strict
            # objects fall through to the perfect-page LOS below.
            return self._alloc_arraylets(obj, allow_perfect=allow_borrow)
        if not self.los.allocate(obj, allow_borrow=allow_borrow):
            return False
        self.stats.los_allocs += 1
        self.stats.los_pages_allocated += obj.los_placement.n_pages
        for page in obj.los_placement.pages:
            self.page_directory[page.index] = ("los", obj)
        return True

    def _alloc_arraylets(self, obj: SimObject, allow_perfect: bool = False) -> bool:
        """Split a large object into line-space arraylets (Z-rays).

        The spine object keeps references to its chunks, so the normal
        trace keeps them alive, the sweep reclaims them with the spine,
        and evacuation can relocate each chunk independently — no
        perfect pages are needed anywhere. All-or-nothing: a failed
        chunk placement rolls the earlier chunks back.
        """
        chunk_payload = self.config.arraylet_bytes
        remaining = obj.size
        chunks: List[SimObject] = []
        while remaining > 0:
            payload = min(remaining, chunk_payload)
            chunk = self.factory.make(payload)
            placed = (
                self._alloc_medium(chunk, allow_perfect)
                if chunk.size > self.geometry.immix_line
                else self._alloc_small(chunk)
            )
            if not placed:
                for done in chunks:
                    done.block.remove_object(done)
                    done.block = None
                    done.offset = None
                return False
            chunks.append(chunk)
            remaining -= payload
        for chunk in chunks:
            obj.add_ref(chunk)
            if self.config.generational:
                self._young.append(chunk)
        obj.los_placement = _ArrayletSpine(chunks)
        self.stats.arraylet_spines += 1
        self.stats.arraylet_chunks += len(chunks)
        self.stats.arraylet_bytes += obj.size
        return True

    def _alloc_small(self, obj: SimObject) -> bool:
        size = obj.size
        state = self._state
        while True:
            if state is not None and state.cursor + size <= state.limit:
                state.block.place(obj, state.cursor)
                state.cursor += size
                stats = self.stats
                stats.fast_path_allocs += 1
                stats.run_locality_units += size / state.run_lines
                return True
            state = self._advance_small()
            if state is None:
                return False

    def _advance_small(self) -> Optional[_BumpState]:
        line_size = self.geometry.immix_line
        if self._state is not None and self._state.advance_run(line_size):
            self.stats.run_advances += 1
            return self._state
        block = self._next_block()
        if block is None:
            self._state = None
            return None
        self._state = _BumpState(block, block.free_runs())
        if not self._state.advance_run(line_size):
            # A block with no free lines should never be queued; guard
            # against fully-failed blocks by skipping them.
            return self._advance_small()
        self.stats.run_advances += 1
        return self._state

    def _next_block(self) -> Optional[Block]:
        while self._recycled:
            block = self._recycled.popleft()
            if block.free_line_count() > 0:
                self.stats.block_requests += 1
                self._trace_block_acquired("recycled")
                return block
        return self._new_block()

    def _new_block(self) -> Optional[Block]:
        pages = self.supply.take_block_pages()
        if pages is None:
            return None
        block = Block(self._next_block_index, pages, self.geometry, table=self.table)
        self._next_block_index += 1
        self.blocks.append(block)
        for slot, page in enumerate(pages):
            self.page_directory[page.index] = ("block", block, slot)
        self.stats.block_requests += 1
        self._trace_block_acquired("free")
        return block

    # ------------------------------------------------------------------
    # Medium objects / overflow allocation (sections 4.1-4.2)
    # ------------------------------------------------------------------
    def _alloc_medium(self, obj: SimObject, allow_perfect: bool = False) -> bool:
        size = obj.size
        state = self._state
        if state is not None and state.cursor + size <= state.limit:
            state.block.place(obj, state.cursor)
            state.cursor += size
            self.stats.fast_path_allocs += 1
            self.stats.run_locality_units += size / state.run_lines
            return True
        return self._alloc_overflow(obj, allow_perfect)

    def _alloc_overflow(self, obj: SimObject, allow_perfect: bool = False) -> bool:
        size = obj.size
        line_size = self.geometry.immix_line
        self.stats.overflow_allocs += 1
        ov = self._overflow
        if ov is not None:
            if ov.cursor + size <= ov.limit:
                ov.block.place(obj, ov.cursor)
                ov.cursor += size
                self.stats.run_locality_units += size / ov.run_lines
                return True
            # Failure-aware change: search the remainder of the overflow
            # block for a suitably sized run before giving it up.
            for idx in range(ov.run_idx + 1, len(ov.runs)):
                self.stats.overflow_run_searches += 1
                start, length = ov.runs[idx]
                if length * line_size >= size:
                    ov.select_run(idx, line_size)
                    ov.block.place(obj, ov.cursor)
                    ov.cursor += size
                    self.stats.run_locality_units += size / ov.run_lines
                    return True
        return self._new_overflow_block(obj, allow_perfect)

    def _new_overflow_block(self, obj: SimObject, allow_perfect: bool = False) -> bool:
        size = obj.size
        line_size = self.geometry.immix_line
        pages = self.supply.take_block_pages()
        if pages is not None:
            block = Block(self._next_block_index, pages, self.geometry, table=self.table)
            self._next_block_index += 1
            self.blocks.append(block)
            for slot, page in enumerate(pages):
                self.page_directory[page.index] = ("block", block, slot)
            runs = block.free_runs()
            for idx, (start, length) in enumerate(runs):
                self.stats.overflow_run_searches += 1
                if length * line_size >= size:
                    state = _BumpState(block, runs)
                    state.select_run(idx, line_size)
                    block.place(obj, state.cursor)
                    state.cursor += size
                    self.stats.run_locality_units += size / state.run_lines
                    self._overflow = state
                    return True
            # The fresh block's holes defeat this object; let the small
            # path recycle it and fall through.
            self._recycled.append(block)
        if self._overflow_from_recycled(obj):
            return True
        if not allow_perfect:
            # collect_before_perfect protocol (resolved by the caller):
            # collect before touching perfect memory.
            return False
        return self._perfect_overflow_block(obj)

    def _overflow_from_recycled(self, obj: SimObject) -> bool:
        """No free block: scan recycled blocks for a fitting run.

        Keeps medium allocation alive when the global pool is empty but
        fragmented blocks still hold big-enough holes; the searched
        block becomes the new overflow block.
        """
        size = obj.size
        line_size = self.geometry.immix_line
        for block in list(self._recycled):
            runs = block.free_runs()
            self.stats.overflow_run_searches += len(runs)
            for idx, (start, length) in enumerate(runs):
                if length * line_size >= size:
                    self._recycled.remove(block)
                    state = _BumpState(block, runs)
                    state.select_run(idx, line_size)
                    block.place(obj, state.cursor)
                    state.cursor += size
                    self.stats.run_locality_units += size / state.run_lines
                    self._overflow = state
                    return True
        return False

    def _perfect_overflow_block(self, obj: SimObject) -> bool:
        """Last resort: a completely free *perfect* block (fussy).

        Served like any fussy request: real perfect PCM first, then the
        debit-credit DRAM loan (each borrowed page parks one real free
        page — the space penalty). When even the penalty cannot be paid,
        the allocation fails and a collection is the only recourse; at
        heavy unclustered failure rates this is what eventually stops
        some benchmarks from running (paper figures 7-9).
        """
        self.stats.perfect_block_requests += 1
        try:
            pages = self.supply.fussy_pages(self.geometry.pages_per_block)
        except OutOfMemoryError:
            return False
        self._trace_block_acquired("perfect")
        block = Block(self._next_block_index, pages, self.geometry, table=self.table)
        self._next_block_index += 1
        self.blocks.append(block)
        for slot, page in enumerate(pages):
            self.page_directory[page.index] = ("block", block, slot)
        state = _BumpState(block, block.free_runs())
        state.advance_run(self.geometry.immix_line)
        block.place(obj, state.cursor)
        state.cursor += obj.size
        self.stats.run_locality_units += obj.size / state.run_lines
        self._overflow = state
        return True

    # ==================================================================
    # Collection
    # ==================================================================
    def should_collect_full(self) -> bool:
        """Sticky policy: escalate when nursery yields run dry."""
        if not self.config.generational:
            return True
        return self._nursery_since_full >= 16

    def collect(self, roots: Sequence[SimObject], force_full: bool = False) -> dict:
        """One collection; returns a result summary.

        Sticky policy: run a nursery collection first; escalate to a
        full-heap trace when the nursery leaves too little free space
        (the space-time trade-off the paper leans on).
        """
        full = force_full or self.should_collect_full()
        if full:
            return self.collect_full(roots)
        result = self.collect_nursery(roots)
        heap_bytes = self.supply.total_pages * self.geometry.page
        if self._free_bytes_estimate() < self.config.nursery_yield_fraction * heap_bytes:
            return self.collect_full(roots)
        return result

    # ------------------------------------------------------------------
    def collect_full(self, roots: Sequence[SimObject]) -> dict:
        tr = self.tracer
        with maybe_span(tr, "gc.full", phase="gc.other"):
            self.stats.collections += 1
            self.stats.full_collections += 1
            self._nursery_since_full = 0
            self._epoch += 1
            epoch = self._epoch
            free_before = self._free_bytes_estimate()
            with maybe_span(tr, "gc.mark", phase="gc.mark"):
                live = reachable_from(roots, epoch)
                live_bytes = sum(obj.size for obj in live)
                self.stats.objects_traced += len(live)
                self.stats.bytes_traced += live_bytes
                self.stats.full_gc_live_bytes.append(live_bytes)
                for obj in live:
                    obj.old = True
            with maybe_span(tr, "gc.sweep", phase="gc.sweep"):
                self._sweep_blocks(epoch, keep_old=False)
                self._sweep_los(epoch, keep_old=False)
            self._rebuild_allocation_state(exclude_evacuating=True)
            with maybe_span(tr, "gc.evacuate", phase="gc.evacuate"):
                self._evacuate_flagged(epoch)
                # Evacuation bump-placed survivors into swept blocks whose
                # line marks do not show them yet; refresh those marks
                # before the final allocation-state rebuild or the mutator
                # would overlap the copies.
                for block in self.blocks:
                    if block.allocated_since_gc:
                        block.rebuild_line_marks(epoch, keep_old=True)
            self._rebuild_allocation_state(exclude_evacuating=False)
            if tr is not None:
                self._observe_free_runs(tr)
            self._young = []
            self._remset.clear()
            return {
                "kind": "full",
                "live_bytes": live_bytes,
                "live_objects": len(live),
                "reclaimed_bytes": max(0, self._free_bytes_estimate() - free_before),
            }

    def collect_nursery(self, roots: Sequence[SimObject]) -> dict:
        tr = self.tracer
        with maybe_span(tr, "gc.nursery", phase="gc.other"):
            self.stats.collections += 1
            self.stats.nursery_collections += 1
            self._nursery_since_full += 1
            self._epoch += 1
            epoch = self._epoch
            free_before = self._free_bytes_estimate()
            with maybe_span(tr, "gc.mark", phase="gc.mark"):
                live_young = self._trace_young(roots, epoch)
                live_bytes = sum(obj.size for obj in live_young)
                self.stats.objects_traced += len(live_young)
                self.stats.bytes_traced += live_bytes
                self.stats.nursery_live_bytes.append(live_bytes)
            with maybe_span(tr, "gc.sweep", phase="gc.sweep"):
                # Sweep only blocks allocated into since the last collection.
                for block in [b for b in self.blocks if b.allocated_since_gc]:
                    live_lines, scanned = block.rebuild_line_marks(
                        epoch, keep_old=True
                    )
                    self.stats.lines_swept += scanned
                    self.stats.lines_marked += live_lines
                    self.stats.blocks_swept += 1
                    if not block.objects:
                        self._release_block(block)
                self._sweep_los(epoch, keep_old=True)
            survivors = [obj for obj in self._young if obj.mark == epoch]
            for obj in survivors:
                obj.old = True
            self._rebuild_allocation_state(exclude_evacuating=True)
            if self.config.copy_nursery_survivors:
                with maybe_span(tr, "gc.copy", phase="gc.copy"):
                    self._copy_survivors(survivors, epoch)
            if tr is not None:
                self._observe_free_runs(tr)
            self._young = []
            self._remset.clear()
            return {
                "kind": "nursery",
                "live_bytes": live_bytes,
                "live_objects": len(live_young),
                "reclaimed_bytes": max(0, self._free_bytes_estimate() - free_before),
            }

    def _trace_young(self, roots: Sequence[SimObject], epoch: int) -> List[SimObject]:
        """Transitive closure over young objects only.

        Old objects are implicitly live (sticky mark bits); old->young
        edges created since the last collection were captured by the
        write barrier into the remembered set.
        """
        stack: List[SimObject] = []
        for obj in roots:
            if not obj.old and obj.mark != epoch:
                obj.mark = epoch
                stack.append(obj)
            elif obj.old:
                for child in obj.refs:
                    if not child.old and child.mark != epoch:
                        child.mark = epoch
                        stack.append(child)
        for parent in self._remset:
            for child in parent.refs:
                if not child.old and child.mark != epoch:
                    child.mark = epoch
                    stack.append(child)
        reached: List[SimObject] = []
        while stack:
            obj = stack.pop()
            reached.append(obj)
            for child in obj.refs:
                if not child.old and child.mark != epoch:
                    child.mark = epoch
                    stack.append(child)
        return reached

    # ------------------------------------------------------------------
    def write_barrier(self, parent: SimObject, child: SimObject) -> None:
        """Record old->young edges for the next nursery trace."""
        if self.config.generational and parent.old and not child.old:
            self._remset.add(parent)

    # ------------------------------------------------------------------
    # Sweeping and evacuation
    # ------------------------------------------------------------------
    def _sweep_blocks(self, epoch: int, keep_old: bool) -> None:
        kept: List[Block] = []
        for block in self.blocks:
            live_lines, scanned = block.rebuild_line_marks(epoch, keep_old=keep_old)
            self.stats.lines_swept += scanned
            self.stats.lines_marked += live_lines
            self.stats.blocks_swept += 1
            if block.objects:
                kept.append(block)
            else:
                self._release_block(block, from_list=False)
        self.blocks = kept

    def _sweep_los(self, epoch: int, keep_old: bool) -> None:
        def retire_directory_entries(obj: SimObject) -> None:
            # Before the release: freeing a perfect page while debt is
            # outstanding re-keys a live borrowed placement under this
            # same index, and a late pop would clobber its new entry.
            for page in obj.los_placement.pages:
                self.page_directory.pop(page.index, None)

        freed = self.los.sweep(
            epoch, keep_old=keep_old, on_free=retire_directory_entries
        )
        self.stats.los_pages_reclaimed += len(freed)

    def _release_block(self, block: Block, from_list: bool = True) -> None:
        for page in block.pages:
            self.page_directory.pop(page.index, None)
        self.supply.release_all(block.pages)
        # Blank the block's heap-table segment so whole-heap scans stop
        # seeing it; the slot is recycled for the next block.
        self.table.retire(block.slot)
        if from_list:
            self.blocks.remove(block)
        try:
            self._recycled.remove(block)
        except ValueError:
            pass

    def _observe_free_runs(self, tr) -> None:
        """Record the post-GC free-run-length distribution (tracing only).

        The run-length histogram is the paper's fragmentation lens: as
        lines fail, contiguous free runs shorten and bump allocation
        degrades. Sampled once per collection, after the final
        allocation-state rebuild — whose ``free_line_count()`` probe
        already primed each recycled block's run summary, so reading
        ``line_summary().runs`` here is a cache hit, not a rescan.
        """
        histogram = tr.metrics.histogram(
            "repro_free_run_length_lines",
            "length in lines of free runs available after GC",
            buckets=FREE_RUN_BUCKETS,
        )
        for block in self._recycled:
            for _start, length in block.line_summary().runs:
                histogram.observe(length)

    def _rebuild_allocation_state(self, exclude_evacuating: bool) -> None:
        if line_table.use_reference_kernels():
            candidates = [
                block
                for block in self.blocks
                if block.free_line_count() > 0
                and not (exclude_evacuating and block.evacuate)
            ]
        else:
            # Whole-heap kernel: one find-jumping scan over the flat
            # line array yields exactly the blocks with a free line —
            # every active segment's owner is in self.blocks, so this
            # is the same candidate set as the per-block filter.
            owners = self.table.owners
            candidates = [
                owners[slot] for slot in self.table.slots_with_free_lines()
            ]
            if exclude_evacuating:
                candidates = [b for b in candidates if not b.evacuate]
        candidates.sort(key=lambda b: b.virtual_index)
        self._recycled = deque(candidates)
        self._state = None
        self._overflow = None

    def _place_copy(self, obj: SimObject) -> bool:
        """Re-place a surviving object during evacuation/compaction.

        Uses the regular allocation machinery but does not count the
        placement as a fresh mutator allocation.
        """
        if obj.size > self.geometry.immix_line:
            # Copies run inside a collection: perfect fallback allowed.
            return self._alloc_medium(obj, allow_perfect=True)
        return self._alloc_small(obj)

    def _evacuate_flagged(self, epoch: int) -> None:
        flagged = [block for block in self.blocks if block.evacuate]
        for block in flagged:
            for obj in list(block.objects):
                if obj.pinned:
                    continue
                old_offset = obj.offset
                block.remove_object(obj)
                obj.block = None
                obj.offset = None
                if self._place_copy(obj):
                    self.stats.objects_copied += 1
                    self.stats.bytes_copied += obj.size
                    obj.moved_count += 1
                else:
                    block.place(obj, old_offset)
                    block.aborted_evacuations.add(obj.oid)
                    self.stats.evacuations_aborted += 1
            block.evacuate = False
            block.rebuild_line_marks(epoch, keep_old=True)
            if not block.objects:
                self._release_block(block)

    def _copy_survivors(self, survivors: List[SimObject], epoch: int) -> None:
        """Opportunistically compact nursery survivors (sticky Immix).

        Removal from the source block's object list is deferred and
        batched: placement never consults source object lists (free
        runs come from line marks, which removal does not touch), so
        dropping all of a source's moved objects in one list rebuild
        after the loop is order-equivalent to the eager per-object
        ``list.remove`` — without its quadratic cost on survivor-heavy
        nurseries. The two cases where an object re-enters its source
        list (copy landed in the same block; out-of-space restore) are
        fixed up eagerly so the final lists match the eager semantics
        element for element.
        """
        touched_sources: Set[Block] = set()
        pending: Dict[Block, Set[int]] = {}
        for obj in survivors:
            if obj.pinned or obj.is_large or obj.block is None:
                continue
            source = obj.block
            old_offset = obj.offset
            obj.block = None
            obj.offset = None
            dropped = pending.setdefault(source, set())
            dropped.add(id(obj))
            if self._place_copy(obj):
                if obj.block is source:
                    # The copy landed back in its own block: the list
                    # now holds the object twice (stale slot + fresh
                    # append). Drop the stale entry now, exactly as
                    # remove-then-place would have.
                    dropped.discard(id(obj))
                    source.objects.remove(obj)
                    source.touch_objects()
                self.stats.objects_copied += 1
                self.stats.bytes_copied += obj.size
                obj.moved_count += 1
                touched_sources.add(source)
            else:
                dropped.discard(id(obj))
                source.objects.remove(obj)
                source.touch_objects()
                source.place(obj, old_offset)
                break  # out of copy space: leave the rest in place
        for source, dropped in pending.items():
            if dropped:
                source.objects = [o for o in source.objects if id(o) not in dropped]
                source.touch_objects()
        # Recover the space the moved objects vacated right away.
        for source in touched_sources:
            source.rebuild_line_marks(epoch, keep_old=True)
            if not source.objects:
                self._release_block(source)

    # ------------------------------------------------------------------
    # Dynamic failures (section 4.2)
    # ------------------------------------------------------------------
    def note_dynamic_failure(self, page_index: int, pcm_offset: int) -> bool:
        """Poison the affected placement; True if a full GC is required.

        The failed line's page is found through the page directory. A
        block page poisons its Immix line, flags the block for
        evacuation, and requires a full collection (the paper reuses the
        defragmentation mechanism) — unless the Immix line was already
        failed (a duplicate hit from a second PCM line poisoning the
        same larger Immix line), which holds no live data and needs no
        evacuation. A large object's page triggers an immediate
        reallocation of that object onto fresh perfect pages.
        """
        entry = self.page_directory.get(page_index)
        if entry is None:
            return False
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "immix.dynamic_failure",
                args={
                    "page": page_index,
                    "pcm_offset": pcm_offset,
                    "target": entry[0],
                },
            )
            tr.metrics.counter(
                "repro_runtime_dynamic_failures_total",
                "dynamic line failures routed into the collector",
                target=entry[0],
            ).inc()
        if entry[0] == "block":
            _, block, slot = entry
            page = block.pages[slot]
            page.failed_offsets = frozenset(page.failed_offsets) | {pcm_offset}
            _, newly_failed = block.record_dynamic_failure(slot, pcm_offset)
            if newly_failed:
                self.stats.dynamic_failed_lines += 1
            else:
                self.stats.duplicate_dynamic_failures += 1
            return newly_failed
        _, obj = entry
        old_pages = list(obj.los_placement.pages)
        for page in old_pages:
            self.page_directory.pop(page.index, None)
            if page.index == page_index:
                page.failed_offsets = frozenset(page.failed_offsets) | {pcm_offset}
        # Free first so its (now imperfect) pages rejoin the supply,
        # then place the object on fresh perfect pages.
        self.los.free(obj)
        if self._alloc_large(obj):
            self.stats.objects_copied += 1
            self.stats.bytes_copied += obj.size
            obj.moved_count += 1
            return False
        self.displaced.append(obj)
        return True

    def _reindex_page(self, old_index: int, new_index: int) -> None:
        """A held page changed identity (borrowed -> real); follow it."""
        entry = self.page_directory.pop(old_index, None)
        if entry is not None:
            self.page_directory[new_index] = entry

    # ------------------------------------------------------------------
    def _free_bytes_estimate(self) -> int:
        if line_table.use_reference_kernels():
            block_free = sum(block.usable_bytes() for block in self.blocks)
        else:
            # One C-speed count over the whole-heap array; guard bytes
            # and retired segments are UNMAPPED, so this equals the
            # per-block sum exactly.
            block_free = self.table.free_line_count() * self.geometry.immix_line
        return block_free + self.supply.available_pages() * self.geometry.page

    def heap_census(self) -> dict:
        """Debug/metrics snapshot of heap composition."""
        if line_table.use_reference_kernels():
            failed_lines = sum(b.failed_line_count() for b in self.blocks)
            free_lines = sum(b.free_line_count() for b in self.blocks)
        else:
            failed_lines = self.table.failed_line_count()
            free_lines = self.table.free_line_count()
        return {
            "blocks": len(self.blocks),
            "recycled": len(self._recycled),
            "los_objects": len(self.los),
            "free_pages": self.supply.available_pages(),
            "failed_lines": failed_lines,
            "free_lines": free_lines,
        }
