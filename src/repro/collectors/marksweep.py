"""Mark-sweep baseline with a segregated-size free list (paper fig. 3).

This is the MS / Sticky-MS baseline the paper compares Immix against: a
classic segregated-fit allocator in the style of MMTk's MarkSweep.
Blocks are dedicated to a size class on demand and carved into
equal-size cells; allocation pops a free cell, collection traces and
returns dead cells to their class's free list.

It also illustrates the paper's section 3.3.1 argument: making a
free-list allocator failure-aware is *possible* (mark cells overlapping
failed lines unavailable) but mismatched — one failed 64 B line kills a
whole cell, and large cells amplify the waste. We implement that
optional failure mode so the complexity/fragmentation argument is
measurable, while the paper's evaluation uses MS only without failures.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..hardware.geometry import Geometry
from ..heap.block import Block
from ..heap.heap_table import HeapTable
from ..heap.large_object_space import LargeObjectSpace
from ..heap.object_model import SimObject, reachable_from
from ..heap.page_supply import PageSupply
from ..obs.trace import maybe_span
from ..units import KiB
from .stats import GcStats

#: Size classes (bytes), MMTk-flavoured: fine-grained small sizes, then
#: power-of-two-ish steps up to the large-object threshold.
SIZE_CLASSES = (
    16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024,
    1536, 2048, 3072, 4096, 6144, 8192,
)


def size_class_for(size: int) -> Optional[int]:
    """The smallest class that fits ``size``; None when it is large."""
    for cls in SIZE_CLASSES:
        if size <= cls:
            return cls
    return None


class _ClassSpace:
    """Free cells and blocks for one size class."""

    __slots__ = ("cell_size", "free_cells", "fresh_cells", "blocks")

    def __init__(self, cell_size: int) -> None:
        self.cell_size = cell_size
        #: Recycled cells (freed by a sweep) as (block, offset) pairs.
        #: Reused LIFO, like a real free list — and scattered, unlike
        #: bump allocation, which is what costs MS mutator locality.
        self.free_cells: Deque[Tuple[Block, int]] = deque()
        #: Never-used cells from freshly carved blocks (contiguous).
        self.fresh_cells: Deque[Tuple[Block, int]] = deque()
        self.blocks: List[Block] = []


class MarkSweepCollector:
    """Segregated-fit mark-sweep over the same page supply as Immix."""

    def __init__(
        self,
        supply: PageSupply,
        geometry: Geometry,
        generational: bool = False,
        large_threshold: int = 8 * KiB,
        failure_aware: bool = False,
        stats: Optional[GcStats] = None,
    ) -> None:
        self.supply = supply
        self.geometry = geometry
        self.generational = generational
        self.large_threshold = large_threshold
        self.failure_aware = failure_aware
        self.stats = stats or GcStats()
        self.los = LargeObjectSpace(supply, geometry)
        #: Shared whole-heap line arrays (one segment per class block).
        self.table = HeapTable(geometry)
        self._classes: Dict[int, _ClassSpace] = {
            cls: _ClassSpace(cls) for cls in SIZE_CLASSES
        }
        self._epoch = 0
        self._next_block_index = 0
        self._young: List[SimObject] = []
        self._remset: Set[SimObject] = set()
        self._nursery_since_full = 0
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None

    def __getstate__(self) -> dict:
        """Snapshot support: heap structure persists, wiring does not."""
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    # ==================================================================
    # Allocation
    # ==================================================================
    def allocate(self, obj: SimObject, after_gc: bool = False) -> bool:
        size = obj.size
        if size > self.large_threshold:
            if not self.los.allocate(obj, allow_borrow=True):
                return False
            self.stats.los_allocs += 1
            self.stats.los_pages_allocated += obj.los_placement.n_pages
        else:
            cls = size_class_for(size)
            space = self._classes[cls]
            if space.free_cells:
                block, offset = space.free_cells.pop()  # LIFO reuse
                self.stats.freelist_reuse_allocs += 1
            else:
                if not space.fresh_cells and not self._grow_class(space):
                    return False
                block, offset = space.fresh_cells.popleft()
            block.place(obj, offset)
            self.stats.freelist_allocs += 1
            self.stats.freelist_waste_bytes += cls - size
        self.stats.objects_allocated += 1
        self.stats.bytes_allocated += obj.size
        if self.generational:
            self._young.append(obj)
        return True

    def _grow_class(self, space: _ClassSpace) -> bool:
        pages = self.supply.take_block_pages()
        if pages is None:
            return False
        block = Block(self._next_block_index, pages, self.geometry, table=self.table)
        self._next_block_index += 1
        space.blocks.append(block)
        self.stats.block_requests += 1
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "marksweep.block_acquired",
                args={"size_class": space.cell_size},
            )
            tr.metrics.counter(
                "repro_marksweep_blocks_acquired_total",
                "size-class block acquisitions",
            ).inc()
        cell = space.cell_size
        line_size = self.geometry.immix_line
        for offset in range(0, self.geometry.block - cell + 1, cell):
            if self.failure_aware and self._cell_overlaps_failure(
                block, offset, cell, line_size
            ):
                continue
            space.fresh_cells.append((block, offset))
        return True

    def _cell_overlaps_failure(
        self, block: Block, offset: int, cell: int, line_size: int
    ) -> bool:
        first = offset // line_size
        last = (offset + cell - 1) // line_size
        return any(line in block.failed_lines for line in range(first, last + 1))

    # ==================================================================
    # Collection
    # ==================================================================
    def write_barrier(self, parent: SimObject, child: SimObject) -> None:
        if self.generational and parent.old and not child.old:
            self._remset.add(parent)

    def should_collect_full(self) -> bool:
        if not self.generational:
            return True
        return self._nursery_since_full >= 16

    def collect(self, roots: Sequence[SimObject], force_full: bool = False) -> dict:
        if force_full or self.should_collect_full():
            return self.collect_full(roots)
        result = self.collect_nursery(roots)
        if not any(space.free_cells for space in self._classes.values()) and (
            self.supply.available_pages() < self.geometry.pages_per_block
        ):
            return self.collect_full(roots)
        return result

    def collect_full(self, roots: Sequence[SimObject]) -> dict:
        tr = self.tracer
        with maybe_span(tr, "gc.full", phase="gc.other"):
            self.stats.collections += 1
            self.stats.full_collections += 1
            self._nursery_since_full = 0
            self._epoch += 1
            epoch = self._epoch
            with maybe_span(tr, "gc.mark", phase="gc.mark"):
                live = reachable_from(roots, epoch)
                live_bytes = sum(obj.size for obj in live)
                self.stats.objects_traced += len(live)
                self.stats.bytes_traced += live_bytes
                self.stats.full_gc_live_bytes.append(live_bytes)
                for obj in live:
                    obj.old = True
            with maybe_span(tr, "gc.sweep", phase="gc.sweep"):
                self._sweep(epoch, keep_old=False)
                self.stats.los_pages_reclaimed += len(
                    self.los.sweep(epoch, keep_old=False)
                )
            self._young = []
            self._remset.clear()
            return {
                "kind": "full",
                "live_bytes": live_bytes,
                "live_objects": len(live),
            }

    def collect_nursery(self, roots: Sequence[SimObject]) -> dict:
        tr = self.tracer
        with maybe_span(tr, "gc.nursery", phase="gc.other"):
            self.stats.collections += 1
            self.stats.nursery_collections += 1
            self._nursery_since_full += 1
            self._epoch += 1
            epoch = self._epoch
            with maybe_span(tr, "gc.mark", phase="gc.mark"):
                live_young = self._trace_young(roots, epoch)
                live_bytes = sum(obj.size for obj in live_young)
                self.stats.objects_traced += len(live_young)
                self.stats.bytes_traced += live_bytes
                self.stats.nursery_live_bytes.append(live_bytes)
            with maybe_span(tr, "gc.sweep", phase="gc.sweep"):
                # Sweep dead young objects straight back to their free
                # lists — cells are fixed, so no line-mark rebuild is
                # needed.
                dead = [obj for obj in self._young if obj.mark != epoch]
                for obj in dead:
                    if obj.is_large:
                        self.stats.los_pages_reclaimed += obj.los_placement.n_pages
                        self.los.free(obj)
                        continue
                    self._free_cell(obj)
                self.stats.cells_swept += len(self._young)
            for obj in self._young:
                if obj.mark == epoch:
                    obj.old = True
            self._young = []
            self._remset.clear()
            return {
                "kind": "nursery",
                "live_bytes": live_bytes,
                "live_objects": len(live_young),
            }

    def _trace_young(self, roots: Sequence[SimObject], epoch: int) -> List[SimObject]:
        stack: List[SimObject] = []
        for obj in roots:
            if not obj.old and obj.mark != epoch:
                obj.mark = epoch
                stack.append(obj)
            elif obj.old:
                for child in obj.refs:
                    if not child.old and child.mark != epoch:
                        child.mark = epoch
                        stack.append(child)
        for parent in self._remset:
            for child in parent.refs:
                if not child.old and child.mark != epoch:
                    child.mark = epoch
                    stack.append(child)
        reached: List[SimObject] = []
        while stack:
            obj = stack.pop()
            reached.append(obj)
            for child in obj.refs:
                if not child.old and child.mark != epoch:
                    child.mark = epoch
                    stack.append(child)
        return reached

    def _free_cell(self, obj: SimObject) -> None:
        block = obj.block
        if block is None:
            return
        cls = size_class_for(obj.size)
        # The freed cell address is read before remove_object so the
        # free-list entry survives the placement teardown below.
        self._classes[cls].free_cells.append((block, obj.offset))
        block.remove_object(obj)
        obj.block = None
        obj.offset = None

    def _sweep(self, epoch: int, keep_old: bool) -> None:
        """Full sweep: every cell of every block is inspected.

        Free lists are rebuilt from scratch, and blocks left with no
        live cells return their pages to the shared supply so the LOS
        (and future classes) can compete for them.
        """
        line_size = self.geometry.immix_line
        for cls, space in self._classes.items():
            space.free_cells.clear()
            kept_blocks: List[Block] = []
            for block in space.blocks:
                survivors = []
                for obj in block.objects:
                    if obj.mark == epoch or (keep_old and obj.old):
                        survivors.append(obj)
                    else:
                        obj.block = None
                        obj.offset = None
                block.replace_objects(survivors)
                self.stats.cells_swept += self.geometry.block // cls
                self.stats.blocks_swept += 1
                if not survivors:
                    self.supply.release_all(block.pages)
                    self.table.retire(block.slot)
                    continue
                kept_blocks.append(block)
                occupied = {obj.offset for obj in survivors}
                for offset in range(0, self.geometry.block - cls + 1, cls):
                    if offset in occupied:
                        continue
                    if self.failure_aware and self._cell_overlaps_failure(
                        block, offset, cls, line_size
                    ):
                        continue
                    space.free_cells.append((block, offset))
            space.blocks = kept_blocks

    # ------------------------------------------------------------------
    def heap_census(self) -> dict:
        return {
            "blocks": sum(len(s.blocks) for s in self._classes.values()),
            "free_cells": sum(len(s.free_cells) for s in self._classes.values()),
            "los_objects": len(self.los),
            "free_pages": self.supply.available_pages(),
        }
