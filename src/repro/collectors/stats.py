"""Event counters shared by all collectors.

Every interesting memory-management event is counted here; the time
model (:mod:`repro.runtime.time_model`) turns counters into simulated
execution time. Keeping *counting* and *costing* separate means every
experiment uses identical cost constants — only the counted behaviour
differs between configurations, exactly like wall-clock measurement of
real collectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


def _series_summary(name: str, values: List[int]) -> dict:
    """Distribution summary of one per-collection series, as floats.

    p95 uses the nearest-rank method, deterministic and exact for the
    short series a run produces.
    """
    if not values:
        return {
            f"{name}_count": 0,
            f"{name}_mean": 0.0,
            f"{name}_max": 0.0,
            f"{name}_p95": 0.0,
        }
    ordered = sorted(values)
    rank = max(0, -(-95 * len(ordered) // 100) - 1)  # ceil(0.95 n) - 1
    return {
        f"{name}_count": len(ordered),
        f"{name}_mean": sum(ordered) / len(ordered),
        f"{name}_max": float(ordered[-1]),
        f"{name}_p95": float(ordered[rank]),
    }


@dataclass
class GcStats:
    """Counters for one VM run."""

    # ------------------------------------------------------------------
    # Mutator-side allocation events
    # ------------------------------------------------------------------
    objects_allocated: int = 0
    bytes_allocated: int = 0
    #: Bump-pointer hits (the Immix fast path).
    fast_path_allocs: int = 0
    #: Cursor advanced to the next free run (hole/live-line skip).
    run_advances: int = 0
    #: Blocks acquired (recycled or free) by the relaxed allocator.
    block_requests: int = 0
    #: Medium objects diverted to the overflow block.
    overflow_allocs: int = 0
    #: Runs inspected while searching an imperfect overflow block.
    overflow_run_searches: int = 0
    #: Overflow fallback had to request a perfect block (fussy).
    perfect_block_requests: int = 0
    #: Free-list pops (the mark-sweep allocation path).
    freelist_allocs: int = 0
    #: Free-list pops that reused a previously freed cell. Reused cells
    #: are scattered across the heap (LIFO free lists), costing the
    #: mutator locality that contiguous bump allocation keeps.
    freelist_reuse_allocs: int = 0
    #: Bytes of size-class internal fragmentation (mark-sweep).
    freelist_waste_bytes: int = 0
    #: Large objects placed in the LOS.
    los_allocs: int = 0
    los_pages_allocated: int = 0
    #: Discontiguous-array (arraylet) allocation events.
    arraylet_spines: int = 0
    arraylet_chunks: int = 0
    #: Bytes living behind arraylet indirection (charged an access tax).
    arraylet_bytes: int = 0
    #: Locality-weighted allocation volume: each placed byte contributes
    #: 1/run_length_lines, so bytes allocated into short fragmented runs
    #: weigh heavily and bytes in virgin blocks weigh almost nothing.
    #: The time model turns this into the mutator cache-locality
    #: penalty the paper attributes to fragmented allocation.
    run_locality_units: float = 0.0
    #: Block-sparsity-weighted allocation volume: each placed byte
    #: contributes the failed-line fraction of its block. Objects in a
    #: half-failed block are spread over twice the address span, which
    #: costs the mutator page/TLB locality even when the holes are
    #: clustered into large runs.
    block_sparsity_units: float = 0.0

    # ------------------------------------------------------------------
    # Collection events
    # ------------------------------------------------------------------
    collections: int = 0
    full_collections: int = 0
    nursery_collections: int = 0
    objects_traced: int = 0
    bytes_traced: int = 0
    objects_copied: int = 0
    bytes_copied: int = 0
    lines_swept: int = 0
    #: Live lines re-marked during sweeps; finer Immix lines mean more
    #: line-mark work per live object (the metadata cost of small lines).
    lines_marked: int = 0
    blocks_swept: int = 0
    cells_swept: int = 0
    los_pages_reclaimed: int = 0
    evacuations_aborted: int = 0
    #: Collections forced by a dynamic line failure.
    dynamic_failure_collections: int = 0
    #: Immix lines newly poisoned by a dynamic failure.
    dynamic_failed_lines: int = 0
    #: Dynamic failures that hit an already-failed Immix line (a second
    #: 64 B PCM line inside the same larger Immix line); these carry no
    #: live data and must not force another evacuation collection.
    duplicate_dynamic_failures: int = 0
    #: Live bytes observed at each full collection (pause estimation).
    full_gc_live_bytes: List[int] = field(default_factory=list)
    #: Live bytes observed at each nursery collection.
    nursery_live_bytes: List[int] = field(default_factory=list)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict copy of all counters (for reports/tests/caching).

        The two per-collection live-bytes series are exported as
        derived summaries (count, mean, max, p95) rather than silently
        dropped: raw lists would bloat cached results and break the
        flat-scalar shape reports expect, but their distribution is
        exactly what pause analysis needs.
        """
        snap = {
            name: getattr(self, name)
            for name in self.__dataclass_fields__
            if isinstance(getattr(self, name), (int, float))
        }
        for name in ("full_gc_live_bytes", "nursery_live_bytes"):
            snap.update(_series_summary(name, getattr(self, name)))
        return snap

    def gc_survival_rate(self) -> float:
        """Mean fraction of the heap live at full collections."""
        if not self.full_gc_live_bytes or not self.bytes_allocated:
            return 0.0
        return sum(self.full_gc_live_bytes) / (
            len(self.full_gc_live_bytes) * self.bytes_allocated
        )

    def mean_full_gc_live_bytes(self) -> float:
        if not self.full_gc_live_bytes:
            return 0.0
        return sum(self.full_gc_live_bytes) / len(self.full_gc_live_bytes)
