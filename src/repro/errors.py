"""Exception hierarchy for the wearable-memory simulator."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class GeometryError(ConfigError):
    """Line/page/block/region sizes that do not fit together."""


class OutOfMemoryError(ReproError):
    """The heap cannot satisfy an allocation even after collection."""


class PerfectMemoryExhaustedError(OutOfMemoryError):
    """A fussy (page-grained) request found no perfect page and no DRAM."""


class FailureBufferOverflowError(ReproError):
    """The hardware failure buffer filled before the OS drained it."""


class AddressError(ReproError):
    """An address outside the mapped space, or misaligned for its use."""


class ProtocolError(ReproError):
    """The OS/runtime cooperation protocol was violated.

    Examples: a runtime using imperfect memory without registering a
    dynamic-failure handler, or acknowledging a failure it never received.
    """


class PinnedObjectError(ReproError):
    """An operation tried to move a pinned object."""
