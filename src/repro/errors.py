"""Exception hierarchy for the wearable-memory simulator."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value."""


class GeometryError(ConfigError):
    """Line/page/block/region sizes that do not fit together."""


class OutOfMemoryError(ReproError):
    """The heap cannot satisfy an allocation even after collection."""


class PerfectMemoryExhaustedError(OutOfMemoryError):
    """A fussy (page-grained) request found no perfect page and no DRAM."""


class FailureBufferOverflowError(ReproError):
    """The hardware failure buffer filled before the OS drained it."""


class AddressError(ReproError):
    """An address outside the mapped space, or misaligned for its use."""


class ProtocolError(ReproError):
    """The OS/runtime cooperation protocol was violated.

    Examples: a runtime using imperfect memory without registering a
    dynamic-failure handler, or acknowledging a failure it never received.
    """


class PinnedObjectError(ReproError):
    """An operation tried to move a pinned object."""


class SnapshotError(ReproError):
    """A machine snapshot cannot be restored.

    Raised for corrupt or truncated snapshot files, integrity-hash
    mismatches, unknown envelope versions, and snapshots taken by a
    different simulator version (the code fingerprint baked into every
    snapshot must match the running sources — resuming across code
    changes would silently break the bit-identity guarantee).
    """


class PlanError(ConfigError):
    """An experiment plan failed its precheck.

    Raised by :mod:`repro.sim.plan` when a declarative plan file cannot
    be compiled into a run grid: unknown keys or workloads, type/range
    violations, placeholder typos, empty axes, or duplicate cells. The
    ``problems`` attribute carries every
    :class:`repro.sim.plan.PlanProblem` found — the precheck reports
    all of them before any cell runs, never just the first.
    """

    def __init__(self, problems) -> None:
        self.problems = list(problems)
        lines = [f"{p.where}: {p.message}" for p in self.problems]
        super().__init__(
            "experiment plan failed precheck:\n  " + "\n  ".join(lines)
        )


class ChaosError(ReproError):
    """A failure injected by the chaos harness (never a real bug).

    Raised inside sweep workers when ``REPRO_CHAOS`` (or an explicit
    :class:`repro.sim.chaos.ChaosConfig`) injects an exception-mode
    fault; the fault-tolerant executor is expected to retry the cell.
    """


class HeapAuditError(ReproError):
    """The cross-layer heap auditor found an invariant violation.

    Raised by :mod:`repro.check` when two views of the same failure
    state — hardware ECC-exhausted lines, OS failure-table bitmaps,
    per-block Immix line marks, clustering redirection maps — disagree,
    or when a heap-structure invariant (object overlap, live data on a
    failed line, page-ownership conservation) is broken. The message
    carries the rendered :class:`repro.check.audit.AuditReport`.
    """
