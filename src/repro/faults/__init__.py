"""Fault injection: failure maps, generators, the OS/VM shim, accounting."""

from .accounting import PerfectPageAccountant
from .generator import (
    PAPER_FAILURE_RATES,
    FailureModel,
    apply_hardware_clustering,
    clustered_map,
    uniform_map,
)
from .injector import FaultInjector
from .maps import FailureMap, coarsen

__all__ = [
    "PerfectPageAccountant",
    "PAPER_FAILURE_RATES",
    "FailureModel",
    "apply_hardware_clustering",
    "clustered_map",
    "uniform_map",
    "FaultInjector",
    "FailureMap",
    "coarsen",
]
