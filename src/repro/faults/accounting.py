"""Debit-credit accounting for perfect-page demand (paper section 5).

The paper's methodology distinguishes *relaxed* allocators (the Immix
block space, robust to holes) from *fussy* allocators (the large object
space and the overflow fallback, which need perfect pages). Real systems
would satisfy fussy requests from scarce DRAM when perfect PCM runs out;
to keep the space-time trade-off honest, the paper charges a one-page
space penalty per borrowed page (a *debt*) and lets the relaxed
allocator repay debts by declining perfect pages it is later offered.

Without this accounting DRAM would be free, never-fragmented memory and
higher failure rates could paradoxically perform *better*.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PerfectPageAccountant:
    """Tracks fussy demand, borrowed pages, and outstanding debt."""

    #: Outstanding borrowed pages not yet repaid.
    debt: int = 0
    #: Total fussy perfect-page requests (the paper's figure 9(b) metric).
    total_perfect_demand: int = 0
    #: Requests satisfied from real perfect PCM pages.
    satisfied_from_pcm: int = 0
    #: Requests satisfied by borrowing (DRAM / remapped perfect page).
    borrowed: int = 0
    #: Perfect pages the relaxed allocator declined to repay debt.
    repaid: int = 0
    #: Running peak of outstanding debt.
    peak_debt: int = 0
    _demand_log: list = field(default_factory=list, repr=False)

    def record_perfect_hit(self, count: int = 1) -> None:
        """A fussy request was served from the perfect PCM pool."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.total_perfect_demand += count
        self.satisfied_from_pcm += count

    def borrow(self, count: int = 1) -> None:
        """A fussy request had no perfect PCM page; borrow with penalty."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.total_perfect_demand += count
        self.borrowed += count
        self.debt += count
        self.peak_debt = max(self.peak_debt, self.debt)

    def offer_perfect_to_relaxed(self) -> bool:
        """The relaxed allocator was handed a perfect page.

        Returns True when the relaxed allocator may keep the page (no
        outstanding debt); False when the page must be surrendered to
        repay one page of debt, in which case the caller fetches another
        PCM page for the relaxed allocator.
        """
        if self.debt > 0:
            self.debt -= 1
            self.repaid += 1
            return False
        return True

    def return_borrowed(self) -> None:
        """A borrowed page was freed: its DRAM returns, the debt clears."""
        if self.debt <= 0:
            raise ValueError("no outstanding debt to return")
        self.debt -= 1

    @property
    def space_penalty_pages(self) -> int:
        """Pages currently charged against the heap budget."""
        return self.debt

    def checkpoint_demand(self) -> None:
        """Record cumulative demand (one sample per collection, say)."""
        self._demand_log.append(self.total_perfect_demand)

    @property
    def demand_log(self) -> list:
        return list(self._demand_log)

    def summary(self) -> dict:
        return {
            "perfect_demand": self.total_perfect_demand,
            "satisfied_from_pcm": self.satisfied_from_pcm,
            "borrowed": self.borrowed,
            "repaid": self.repaid,
            "outstanding_debt": self.debt,
            "peak_debt": self.peak_debt,
        }
