"""Failure-map generation (paper sections 5 and 6.4).

Three generation modes, mirroring the paper's methodology exactly:

* **uniform** — every 64 B line fails independently with probability
  ``rate``. This models a wear-leveled memory, where failures have no
  spatial correlation.
* **clustered limit study** — step through aligned regions of
  ``cluster_bytes`` and fail the whole region with probability ``rate``;
  gaps between failures are then at least ``cluster_bytes`` wide while
  each line's failure probability remains ``rate`` (section 6.4).
* **hardware clustering transform** — start from a uniform map, then
  move each region's failures to the region edge the clustering
  hardware would pick (section 3.1.2 / figure 9 methodology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigError
from ..hardware.clustering import cluster_failure_map
from ..hardware.geometry import Geometry
from ..units import format_size, is_power_of_two
from .maps import FailureMap


def uniform_map(n_lines: int, rate: float, seed: int = 0) -> FailureMap:
    """Fail each line independently with probability ``rate``."""
    _check_rate(rate)
    if rate == 0.0 or n_lines == 0:
        return FailureMap(n_lines)
    rng = np.random.default_rng(seed)
    failed = np.flatnonzero(rng.random(n_lines) < rate)
    return FailureMap(n_lines, (int(i) for i in failed))


def clustered_map(
    n_lines: int,
    rate: float,
    cluster_bytes: int,
    geometry: Optional[Geometry] = None,
    seed: int = 0,
) -> FailureMap:
    """Limit-study map: whole aligned ``cluster_bytes`` groups fail.

    ``cluster_bytes`` must be a power-of-two multiple of the PCM line.
    With ``cluster_bytes == pcm_line`` this degenerates to
    :func:`uniform_map` (same distribution, same seed stream).
    """
    _check_rate(rate)
    geometry = geometry or Geometry()
    if cluster_bytes % geometry.pcm_line or not is_power_of_two(
        cluster_bytes // geometry.pcm_line
    ):
        raise ConfigError(
            f"cluster size {format_size(cluster_bytes)} must be a power-of-two "
            f"multiple of the PCM line ({format_size(geometry.pcm_line)})"
        )
    lines_per_cluster = cluster_bytes // geometry.pcm_line
    n_clusters = (n_lines + lines_per_cluster - 1) // lines_per_cluster
    if rate == 0.0 or n_clusters == 0:
        return FailureMap(n_lines)
    rng = np.random.default_rng(seed)
    failed_clusters = np.flatnonzero(rng.random(n_clusters) < rate)
    failed = []
    for cluster in failed_clusters:
        first = int(cluster) * lines_per_cluster
        failed.extend(range(first, min(first + lines_per_cluster, n_lines)))
    return FailureMap(n_lines, failed)


def apply_hardware_clustering(
    map_: FailureMap, geometry: Geometry, include_metadata: bool = False
) -> FailureMap:
    """The logical view after the clustering hardware remaps failures."""
    logical = cluster_failure_map(map_.failed_lines, geometry, include_metadata)
    # Clamp: metadata charging can push past the end of a partial trailing
    # region; the map only covers n_lines.
    logical = {line for line in logical if line < map_.n_lines}
    return FailureMap(map_.n_lines, logical)


@dataclass(frozen=True)
class FailureModel:
    """Everything needed to regenerate a failure map deterministically.

    Parameters
    ----------
    rate:
        Fraction of 64 B lines failed (0.0 disables failures).
    cluster_bytes:
        None for uniform failures; otherwise the limit-study granularity.
    hw_region_pages:
        0 for no clustering hardware; 1 or 2 (or more) for the paper's
        one-/two-page clustering, applied on top of the distribution.
    include_metadata:
        Charge redirection-map lines as unusable (ablation; the paper's
        evaluation leaves this off).
    map_granularity_lines:
        OS failure-map granularity in PCM lines (section 3.3.3's
        storage/availability trade-off): any group of this many lines
        containing a failure is reported entirely failed. None or 1
        keeps the exact per-line map.
    """

    rate: float = 0.0
    cluster_bytes: Optional[int] = None
    hw_region_pages: int = 0
    include_metadata: bool = False
    map_granularity_lines: Optional[int] = None

    def __post_init__(self) -> None:
        _check_rate(self.rate)
        if self.hw_region_pages < 0:
            raise ConfigError("hw_region_pages must be >= 0")
        if self.map_granularity_lines is not None and self.map_granularity_lines < 1:
            raise ConfigError("map_granularity_lines must be >= 1")

    def describe(self) -> str:
        if self.rate == 0.0:
            return "no failures"
        parts = [f"{self.rate:.0%} lines failed"]
        if self.cluster_bytes:
            parts.append(f"pre-clustered at {format_size(self.cluster_bytes)}")
        else:
            parts.append("uniform")
        if self.hw_region_pages:
            parts.append(f"{self.hw_region_pages}-page hw clustering")
        return ", ".join(parts)

    def build(self, n_lines: int, geometry: Geometry, seed: int = 0) -> FailureMap:
        """Generate the map this model describes."""
        if self.cluster_bytes is not None:
            map_ = clustered_map(n_lines, self.rate, self.cluster_bytes, geometry, seed)
        else:
            map_ = uniform_map(n_lines, self.rate, seed)
        if self.hw_region_pages:
            cluster_geometry = geometry
            if geometry.region_pages != self.hw_region_pages:
                cluster_geometry = Geometry(
                    pcm_line=geometry.pcm_line,
                    page=geometry.page,
                    region_pages=self.hw_region_pages,
                    immix_line=geometry.immix_line,
                    block=geometry.block,
                )
            map_ = apply_hardware_clustering(
                map_, cluster_geometry, self.include_metadata
            )
        if self.map_granularity_lines and self.map_granularity_lines > 1:
            from .maps import coarsen

            map_ = coarsen(map_, self.map_granularity_lines)
        return map_


#: Convenience: the paper's four headline failure levels.
PAPER_FAILURE_RATES = (0.0, 0.10, 0.25, 0.50)


def _check_rate(rate: float) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ConfigError(f"failure rate {rate} outside [0, 1]")
