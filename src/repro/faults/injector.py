"""The fault-injection module (paper section 5).

"We evaluate our approach running natively on DRAM, and instrument the
managed runtime with a fault injection module between the OS memory
allocator and the VM memory allocation module. When the latter allocates
memory, part of this memory is made defective by the fault injection
module."

:class:`FaultInjector` reproduces that shim: it takes a
:class:`~repro.faults.generator.FailureModel`, pre-ages a PCM module
with the generated static failures, and hands the VM memory through the
regular OS system calls, so the rest of the stack cannot tell injected
failures from organically worn ones.
"""

from __future__ import annotations

from typing import Optional

from ..hardware.geometry import Geometry
from ..hardware.pcm import PcmModule
from ..osim.memory_manager import OsMemoryManager
from .generator import FailureModel
from .maps import FailureMap


class FaultInjector:
    """Builds an aged memory system from a failure model.

    Parameters
    ----------
    model:
        The failure distribution to inject.
    pcm_bytes:
        Module capacity; must cover the heap the VM will request (with
        compensation headroom — see :meth:`compensated_bytes`).
    geometry:
        Shared geometry. The model's ``hw_region_pages`` only controls
        the *injected distribution*; dynamic clustering hardware on the
        module is enabled to match.
    seed:
        Seed for map generation; vary per invocation like the paper's
        20 invocations per benchmark.
    wear_policy:
        A :class:`~repro.policies.wear.WearLevelingPolicy` whose
        ``transform_static_map`` reshapes the generated map *before*
        injection — decoder remapping happens below every other layer,
        so the OS and runtime see one coherent post-remap view. None
        means the paper's design (no transform).
    pool_policy:
        A :class:`~repro.policies.pool.PagePoolPolicy` threaded into
        the OS page pools (supply order). None means the paper's.
    """

    def __init__(
        self,
        model: FailureModel,
        pcm_bytes: int = 0,
        geometry: Optional[Geometry] = None,
        dram_pages: int = 64,
        seed: int = 0,
        pcm: Optional[PcmModule] = None,
        wear_policy=None,
        pool_policy=None,
    ) -> None:
        self.model = model
        self.geometry = geometry or (pcm.geometry if pcm else Geometry())
        self.seed = seed
        self.wear_policy = wear_policy
        self.pool_policy = pool_policy
        if pcm is not None:
            # An existing (possibly already worn) module: lifetime
            # experiments thread one module through many iterations.
            self.pcm = pcm
            self.static_map = FailureMap(pcm.n_lines, pcm.failed_logical_lines())
        else:
            self.pcm = PcmModule(
                size_bytes=pcm_bytes,
                geometry=self.geometry,
                clustering_enabled=model.hw_region_pages > 0,
            )
            static_map = model.build(self.pcm.n_lines, self.geometry, seed)
            if wear_policy is not None:
                static_map = wear_policy.transform_static_map(
                    static_map, self.geometry, seed
                )
            self.static_map = static_map
            self.pcm.inject_static_failures(self.static_map.failed_lines)
        self.os = OsMemoryManager(
            self.pcm,
            dram_pages=dram_pages,
            geometry=self.geometry,
            pool_policy=pool_policy,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def compensated_bytes(heap_bytes: int, rate: float, page: int) -> int:
        """Raw bytes needed so that non-faulty bytes equal ``heap_bytes``.

        The paper's compensation rule (section 6.2): given heap size h
        and failure rate f, request h / (1 - f), rounded up to pages.
        """
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"cannot compensate a failure rate of {rate}")
        raw = int(heap_bytes / (1.0 - rate))
        return (raw + page - 1) // page * page

    def failure_map_for_pages(self, first_page: int, n_pages: int) -> FailureMap:
        """The injected map over a page span, re-based to its start."""
        lines_per_page = self.geometry.lines_per_page
        span_map = FailureMap(self.pcm.n_lines, self.pcm.failed_logical_lines())
        return span_map.subset(first_page * lines_per_page, n_pages * lines_per_page)

    def describe(self) -> str:
        return (
            f"{self.model.describe()} over {self.pcm.size_bytes} bytes "
            f"({self.static_map.failed_count} lines injected, seed {self.seed})"
        )
