"""Failure maps: one bit per 64 B PCM line (paper section 5).

The failure map is the lingua franca of the whole design: the hardware
produces it, the OS stores it (a 64-bit bitmap per 4 KB page), and the
runtime folds it into the collector's line metadata. We represent it
sparsely (a set of failed line indices) because even at 50 % failure the
set-based view keeps the simulator simple, and expose the dense per-page
bitmap the OS tables would store.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, Set

from ..errors import AddressError
from ..hardware.geometry import Geometry


class FailureMap:
    """Failure state for ``n_lines`` PCM lines starting at line 0.

    Immutable by convention: transforms return new maps. Line indices
    are module-relative (line 0 is the first line of the mapped span).
    """

    __slots__ = ("n_lines", "_failed")

    def __init__(self, n_lines: int, failed_lines: Iterable[int] = ()) -> None:
        if n_lines < 0:
            raise ValueError("n_lines must be >= 0")
        self.n_lines = n_lines
        failed: FrozenSet[int] = frozenset(failed_lines)
        for line in failed:
            if not 0 <= line < n_lines:
                raise AddressError(f"failed line {line} outside map of {n_lines} lines")
        self._failed = failed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_failed(self, line: int) -> bool:
        return line in self._failed

    @property
    def failed_lines(self) -> FrozenSet[int]:
        return self._failed

    @property
    def failed_count(self) -> int:
        return len(self._failed)

    @property
    def failure_rate(self) -> float:
        """Fraction of lines failed."""
        if self.n_lines == 0:
            return 0.0
        return len(self._failed) / self.n_lines

    def failed_in_range(self, first_line: int, n: int) -> Set[int]:
        """Failed lines within ``[first_line, first_line + n)``."""
        return {line for line in self._failed if first_line <= line < first_line + n}

    def any_failed_in_range(self, first_line: int, n: int) -> bool:
        if n < len(self._failed):
            return any(line in self._failed for line in range(first_line, first_line + n))
        return bool(self.failed_in_range(first_line, n))

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._failed))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureMap):
            return NotImplemented
        return self.n_lines == other.n_lines and self._failed == other._failed

    def __hash__(self) -> int:
        return hash((self.n_lines, self._failed))

    def __repr__(self) -> str:
        return f"FailureMap(n_lines={self.n_lines}, failed={len(self._failed)})"

    # ------------------------------------------------------------------
    # OS views (section 3.2.1)
    # ------------------------------------------------------------------
    def page_bitmap(self, page_index: int, geometry: Geometry) -> int:
        """The 64-bit per-page bitmap the OS failure table stores.

        Bit ``i`` set means line ``i`` of the page failed.
        """
        bitmap = 0
        base = page_index * geometry.lines_per_page
        for line in self.failed_in_range(base, geometry.lines_per_page):
            bitmap |= 1 << (line - base)
        return bitmap

    def page_is_perfect(self, page_index: int, geometry: Geometry) -> bool:
        base = page_index * geometry.lines_per_page
        return not self.any_failed_in_range(base, geometry.lines_per_page)

    def perfect_page_count(self, geometry: Geometry) -> int:
        n_pages = self.n_lines // geometry.lines_per_page
        imperfect = {line // geometry.lines_per_page for line in self._failed}
        return n_pages - len(imperfect)

    # ------------------------------------------------------------------
    # Runtime views (section 4.2, "false failures")
    # ------------------------------------------------------------------
    def immix_line_view(self, geometry: Geometry) -> Set[int]:
        """Indices of *Immix* lines poisoned by at least one failed PCM line.

        When the Immix line is larger than the PCM line, one failed
        64 B line poisons the whole Immix line — the paper's "false
        failure" effect (section 6.2).
        """
        ratio = geometry.pcm_lines_per_immix_line
        return {line // ratio for line in self._failed}

    def false_failure_overhead(self, geometry: Geometry) -> int:
        """Bytes lost to false failures beyond the truly failed bytes.

        Zero when the Immix line equals the PCM line.
        """
        poisoned = len(self.immix_line_view(geometry)) * geometry.immix_line
        true_failed = self.failed_count * geometry.pcm_line
        return poisoned - true_failed

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    def union(self, other: "FailureMap") -> "FailureMap":
        if self.n_lines != other.n_lines:
            raise ValueError("maps cover different spans")
        return FailureMap(self.n_lines, self._failed | other._failed)

    def with_failure(self, line: int) -> "FailureMap":
        """A copy with one more failed line (dynamic failures)."""
        return FailureMap(self.n_lines, self._failed | {line})

    def subset(self, first_line: int, n: int) -> "FailureMap":
        """The map for a sub-span, re-based to line 0."""
        if first_line < 0 or first_line + n > self.n_lines:
            raise AddressError("subset outside map")
        failed = {line - first_line for line in self.failed_in_range(first_line, n)}
        return FailureMap(n, failed)


def coarsen(map_: FailureMap, granularity_lines: int) -> FailureMap:
    """Re-express a map at a coarser granularity (section 3.3.3).

    The OS may track failures at a coarser granularity to save metadata;
    any group of ``granularity_lines`` containing a failure is then
    entirely unusable. Returns a map at the original line granularity
    with whole groups failed.
    """
    if granularity_lines < 1:
        raise ValueError("granularity must be >= 1 line")
    failed: Set[int] = set()
    for line in map_.failed_lines:
        group = line // granularity_lines
        first = group * granularity_lines
        failed.update(range(first, min(first + granularity_lines, map_.n_lines)))
    return FailureMap(map_.n_lines, failed)
