"""Hardware substrate: PCM module, ECC, failure buffer, clustering, DRAM.

This package models the memory-system side of the paper's cooperative
design. Nothing here knows about garbage collection; the OS layer
(:mod:`repro.osim`) is the only consumer of the interrupt and
failure-map interfaces exported here.
"""

from .clustering import (
    ClusteringController,
    RedirectionMap,
    cluster_failure_map,
    region_direction,
)
from .dram import DramModule
from .ecc import DEFAULT_ENTRIES_PER_LINE, EccDomain, LineEcc
from .failure_buffer import FailureBuffer, FailureEntry, InterruptKind
from .geometry import PAPER_DEFAULT, Geometry
from .pcm import EnduranceModel, PcmModule
from .wear_leveling import (
    NoWearLeveling,
    StartGapWearLeveler,
    WearLeveler,
    spread_statistics,
)

__all__ = [
    "ClusteringController",
    "RedirectionMap",
    "cluster_failure_map",
    "region_direction",
    "DramModule",
    "DEFAULT_ENTRIES_PER_LINE",
    "EccDomain",
    "LineEcc",
    "FailureBuffer",
    "FailureEntry",
    "InterruptKind",
    "PAPER_DEFAULT",
    "Geometry",
    "EnduranceModel",
    "PcmModule",
    "NoWearLeveling",
    "StartGapWearLeveler",
    "WearLeveler",
    "spread_statistics",
]
