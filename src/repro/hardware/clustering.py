"""Hardware failure clustering (paper section 3.1.2).

As lines fail, uniformly scattered holes fragment the address space. The
paper's clustering hardware logically remaps failed lines to one end of
a *region* (one or more pages) through a small per-region redirection
map, so working lines always form one contiguous run. With two-page
regions, all failures of the pair collect in one page, manufacturing
logically perfect pages for page-grained allocators.

Two artifacts live here:

* :class:`RedirectionMap` — the per-region hardware state, exercised by
  the dynamic-failure path (a failure arrives, the map swaps it to the
  boundary).
* :func:`cluster_failure_map` — the static transform used by the fault
  injector: given a physical failure bitmap, produce the logical view
  software would observe with clustering enabled. This mirrors the
  paper's methodology ("move those failures according to our one- and
  two-page clustering algorithm, alternatively moving all failures to
  the start or end of each clustering region").
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set

from .geometry import Geometry


def region_direction(region_index: int) -> str:
    """Clustering direction for a region: the paper alternates by parity.

    Even regions push failures to their start, odd regions to their end,
    so the working spans of neighbouring regions abut and form runs that
    cross region boundaries.
    """
    return "start" if region_index % 2 == 0 else "end"


class RedirectionMap:
    """Redirection state for one clustering region.

    The map translates the logical line offset the cache hierarchy
    addresses into the physical line actually accessed. Initially the
    identity; each failure swaps the failed slot with the slot at the
    moving boundary, so failed *logical* offsets stay contiguous at one
    end of the region.
    """

    def __init__(self, n_lines: int, direction: str = "start") -> None:
        if n_lines < 2:
            raise ValueError("a region needs at least two lines")
        if direction not in ("start", "end"):
            raise ValueError(f"direction must be 'start' or 'end', not {direction!r}")
        self.n_lines = n_lines
        self.direction = direction
        self.logical_to_physical: List[int] = list(range(n_lines))
        self.failed_count = 0
        #: Installed lazily on first failure, like the real hardware.
        self.installed = False

    # ------------------------------------------------------------------
    def translate(self, logical_offset: int) -> int:
        """Physical line offset backing ``logical_offset``."""
        return self.logical_to_physical[logical_offset]

    def _boundary_slot(self) -> int:
        """Logical slot that the next failure will be swapped into."""
        if self.direction == "start":
            return self.failed_count
        return self.n_lines - 1 - self.failed_count

    def failed_logical_offsets(self) -> range:
        """The contiguous run of failed logical offsets."""
        if self.direction == "start":
            return range(0, self.failed_count)
        return range(self.n_lines - self.failed_count, self.n_lines)

    def is_failed(self, logical_offset: int) -> bool:
        if self.direction == "start":
            return logical_offset < self.failed_count
        return logical_offset >= self.n_lines - self.failed_count

    # ------------------------------------------------------------------
    def record_failure(self, logical_offset: int) -> int:
        """Handle a failure observed at ``logical_offset``.

        Swaps the broken physical line to the boundary slot and returns
        the logical offset that is now failed (the boundary slot). The
        caller reports *that* offset to the OS: data previously stored
        at the boundary slot has physically swapped to ``logical_offset``
        and survives; the boundary slot must be evacuated.
        """
        if self.failed_count >= self.n_lines:
            raise ValueError("every line in the region has already failed")
        if not self.installed:
            self.installed = True
        if self.is_failed(logical_offset):
            raise ValueError(
                f"logical offset {logical_offset} is already in the failed zone"
            )
        boundary = self._boundary_slot()
        mapping = self.logical_to_physical
        mapping[logical_offset], mapping[boundary] = (
            mapping[boundary],
            mapping[logical_offset],
        )
        self.failed_count += 1
        return boundary

    def working_span(self) -> range:
        """Logical offsets that still work, always contiguous."""
        if self.direction == "start":
            return range(self.failed_count, self.n_lines)
        return range(0, self.n_lines - self.failed_count)


class ClusteringController:
    """All redirection maps for a PCM module, created on demand."""

    def __init__(self, geometry: Geometry) -> None:
        self.geometry = geometry
        self._maps: dict = {}
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None

    def __getstate__(self) -> dict:
        """Snapshot support: redirection maps persist, tracers do not."""
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    def map_for_region(self, region_index: int) -> RedirectionMap:
        rmap = self._maps.get(region_index)
        if rmap is None:
            rmap = RedirectionMap(
                self.geometry.lines_per_region, region_direction(region_index)
            )
            self._maps[region_index] = rmap
        return rmap

    def peek(self, region_index: int) -> Optional[RedirectionMap]:
        """The region's map if one was ever installed, else None."""
        return self._maps.get(region_index)

    def translate_line(self, global_line: int) -> int:
        """Global physical line index backing global logical line index."""
        per_region = self.geometry.lines_per_region
        region_index, offset = divmod(global_line, per_region)
        rmap = self._maps.get(region_index)
        if rmap is None:
            return global_line
        return region_index * per_region + rmap.translate(offset)

    def record_failure(self, global_line: int) -> int:
        """Route a failure through its region map; return the logical
        global line index that software must treat as failed."""
        per_region = self.geometry.lines_per_region
        region_index, offset = divmod(global_line, per_region)
        rmap = self.map_for_region(region_index)
        boundary = rmap.record_failure(offset)
        reported = region_index * per_region + boundary
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "clustering.remap",
                cat="hardware",
                args={
                    "region": region_index,
                    "failed_line": global_line,
                    "reported_line": reported,
                    "region_failed_count": rmap.failed_count,
                },
            )
            tr.metrics.counter(
                "repro_clustering_remaps_total",
                "failures routed through redirection maps",
            ).inc()
        return reported

    def installed_map_count(self) -> int:
        return sum(1 for m in self._maps.values() if m.installed)


# ----------------------------------------------------------------------
# Static transform used by the fault injector
# ----------------------------------------------------------------------
def cluster_failure_map(
    failed_lines: Iterable[int],
    geometry: Geometry,
    include_metadata: bool = False,
) -> Set[int]:
    """Logical failed-line set under hardware clustering.

    Parameters
    ----------
    failed_lines:
        Global PCM line indices that physically failed (uniform map).
    geometry:
        Supplies the region size; ``geometry.region_pages`` selects
        one-page vs two-page (or larger) clustering.
    include_metadata:
        When True, the redirection-map lines themselves (consumed in any
        region that has at least one failure) are also reported as
        unusable. The paper's evaluation does not charge this cost; it
        is exposed here as an ablation.

    Returns
    -------
    The set of global line indices software observes as failed: within
    each region the same *count* of failures as the physical map, packed
    at the start of even regions and the end of odd regions.
    """
    per_region = geometry.lines_per_region
    counts: dict = {}
    for line in failed_lines:
        region = line // per_region
        counts[region] = counts.get(region, 0) + 1

    logical: Set[int] = set()
    map_lines = geometry.redirection_map_lines() if include_metadata else 0
    for region, count in counts.items():
        charged = min(per_region, count + map_lines)
        base = region * per_region
        if region_direction(region) == "start":
            logical.update(range(base, base + charged))
        else:
            logical.update(range(base + per_region - charged, base + per_region))
    return logical
