"""A small, perfect DRAM module (paper section 2.3).

The paper assumes systems keep some ECC-protected DRAM for data that
must not fail — OS structures, heap metadata, and the pages lent to
fussy allocators when no perfect PCM page exists. DRAM never wears out
in our model; what matters is that it is *scarce*, which the
debit-credit accounting in :mod:`repro.faults.accounting` enforces.
"""

from __future__ import annotations

from typing import Optional, Set

from ..errors import AddressError, OutOfMemoryError
from .geometry import Geometry


class DramModule:
    """Page-granularity DRAM allocator with simple occupancy tracking."""

    def __init__(self, size_bytes: int, geometry: Optional[Geometry] = None) -> None:
        self.geometry = geometry or Geometry()
        if size_bytes <= 0 or size_bytes % self.geometry.page:
            raise AddressError(
                f"DRAM size {size_bytes} must be a positive multiple of "
                f"the page size {self.geometry.page}"
            )
        self.size_bytes = size_bytes
        self.n_pages = size_bytes // self.geometry.page
        self._free: Set[int] = set(range(self.n_pages))
        self._allocated: Set[int] = set()
        self.peak_allocated = 0

    def allocate_page(self) -> int:
        """Return a free DRAM page index; raises when DRAM is exhausted."""
        if not self._free:
            raise OutOfMemoryError("DRAM exhausted")
        page = min(self._free)
        self._free.remove(page)
        self._allocated.add(page)
        self.peak_allocated = max(self.peak_allocated, len(self._allocated))
        return page

    def free_page(self, page: int) -> None:
        if page not in self._allocated:
            raise AddressError(f"DRAM page {page} is not allocated")
        self._allocated.remove(page)
        self._free.add(page)

    @property
    def free_pages(self) -> int:
        return len(self._free)

    @property
    def allocated_pages(self) -> int:
        return len(self._allocated)
