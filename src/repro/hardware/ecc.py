"""Per-line hardware error correction with a finite budget.

The paper assumes ECP-style correction (Schechter et al., ISCA 2010):
each line carries a small number of correction entries, each able to
permanently patch one stuck-at bit cell. While entries remain, writes to
the line succeed; when a new cell fails and no entry is left, the *line*
fails and the cooperative software takes over (section 2.2).

A key point the paper makes is that once software stops using a failed
line, the line's remaining correction resources could be repurposed. We
model that with :meth:`LineEcc.reclaimable_entries`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Default number of correction entries per line, matching ECP-6.
DEFAULT_ENTRIES_PER_LINE = 6


@dataclass
class LineEcc:
    """Error-correction state for one PCM line."""

    capacity: int = DEFAULT_ENTRIES_PER_LINE
    used: int = 0
    #: Set once the line has more stuck cells than correction entries.
    exhausted: bool = False
    #: Distinct stuck cell positions seen so far (bit offsets).
    stuck_bits: set = field(default_factory=set)

    def record_stuck_bit(self, bit_offset: int) -> bool:
        """Record a newly stuck cell; return True if the line still works.

        A repeat failure of an already-patched cell consumes nothing.
        Once ``exhausted`` the line stays failed permanently.
        """
        if self.exhausted:
            return False
        if bit_offset in self.stuck_bits:
            return True
        self.stuck_bits.add(bit_offset)
        if self.used < self.capacity:
            self.used += 1
            return True
        self.exhausted = True
        return False

    @property
    def remaining(self) -> int:
        """Correction entries still unused."""
        return self.capacity - self.used

    def reclaimable_entries(self) -> int:
        """Entries that could serve other lines once software retires this one.

        When software stops allocating into an exhausted line, the
        entries that were patching its cells are no longer needed
        (section 2.2: "error correction resources previously used to
        correct the failed line can be repurposed").
        """
        return self.used if self.exhausted else 0


class EccDomain:
    """ECC state for a range of lines, allocated lazily.

    Most lines never see a stuck bit, so state is only materialized for
    lines that do. This keeps multi-gigabyte simulated modules cheap.
    """

    def __init__(self, entries_per_line: int = DEFAULT_ENTRIES_PER_LINE) -> None:
        if entries_per_line < 0:
            raise ValueError("entries_per_line must be >= 0")
        self.entries_per_line = entries_per_line
        self._lines: dict = {}

    def line(self, line_index: int) -> LineEcc:
        """ECC record for ``line_index``, creating it on first touch."""
        state = self._lines.get(line_index)
        if state is None:
            state = LineEcc(capacity=self.entries_per_line)
            self._lines[line_index] = state
        return state

    def record_stuck_bit(self, line_index: int, bit_offset: int) -> bool:
        """Route a stuck cell to its line; return True if still correctable."""
        return self.line(line_index).record_stuck_bit(bit_offset)

    def is_exhausted(self, line_index: int) -> bool:
        state = self._lines.get(line_index)
        return state.exhausted if state else False

    def exhausted_lines(self) -> list:
        """Sorted indices of lines whose correction budget ran out."""
        return sorted(i for i, s in self._lines.items() if s.exhausted)

    def total_reclaimable_entries(self) -> int:
        """System-wide count of repurposable entries (section 2.2)."""
        return sum(s.reclaimable_entries() for s in self._lines.values())

    def touched_line_count(self) -> int:
        """Number of lines with any ECC state at all (for tests/metrics)."""
        return len(self._lines)
