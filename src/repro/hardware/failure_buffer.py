"""The hardware failure buffer (paper section 3.1.1).

When a PCM write fails, the memory module copies the written data and
its physical address into a small SRAM/DRAM FIFO and interrupts the
processor. Reads check the buffer in parallel with the array and return
the buffered data when present, so no data is lost while the OS and
runtime react. When the buffer is nearly full (enough slots are reserved
to drain outstanding writes) the module raises a second interrupt kind
and refuses further writes until the OS drains at least one entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum, auto
from typing import Callable, List, Optional

from ..errors import FailureBufferOverflowError, ProtocolError


class InterruptKind(Enum):
    """The two interrupt types the failure buffer can raise."""

    #: A write failed; its data is parked in the buffer.
    WRITE_FAILURE = auto()
    #: The buffer is nearly full; writes are stalled until it drains.
    BUFFER_NEARLY_FULL = auto()


@dataclass(frozen=True)
class FailureEntry:
    """One parked failed write."""

    address: int
    data: object
    #: True for the placeholder entry the module inserts where it plans
    #: to install a redirection map (section 3.1.2, "fake failure").
    synthetic: bool = False


def _silent_interrupt(kind: "InterruptKind") -> None:
    """Default interrupt sink for buffers not wired to a processor."""


class FailureBuffer:
    """FIFO of failed writes with same-address coalescing.

    Parameters
    ----------
    capacity:
        Total entries. The paper argues this can be as small as a
        processor's load/store queue (tens of entries).
    reserve:
        Slots kept free for draining in-flight writes; when occupancy
        reaches ``capacity - reserve`` the buffer raises
        :attr:`InterruptKind.BUFFER_NEARLY_FULL` and stalls new writes.
    interrupt:
        Callback invoked with an :class:`InterruptKind` whenever the
        hardware would interrupt the processor.
    """

    def __init__(
        self,
        capacity: int = 32,
        reserve: int = 4,
        interrupt: Optional[Callable[[InterruptKind], None]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= reserve < capacity:
            raise ValueError("reserve must satisfy 0 <= reserve < capacity")
        self.capacity = capacity
        self.reserve = reserve
        self._interrupt = interrupt or _silent_interrupt
        self._entries: "OrderedDict[int, FailureEntry]" = OrderedDict()
        self._stalled = False
        # Statistics for the evaluation harness.
        self.total_inserted = 0
        self.high_water_mark = 0
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None

    def __getstate__(self) -> dict:
        """Snapshot support: persist entries, drop process wiring.

        The interrupt callback is a bound method of the owning PCM
        module (a reference cycle) or a caller lambda; the owner
        re-solders it in its own ``__setstate__``.
        """
        state = self.__dict__.copy()
        state["tracer"] = None
        state["_interrupt"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._interrupt is None:
            self._interrupt = _silent_interrupt

    # ------------------------------------------------------------------
    # Hardware-side operations
    # ------------------------------------------------------------------
    def insert(self, address: int, data: object, synthetic: bool = False) -> None:
        """Park a failed write. Raises if the module is stalled and full.

        An earlier entry for the same address is invalidated (the buffer
        forwards only the latest value), preserving FIFO order of first
        failure otherwise.
        """
        if self._stalled and len(self._entries) >= self.capacity:
            raise FailureBufferOverflowError(
                f"failure buffer overflow at address {address:#x}"
            )
        if address in self._entries:
            del self._entries[address]
        self._entries[address] = FailureEntry(address, data, synthetic)
        self.total_inserted += 1
        self.high_water_mark = max(self.high_water_mark, len(self._entries))
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "fbuf.park",
                cat="hardware",
                args={
                    "address": address,
                    "synthetic": synthetic,
                    "occupancy": len(self._entries),
                },
            )
            tr.metrics.counter(
                "repro_fbuf_parked_writes_total",
                "failed writes parked in the failure buffer",
            ).inc()
            tr.metrics.counter(
                "repro_fbuf_interrupts_total",
                "failure-buffer interrupts by kind",
                kind="WRITE_FAILURE",
            ).inc()
        self._interrupt(InterruptKind.WRITE_FAILURE)
        if len(self._entries) >= self.capacity - self.reserve:
            self._stalled = True
            if tr is not None:
                tr.instant(
                    "fbuf.stall",
                    cat="hardware",
                    args={"occupancy": len(self._entries)},
                )
                tr.metrics.counter(
                    "repro_fbuf_interrupts_total",
                    "failure-buffer interrupts by kind",
                    kind="BUFFER_NEARLY_FULL",
                ).inc()
            self._interrupt(InterruptKind.BUFFER_NEARLY_FULL)

    def forward(self, address: int) -> Optional[object]:
        """Return buffered data for ``address`` if present (read path).

        Performed in parallel with the array access in hardware, so it
        adds no read latency (section 3.1.1); we only model the value.
        """
        entry = self._entries.get(address)
        return entry.data if entry else None

    @property
    def accepting_writes(self) -> bool:
        """False while the nearly-full stall is in effect."""
        return not self._stalled

    # ------------------------------------------------------------------
    # OS-side operations
    # ------------------------------------------------------------------
    def pending(self) -> List[FailureEntry]:
        """Entries in FIFO order, oldest first (the OS reads these)."""
        return list(self._entries.values())

    def clear(self, address: int) -> bool:
        """Invalidate the entry for ``address`` once the OS handled it."""
        removed = self._entries.pop(address, None) is not None
        if removed and len(self._entries) < self.capacity - self.reserve:
            self._stalled = False
        return removed

    def acknowledge(self, address: int) -> FailureEntry:
        """Release the entry for ``address``; the strict form of :meth:`clear`.

        The OS acknowledges a parked failure once its data is recovered.
        Acknowledging a failure the buffer never received (or one already
        released) is a cooperation-protocol violation — it means the OS's
        view of outstanding failures has diverged from the hardware's —
        and raises the :class:`~repro.errors.ProtocolError` documented in
        :mod:`repro.errors` instead of silently succeeding.
        """
        entry = self._entries.get(address)
        if entry is None:
            raise ProtocolError(
                f"acknowledging a failure the buffer never received "
                f"(no entry at address {address:#x})"
            )
        self.clear(address)
        tr = self.tracer
        if tr is not None:
            tr.instant("fbuf.ack", cat="hardware", args={"address": address})
            tr.metrics.counter(
                "repro_fbuf_acks_total",
                "failure-buffer entries acknowledged by the OS",
            ).inc()
        return entry

    def drain(self) -> List[FailureEntry]:
        """Remove and return everything (OS bulk handling)."""
        entries = list(self._entries.values())
        self._entries.clear()
        self._stalled = False
        return entries

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, address: int) -> bool:
        return address in self._entries
