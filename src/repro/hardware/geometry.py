"""Address geometry shared by the PCM module, the OS, and the runtime.

The paper fixes three hardware granularities: 64 B PCM lines (the write
and failure granularity), 4 KB pages (the OS granularity), and clustering
regions of one or more pages (the granularity at which failure clustering
hardware remaps lines). On the software side, Immix introduces its own
logical line (64-256 B) and block (32 KB) sizes.

Every piece of address arithmetic in this repository goes through a
:class:`Geometry` so the relationships between these sizes are validated
exactly once, at construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import GeometryError
from ..units import (
    BLOCK_BYTES,
    IMMIX_LINE_BYTES,
    PAGE_BYTES,
    PCM_LINE_BYTES,
    format_size,
    is_power_of_two,
)


@dataclass(frozen=True)
class Geometry:
    """Validated hardware/software size relationships.

    Parameters
    ----------
    pcm_line:
        Hardware write/failure granularity in bytes (paper: 64 B).
    page:
        OS page size in bytes (paper: 4 KB).
    region_pages:
        Pages per failure-clustering region (paper evaluates 1 and 2).
    immix_line:
        Immix logical line size in bytes (paper evaluates 64/128/256 B).
    block:
        Immix block size in bytes (paper: 32 KB).
    """

    pcm_line: int = PCM_LINE_BYTES
    page: int = PAGE_BYTES
    region_pages: int = 2
    immix_line: int = IMMIX_LINE_BYTES
    block: int = BLOCK_BYTES

    def __post_init__(self) -> None:
        for name in ("pcm_line", "page", "immix_line", "block"):
            value = getattr(self, name)
            if not is_power_of_two(value):
                raise GeometryError(f"{name} must be a power of two, got {value}")
        if self.region_pages < 1:
            raise GeometryError(f"region_pages must be >= 1, got {self.region_pages}")
        if self.page % self.pcm_line:
            raise GeometryError(
                f"page ({format_size(self.page)}) must be a multiple of the "
                f"PCM line ({format_size(self.pcm_line)})"
            )
        if self.immix_line % self.pcm_line:
            raise GeometryError(
                f"Immix line ({format_size(self.immix_line)}) must be a "
                f"multiple of the PCM line ({format_size(self.pcm_line)})"
            )
        if self.block % self.immix_line:
            raise GeometryError("block must be a multiple of the Immix line")
        if self.block % self.page:
            raise GeometryError("block must be a multiple of the page size")

    # ------------------------------------------------------------------
    # Derived counts
    # ------------------------------------------------------------------
    @property
    def region(self) -> int:
        """Clustering region size in bytes."""
        return self.region_pages * self.page

    @property
    def lines_per_page(self) -> int:
        """PCM lines per OS page (paper: 64)."""
        return self.page // self.pcm_line

    @property
    def lines_per_region(self) -> int:
        """PCM lines per clustering region (paper default: 128)."""
        return self.region // self.pcm_line

    @property
    def immix_lines_per_block(self) -> int:
        return self.block // self.immix_line

    @property
    def pcm_lines_per_immix_line(self) -> int:
        return self.immix_line // self.pcm_line

    @property
    def pages_per_block(self) -> int:
        return self.block // self.page

    # ------------------------------------------------------------------
    # Address arithmetic
    # ------------------------------------------------------------------
    def line_index(self, address: int) -> int:
        """PCM line number containing ``address``."""
        return address // self.pcm_line

    def line_address(self, line_index: int) -> int:
        """Start address of PCM line ``line_index``."""
        return line_index * self.pcm_line

    def page_index(self, address: int) -> int:
        return address // self.page

    def page_address(self, page_index: int) -> int:
        return page_index * self.page

    def region_index(self, address: int) -> int:
        return address // self.region

    def region_address(self, region_index: int) -> int:
        return region_index * self.region

    def line_offset_in_region(self, address: int) -> int:
        """Index of the PCM line within its clustering region."""
        return (address % self.region) // self.pcm_line

    def line_offset_in_page(self, address: int) -> int:
        return (address % self.page) // self.pcm_line

    def page_lines(self, page_index: int) -> range:
        """Global PCM line indices covered by page ``page_index``."""
        first = page_index * self.lines_per_page
        return range(first, first + self.lines_per_page)

    def region_lines(self, region_index: int) -> range:
        """Global PCM line indices covered by region ``region_index``."""
        first = region_index * self.lines_per_region
        return range(first, first + self.lines_per_region)

    def pages_in_region(self, region_index: int) -> range:
        first = region_index * self.region_pages
        return range(first, first + self.region_pages)

    # ------------------------------------------------------------------
    # Metadata sizing (paper section 3.1.2)
    # ------------------------------------------------------------------
    def redirection_map_bits(self) -> int:
        """Bits needed for a region's redirection map plus boundary pointer.

        The paper's example: a 2-page region of 128 lines needs 126 7-bit
        redirection entries plus one 7-bit boundary pointer = 889 bits.
        One region line holds the map itself (self-mapped), hence the
        ``lines_per_region - index_bits_worth`` style count below follows
        the paper's arithmetic: ``(n - 2) + 1`` entries of ``log2(n)``
        bits for an ``n``-line region with the map occupying lines that
        need no entries of their own.
        """
        n = self.lines_per_region
        entry_bits = max(1, (n - 1).bit_length())
        map_lines = self.redirection_map_lines()
        entries = n - map_lines
        return (entries + 1) * entry_bits

    def redirection_map_lines(self) -> int:
        """PCM lines consumed by the redirection map in a region.

        Computed as a fixed point: the map does not need entries for the
        lines it occupies itself. For the paper's default geometry this
        is 2 lines (889 bits > 512 bits of one 64 B line).
        """
        n = self.lines_per_region
        entry_bits = max(1, (n - 1).bit_length())
        line_bits = self.pcm_line * 8
        map_lines = 1
        while ((n - map_lines) + 1) * entry_bits > map_lines * line_bits:
            map_lines += 1
        return map_lines

    def describe(self) -> str:
        """One-line human-readable summary of the geometry."""
        return (
            f"pcm_line={format_size(self.pcm_line)} page={format_size(self.page)} "
            f"region={self.region_pages}p immix_line={format_size(self.immix_line)} "
            f"block={format_size(self.block)}"
        )


#: The geometry used throughout the paper's evaluation.
PAPER_DEFAULT = Geometry()
