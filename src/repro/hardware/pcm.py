"""Behavioural model of a PCM memory module (paper sections 2.2, 3.1).

The module owns:

* per-line wear state — each line has a sampled endurance threshold
  (process variation) after which writes start producing stuck cells;
* per-line ECC with a finite correction budget (:mod:`.ecc`);
* the failure buffer that parks failed writes and interrupts the
  processor (:mod:`.failure_buffer`);
* optional failure-clustering hardware (:mod:`.clustering`);
* optional wear leveling (:mod:`.wear_leveling`).

Addresses given to :meth:`PcmModule.write`/:meth:`PcmModule.read` are
*logical* module addresses; wear leveling and clustering translate them
to physical lines internally, exactly like the real datapath would.

Endurance is deliberately scaled down (thousands of writes rather than
1e8) so that lifetime experiments finish in seconds; the *relative*
behaviour — variation between cells, the failure cascade once ECC is
exhausted — is what the experiments depend on.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, List, Optional, Set

from ..errors import AddressError
from .clustering import ClusteringController
from .ecc import EccDomain
from .failure_buffer import FailureBuffer, InterruptKind
from .geometry import Geometry
from .wear_leveling import NoWearLeveling, WearLeveler


class EnduranceModel:
    """Samples per-line write-endurance thresholds lazily.

    ``mean_writes`` is the average number of writes a line tolerates
    before its first cell sticks; ``cv`` is the coefficient of variation
    modelling process variation. After the first stuck cell, additional
    cells stick every ``mean_writes * followup_fraction`` writes, so a
    worn line degrades progressively through its ECC budget.
    """

    def __init__(
        self,
        mean_writes: float = 10_000.0,
        cv: float = 0.25,
        followup_fraction: float = 0.02,
        seed: int = 0,
    ) -> None:
        if mean_writes <= 0:
            raise ValueError("mean_writes must be positive")
        if cv < 0:
            raise ValueError("cv must be >= 0")
        if followup_fraction <= 0:
            raise ValueError("followup_fraction must be positive")
        self.mean_writes = mean_writes
        self.cv = cv
        self.followup_fraction = followup_fraction
        self._seed = seed
        self._thresholds: dict = {}

    def first_failure_threshold(self, line_index: int) -> int:
        """Writes until the line's first stuck cell (sampled once)."""
        threshold = self._thresholds.get(line_index)
        if threshold is None:
            rng = random.Random((self._seed << 32) ^ line_index)
            sampled = rng.gauss(self.mean_writes, self.cv * self.mean_writes)
            threshold = max(1, int(sampled))
            self._thresholds[line_index] = threshold
        return threshold

    def followup_interval(self) -> int:
        """Writes between successive stuck cells on a worn line."""
        return max(1, int(self.mean_writes * self.followup_fraction))


def _silent_interrupt(kind: InterruptKind) -> None:
    """Default interrupt sink for unwired (or freshly restored) modules."""


class PcmModule:
    """A PCM module: an array of lines with wear, ECC, and a failure buffer.

    Parameters
    ----------
    size_bytes:
        Module capacity. Must be a whole number of clustering regions.
    geometry:
        Shared :class:`Geometry`.
    endurance:
        Endurance model; None disables wear (lines never fail on write),
        which is what static-failure experiments want.
    clustering_enabled:
        Instantiate the redirection-map hardware.
    wear_leveler:
        A :class:`WearLeveler`; defaults to none (the paper's stance).
    on_interrupt:
        Callback invoked with :class:`InterruptKind` values — this is the
        wire to the OS interrupt handler.
    """

    def __init__(
        self,
        size_bytes: int,
        geometry: Optional[Geometry] = None,
        endurance: Optional[EnduranceModel] = None,
        ecc_entries_per_line: int = 6,
        clustering_enabled: bool = False,
        wear_leveler: Optional[WearLeveler] = None,
        failure_buffer_capacity: int = 32,
        on_interrupt: Optional[Callable[[InterruptKind], None]] = None,
        seed: int = 0,
    ) -> None:
        self.geometry = geometry or Geometry()
        if size_bytes <= 0 or size_bytes % self.geometry.region:
            raise AddressError(
                f"module size {size_bytes} must be a positive multiple of the "
                f"region size {self.geometry.region}"
            )
        self.size_bytes = size_bytes
        self.endurance = endurance
        self.ecc = EccDomain(ecc_entries_per_line)
        self.failure_buffer = FailureBuffer(
            capacity=failure_buffer_capacity, interrupt=self._raise_interrupt
        )
        self.clustering = ClusteringController(self.geometry) if clustering_enabled else None
        self.wear_leveler = wear_leveler or NoWearLeveling()
        self._on_interrupt = on_interrupt or _silent_interrupt
        self._rng = random.Random(seed)
        self._write_counts: dict = {}
        #: Physical lines whose ECC budget is exhausted.
        self._failed_physical: Set[int] = set()
        #: Logical lines software must avoid (post-clustering view).
        self._failed_logical: Set[int] = set()
        #: Failures not yet acknowledged by the OS, as
        #: (reported_line, original_line) pairs: with clustering the
        #: line *reported* failed is the remapped boundary slot, while
        #: the parked write data sits under the *original* address.
        self._pending_failures: List[tuple] = []
        self.total_writes = 0
        self.total_reads = 0
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None

    def set_tracer(self, tracer) -> None:
        """Attach a tracer to the module and its sub-components."""
        self.tracer = tracer
        self.failure_buffer.tracer = tracer
        if self.clustering is not None:
            self.clustering.tracer = tracer

    # ------------------------------------------------------------------
    # Snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Serialize wear/failure state, not wiring.

        The tracer and the interrupt callback are process wiring, not
        machine state: the callback in particular points back into the
        OS layer (or a caller-supplied closure), so persisting it would
        either drag an unrelated object graph into a module-only
        snapshot or fail outright on an unpicklable lambda. Restored
        modules come back silent until the next owner rewires them —
        ``OsMemoryManager.__init__`` and ``MachineSnapshot.restore``
        both do.
        """
        state = self.__dict__.copy()
        state["tracer"] = None
        state["_on_interrupt"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._on_interrupt is None:
            self._on_interrupt = _silent_interrupt
        # The failure buffer's interrupt line always points at its
        # owning module; re-solder it rather than persisting the cycle.
        self.failure_buffer._interrupt = self._raise_interrupt

    # ------------------------------------------------------------------
    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.geometry.pcm_line

    def _raise_interrupt(self, kind: InterruptKind) -> None:
        self._on_interrupt(kind)

    def _check_range(self, address: int, size: int) -> None:
        if address < 0 or size <= 0 or address + size > self.size_bytes:
            raise AddressError(
                f"access [{address:#x}, +{size}) outside module of {self.size_bytes} bytes"
            )

    def _covered_lines(self, address: int, size: int) -> range:
        first = self.geometry.line_index(address)
        last = self.geometry.line_index(address + size - 1)
        return range(first, last + 1)

    def _to_physical(self, logical_line: int) -> int:
        line = self.wear_leveler.translate(logical_line)
        if self.clustering is not None:
            line = self.clustering.translate_line(line)
        return line

    # ------------------------------------------------------------------
    # Static failure injection (used by the fault-injection harness)
    # ------------------------------------------------------------------
    def inject_static_failures(self, logical_lines: Iterable[int]) -> None:
        """Pre-fail lines, modelling a module that aged before this run.

        The lines are recorded directly in the logical view: the fault
        injector already applied any clustering transform it wanted.
        """
        for line in logical_lines:
            if not 0 <= line < self.n_lines:
                raise AddressError(f"line {line} outside module")
            self._failed_logical.add(line)
            self._failed_physical.add(line)

    # ------------------------------------------------------------------
    # Datapath
    # ------------------------------------------------------------------
    def read(self, address: int, size: int = 1) -> Optional[object]:
        """Read; returns forwarded failure-buffer data when present."""
        self._check_range(address, size)
        self.total_reads += 1
        line_address = self.geometry.line_address(self.geometry.line_index(address))
        return self.failure_buffer.forward(line_address)

    def write(self, address: int, size: int = 1, data: object = None) -> bool:
        """Write ``size`` bytes at ``address``; returns True on success.

        A return of False means at least one covered line failed during
        this write: its data is parked in the failure buffer and the OS
        has been interrupted.
        """
        self._check_range(address, size)
        self.total_writes += 1
        ok = True
        for logical_line in self._covered_lines(address, size):
            if not self._write_line(logical_line, data):
                ok = False
        return ok

    def _write_line(self, logical_line: int, data: object) -> bool:
        if logical_line in self._failed_logical:
            # Software invariantly never writes failed lines; if it does
            # the write is absorbed by the failure buffer like any
            # failing write so no data is ever silently lost.
            self._park_failed_write(logical_line, data)
            return False
        self.wear_leveler.on_write(logical_line)
        physical = self._to_physical(logical_line)
        if self.endurance is None:
            return True
        count = self._write_counts.get(physical, 0) + 1
        self._write_counts[physical] = count
        threshold = self.endurance.first_failure_threshold(physical)
        if count < threshold:
            return True
        over = count - threshold
        if over % self.endurance.followup_interval():
            return True
        # A new cell sticks on this write.
        bit = self._rng.randrange(self.geometry.pcm_line * 8)
        if self.ecc.record_stuck_bit(physical, bit):
            return True
        return not self._fail_line(logical_line, physical, data)

    def _fail_line(self, logical_line: int, physical_line: int, data: object) -> bool:
        """Record a permanent line failure; returns True (it failed)."""
        self._failed_physical.add(physical_line)
        if self.clustering is not None:
            reported = self.clustering.record_failure(logical_line)
        else:
            reported = logical_line
        self._failed_logical.add(reported)
        self._pending_failures.append((reported, logical_line))
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "pcm.line_failure",
                cat="hardware",
                args={
                    "logical_line": logical_line,
                    "physical_line": physical_line,
                    "reported_line": reported,
                },
            )
            tr.metrics.counter(
                "repro_pcm_line_failures_total",
                "PCM lines worn out during the run",
            ).inc()
        self._park_failed_write(logical_line, data)
        return True

    def _park_failed_write(self, logical_line: int, data: object) -> None:
        self.failure_buffer.insert(self.geometry.line_address(logical_line), data)

    # ------------------------------------------------------------------
    # OS-facing views
    # ------------------------------------------------------------------
    def failed_logical_lines(self) -> Set[int]:
        """Lines software must avoid, in the logical (clustered) view."""
        return set(self._failed_logical)

    def take_pending_failures(self) -> List[tuple]:
        """Failures since the last call, as (reported, original) line
        index pairs (OS drain)."""
        pending, self._pending_failures = self._pending_failures, []
        return pending

    def line_write_count(self, physical_line: int) -> int:
        return self._write_counts.get(physical_line, 0)

    def write_count_histogram(self) -> List[int]:
        """Write counts for every physical line ever written."""
        return list(self._write_counts.values())

    def failed_fraction(self) -> float:
        return len(self._failed_logical) / self.n_lines
