"""Wear-leveling schemes (paper sections 2.2 and 7.2).

The paper's provocative claim is that wear leveling — the accepted
hardware wisdom — is *harmful* once failures begin, because spreading
writes uniformly spreads failures uniformly, maximizing fragmentation.
To let experiments test that claim we implement the classic Start-Gap
leveler (Qureshi et al., MICRO 2009) alongside a no-op leveler, and an
ablation benchmark compares memory lifetime and post-failure overhead
under both.
"""

from __future__ import annotations

from typing import List


class WearLeveler:
    """Interface: translate logical line indices to physical ones."""

    def translate(self, line_index: int) -> int:
        raise NotImplementedError

    def on_write(self, line_index: int) -> None:
        """Notify the leveler of one line write (may trigger remapping)."""
        raise NotImplementedError


class NoWearLeveling(WearLeveler):
    """Identity mapping: writes land where software puts them."""

    def translate(self, line_index: int) -> int:
        return line_index

    def on_write(self, line_index: int) -> None:
        return None


class StartGapWearLeveler(WearLeveler):
    """Start-Gap wear leveling over fixed-size domains of lines.

    Each domain of ``domain_lines`` logical lines is backed by
    ``domain_lines + 1`` physical slots; one slot — the *gap* — holds no
    data. Every ``gap_write_interval`` writes to a domain, the gap moves
    down by one slot (the hardware copies one line), slowly rotating the
    logical-to-physical mapping and spreading wear across the domain.

    Mapping (per the MICRO 2009 paper): with start pointer ``S`` and gap
    position ``G`` in a domain of ``N`` lines / ``N+1`` slots,

    * slot = (logical + S) mod (N + 1)
    * if slot >= G the line shifts down one slot (the gap sits above it)

    We return physical *line* indices in the same index space as logical
    lines; the +1 spare slot per domain is virtual (the last logical
    line of each domain folds onto slot N when unshifted), which keeps
    the leveler composable with the rest of the module without changing
    its wear-spreading behaviour.
    """

    def __init__(self, domain_lines: int = 256, gap_write_interval: int = 100) -> None:
        if domain_lines < 2:
            raise ValueError("domain_lines must be >= 2")
        if gap_write_interval < 1:
            raise ValueError("gap_write_interval must be >= 1")
        self.domain_lines = domain_lines
        self.gap_write_interval = gap_write_interval
        self._starts: dict = {}
        self._gaps: dict = {}
        self._write_counts: dict = {}
        #: Total gap movements performed (each models one line copy).
        self.gap_moves = 0

    def _domain_state(self, domain: int) -> tuple:
        start = self._starts.get(domain, 0)
        gap = self._gaps.get(domain, self.domain_lines)
        return start, gap

    def translate(self, line_index: int) -> int:
        n = self.domain_lines
        domain, offset = divmod(line_index, n)
        start, gap = self._domain_state(domain)
        slot = (offset + start) % (n + 1)
        if slot >= gap:
            slot = (slot + 1) % (n + 1)
        # Fold the virtual spare slot back into the domain's line range.
        return domain * n + (slot % n)

    def on_write(self, line_index: int) -> None:
        n = self.domain_lines
        domain = line_index // n
        count = self._write_counts.get(domain, 0) + 1
        if count >= self.gap_write_interval:
            count = 0
            self._move_gap(domain)
        self._write_counts[domain] = count

    def _move_gap(self, domain: int) -> None:
        n = self.domain_lines
        start, gap = self._domain_state(domain)
        gap -= 1
        if gap < 0:
            gap = n
            start = (start + 1) % (n + 1)
        self._starts[domain] = start
        self._gaps[domain] = gap
        self.gap_moves += 1

    def rotation_of(self, domain: int) -> int:
        """How far the domain's mapping has rotated (for tests)."""
        return self._starts.get(domain, 0)


def spread_statistics(write_counts: List[int]) -> dict:
    """Summary statistics for how evenly wear is spread.

    Returns max/mean ratio and the coefficient of variation; a perfect
    leveler drives both toward their minima (1.0 and 0.0).
    """
    if not write_counts:
        return {"max_over_mean": 0.0, "cv": 0.0}
    n = len(write_counts)
    mean = sum(write_counts) / n
    if mean == 0:
        return {"max_over_mean": 0.0, "cv": 0.0}
    variance = sum((c - mean) ** 2 for c in write_counts) / n
    return {
        "max_over_mean": max(write_counts) / mean,
        "cv": (variance**0.5) / mean,
    }
