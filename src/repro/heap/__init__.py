"""Heap substrate: objects, line tables, blocks, page supply, LOS."""

from .block import Block, block_is_perfect, perfect_block
from .large_object_space import LargeObjectSpace, Placement
from .line_table import FAILED, FREE, LIVE, LIVE_PINNED, free_runs, state_name
from .object_model import (
    ALIGNMENT,
    HEADER_BYTES,
    ObjectFactory,
    SimObject,
    aligned_size,
    reachable_from,
)
from .page_supply import HeapPage, PageSupply

__all__ = [
    "Block",
    "block_is_perfect",
    "perfect_block",
    "LargeObjectSpace",
    "Placement",
    "FAILED",
    "FREE",
    "LIVE",
    "LIVE_PINNED",
    "free_runs",
    "state_name",
    "ALIGNMENT",
    "HEADER_BYTES",
    "ObjectFactory",
    "SimObject",
    "aligned_size",
    "reachable_from",
    "HeapPage",
    "PageSupply",
]
