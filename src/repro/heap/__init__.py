"""Heap substrate: objects, line tables, blocks, page supply, LOS."""

from .block import (
    Block,
    block_is_perfect,
    perfect_block,
    sort_key_most_holes,
    sorted_defrag_candidates,
)
from .heap_table import UNMAPPED, HeapTable, LineSegment
from .large_object_space import LargeObjectSpace, Placement
from .line_table import (
    FAILED,
    FREE,
    LIVE,
    LIVE_PINNED,
    FreeRunSummary,
    free_run_summary,
    free_runs,
    kernel_mode,
    set_kernel_mode,
    state_name,
    use_reference_kernels,
    validate_kernel_mode,
)
from .object_model import (
    ALIGNMENT,
    HEADER_BYTES,
    ObjectFactory,
    SimObject,
    aligned_size,
    reachable_from,
)
from .page_supply import HeapPage, PageSupply

__all__ = [
    "Block",
    "block_is_perfect",
    "perfect_block",
    "sort_key_most_holes",
    "sorted_defrag_candidates",
    "LargeObjectSpace",
    "Placement",
    "HeapTable",
    "LineSegment",
    "UNMAPPED",
    "FAILED",
    "FREE",
    "LIVE",
    "LIVE_PINNED",
    "FreeRunSummary",
    "free_run_summary",
    "free_runs",
    "kernel_mode",
    "set_kernel_mode",
    "use_reference_kernels",
    "validate_kernel_mode",
    "state_name",
    "ALIGNMENT",
    "HEADER_BYTES",
    "ObjectFactory",
    "SimObject",
    "aligned_size",
    "reachable_from",
    "HeapPage",
    "PageSupply",
]
