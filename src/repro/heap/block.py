"""Immix blocks (paper section 4.1).

A block is 32 KB of virtually contiguous heap, backed by eight physical
pages that need not be contiguous or perfect. The block carries the line
mark table; failed PCM lines are seeded into it as FAILED Immix lines at
construction — including the paper's *false failures*, where one failed
64 B PCM line poisons a whole 128 B or 256 B Immix line.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..hardware.geometry import Geometry
from . import line_table
from .line_table import FAILED, FREE, LIVE, LIVE_PINNED
from .object_model import SimObject
from .page_supply import HeapPage


class Block:
    """One Immix block and its line mark table."""

    __slots__ = (
        "virtual_index",
        "geometry",
        "pages",
        "line_states",
        "failed_lines",
        "objects",
        "evacuate",
        "allocated_since_gc",
        "mark_conflicts",
        "aborted_evacuations",
    )

    def __init__(self, virtual_index: int, pages: List[HeapPage], geometry: Geometry) -> None:
        if len(pages) != geometry.pages_per_block:
            raise ValueError(
                f"a block needs {geometry.pages_per_block} pages, got {len(pages)}"
            )
        self.virtual_index = virtual_index
        self.geometry = geometry
        self.pages = pages
        self.line_states = bytearray(geometry.immix_lines_per_block)
        self.failed_lines: Set[int] = set()
        self.objects: List[SimObject] = []
        #: Flagged by defragmentation / dynamic-failure handling.
        self.evacuate = False
        #: True until the first sweep after allocation into this block;
        #: the sticky (generational) collector sweeps only these.
        self.allocated_since_gc = False
        #: ``(oid, line)`` pairs recorded by the last sweep for live
        #: objects found overlapping a FAILED line. The heap auditor
        #: (:mod:`repro.check`) reports each as a violation.
        self.mark_conflicts: List[Tuple[int, int]] = []
        #: Object ids whose evacuation copy failed and were restored at
        #: their old offset; they may legitimately overlap failed lines
        #: (the auditor tolerates exactly these).
        self.aborted_evacuations: Set[int] = set()
        for slot, page in enumerate(pages):
            for offset in page.failed_offsets:
                self._seed_failed_pcm_line(slot, offset)

    # ------------------------------------------------------------------
    @property
    def virtual_base(self) -> int:
        return self.virtual_index * self.geometry.block

    @property
    def n_lines(self) -> int:
        return self.geometry.immix_lines_per_block

    def _seed_failed_pcm_line(self, page_slot: int, pcm_offset: int) -> Tuple[int, bool]:
        """Mark the Immix line poisoned by a failed PCM line.

        Returns ``(immix_line, newly_failed)``: a second failed 64 B PCM
        line landing in an already-poisoned (larger) Immix line is a
        duplicate hit, not a new false failure.
        """
        byte_offset = page_slot * self.geometry.page + pcm_offset * self.geometry.pcm_line
        immix_line = byte_offset // self.geometry.immix_line
        newly_failed = immix_line not in self.failed_lines
        self.failed_lines.add(immix_line)
        self.line_states[immix_line] = FAILED
        return immix_line, newly_failed

    def record_dynamic_failure(self, page_slot: int, pcm_offset: int) -> Tuple[int, bool]:
        """A line failed while the block is live; poison and flag.

        Returns ``(immix_line, newly_failed)``. Only a *newly* failed
        Immix line flags the block for evacuation — a duplicate hit
        (another PCM line of an already-poisoned Immix line) carries no
        live data to rescue, so forcing another evacuation collection
        for it would only double-count the false failure.
        """
        immix_line, newly_failed = self._seed_failed_pcm_line(page_slot, pcm_offset)
        if newly_failed:
            self.evacuate = True
        return immix_line, newly_failed

    # ------------------------------------------------------------------
    # Line accounting
    # ------------------------------------------------------------------
    def free_runs(self) -> List[Tuple[int, int]]:
        return line_table.free_runs(self.line_states)

    def free_line_count(self) -> int:
        return line_table.count_state(self.line_states, FREE)

    def failed_line_count(self) -> int:
        return len(self.failed_lines)

    def usable_bytes(self) -> int:
        return self.free_line_count() * self.geometry.immix_line

    def is_wholly_free(self) -> bool:
        """No live data and no failed lines: pages may return to the pool."""
        return not self.objects and not self.failed_lines

    def is_empty_of_objects(self) -> bool:
        return not self.objects

    def largest_hole_bytes(self) -> int:
        return line_table.largest_free_run(self.line_states) * self.geometry.immix_line

    def fragmentation_index(self) -> float:
        return line_table.fragmentation_index(self.line_states)

    # ------------------------------------------------------------------
    # Sweep support
    # ------------------------------------------------------------------
    def rebuild_line_marks(self, epoch: int, keep_old: bool = False) -> Tuple[int, int]:
        """Recompute line states from marked objects (the Immix sweep).

        Unmarked objects are dropped from the block; with ``keep_old``
        (sticky nursery sweeps) objects whose sticky bit is set are
        implicitly live. Returns ``(live_lines, lines_scanned)`` for the
        time model.
        """
        states = self.line_states
        for line in range(self.n_lines):
            states[line] = FREE
        for line in self.failed_lines:
            states[line] = FAILED
        survivors: List[SimObject] = []
        conflicts: List[Tuple[int, int]] = []
        line_size = self.geometry.immix_line
        for obj in self.objects:
            if obj.mark != epoch and not (keep_old and obj.old):
                continue
            survivors.append(obj)
            state = LIVE_PINNED if obj.pinned else LIVE
            for line in obj.line_span(line_size):
                if states[line] == FAILED:
                    # A FAILED mark is hardware truth; a survivor
                    # overlapping it (pinned, or an aborted evacuation)
                    # must never mask it as LIVE — that would let a
                    # later sweep hand the failed line back to the
                    # allocator. Record the conflict for the auditor.
                    conflicts.append((obj.oid, line))
                    continue
                if states[line] != LIVE_PINNED:
                    states[line] = state
        self.mark_conflicts = conflicts
        self.objects = survivors
        self.allocated_since_gc = False
        live_lines = line_table.count_state(states, LIVE) + line_table.count_state(
            states, LIVE_PINNED
        )
        return live_lines, self.n_lines

    def objects_overlapping_line(self, immix_line: int) -> List[SimObject]:
        line_size = self.geometry.immix_line
        return [obj for obj in self.objects if immix_line in obj.line_span(line_size)]

    def place(self, obj: SimObject, offset: int) -> None:
        """Bind an object to this block at ``offset`` (allocator use)."""
        obj.block = self
        obj.offset = offset
        obj.los_placement = None
        self.objects.append(obj)
        self.allocated_since_gc = True

    def page_slot_of_line(self, immix_line: int) -> int:
        return immix_line * self.geometry.immix_line // self.geometry.page

    def __repr__(self) -> str:
        return (
            f"Block({self.virtual_index}, {len(self.objects)} objects, "
            f"{self.free_line_count()} free / {len(self.failed_lines)} failed lines)"
        )


def perfect_block(virtual_index: int, pages: List[HeapPage], geometry: Geometry) -> Block:
    """A block that must be hole-free (overflow fallback, LOS staging)."""
    if any(not page.is_perfect for page in pages):
        raise ValueError("perfect block requested with imperfect pages")
    return Block(virtual_index, pages, geometry)


def block_is_perfect(block: Block) -> bool:
    return not block.failed_lines


def sort_key_most_holes(block: Block) -> int:
    """Defrag candidate ordering: most fragmented blocks first."""
    return -(block.free_line_count() + block.failed_line_count())
