"""Immix blocks (paper section 4.1).

A block is 32 KB of virtually contiguous heap, backed by eight physical
pages that need not be contiguous or perfect. The block carries the line
mark table; failed PCM lines are seeded into it as FAILED Immix lines at
construction — including the paper's *false failures*, where one failed
64 B PCM line poisons a whole 128 B or 256 B Immix line.

Hot-path accounting is cached behind two generation counters:

* ``_line_gen`` advances whenever a line state mutates (failure seeding
  or a sweep's mark rebuild). The :class:`~.line_table.FreeRunSummary`
  — free runs, free line count, largest hole — is recomputed at most
  once per generation, so the allocator's repeated ``free_runs()`` /
  ``free_line_count()`` probes between mutations are dictionary-free
  cache hits. Allocation itself (:meth:`Block.place`) deliberately does
  *not* touch line states — the stock code recomputed runs from the
  unchanged table after every placement, so keeping the cache live
  across placements is exactly the original semantics, minus the scan.
* ``_obj_gen`` advances whenever the object list changes; it guards a
  sorted index over object extents so :meth:`objects_overlapping_line`
  is a bisect instead of a full scan.

``REPRO_KERNELS=reference`` (see :mod:`.line_table`) bypasses both
caches and the vectorized sweep, restoring the original per-line loops
for bit-identity comparison.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import List, Optional, Sequence, Set, Tuple

from ..hardware.geometry import Geometry
from . import line_table
from .heap_table import HeapTable, LineSegment
from .line_table import FAILED, FREE, LIVE, LIVE_PINNED, FreeRunSummary
from .object_model import SimObject
from .page_supply import HeapPage


class Block:
    """One Immix block: a line-segment view into a heap table."""

    __slots__ = (
        "virtual_index",
        "geometry",
        "pages",
        "table",
        "slot",
        "n_lines",
        "line_states",
        "failed_lines",
        "objects",
        "evacuate",
        "allocated_since_gc",
        "mark_conflicts",
        "aborted_evacuations",
        "_base",
        "_line_gen",
        "_summary",
        "_summary_gen",
        "_obj_gen",
        "_extent_objs",
        "_extent_starts",
        "_extent_gen",
    )

    def __init__(
        self,
        virtual_index: int,
        pages: List[HeapPage],
        geometry: Geometry,
        table: Optional[HeapTable] = None,
    ) -> None:
        if len(pages) != geometry.pages_per_block:
            raise ValueError(
                f"a block needs {geometry.pages_per_block} pages, got {len(pages)}"
            )
        self.virtual_index = virtual_index
        self.geometry = geometry
        self.pages = pages
        # Collectors pass their shared whole-heap table; standalone
        # blocks (tests, microbenches) get a private single-segment one
        # so the Block API is identical either way.
        if table is None:
            table = HeapTable(geometry)
        self.table = table
        self.slot = table.register(self)
        self._base = table.base(self.slot)
        self.n_lines = geometry.immix_lines_per_block
        self.line_states = LineSegment(table, self.slot, self)
        self.failed_lines: Set[int] = set()
        self.objects: List[SimObject] = []
        #: Flagged by defragmentation / dynamic-failure handling.
        self.evacuate = False
        #: True until the first sweep after allocation into this block;
        #: the sticky (generational) collector sweeps only these.
        self.allocated_since_gc = False
        #: ``(oid, line)`` pairs recorded by the last sweep for live
        #: objects found overlapping a FAILED line. The heap auditor
        #: (:mod:`repro.check`) reports each as a violation.
        self.mark_conflicts: List[Tuple[int, int]] = []
        #: Object ids whose evacuation copy failed and were restored at
        #: their old offset; they may legitimately overlap failed lines
        #: (the auditor tolerates exactly these).
        self.aborted_evacuations: Set[int] = set()
        self._line_gen = 0
        self._summary: Optional[FreeRunSummary] = None
        self._summary_gen = -1
        self._obj_gen = 0
        self._extent_objs: List[SimObject] = []
        self._extent_starts: List[int] = []
        self._extent_gen = -1
        if line_table.use_reference_kernels():
            for slot, page in enumerate(pages):
                for offset in page.failed_offsets:
                    self._seed_failed_pcm_line(slot, offset)
        else:
            self._seed_failed_pages_bulk(pages)

    # ------------------------------------------------------------------
    @property
    def virtual_base(self) -> int:
        return self.virtual_index * self.geometry.block

    def touch_lines(self) -> None:
        """Invalidate the free-run summary after a line-state mutation.

        Internal mutators call this automatically; it is public for
        tests and tooling that poke ``line_states`` directly.
        """
        self._line_gen += 1
        self.table.touch()

    def touch_objects(self) -> None:
        """Invalidate the extent index after an object-list mutation."""
        self._obj_gen += 1

    def _seed_failed_pages_bulk(self, pages: List[HeapPage]) -> None:
        """Seed every page's failed PCM lines in one pass (fast kernel).

        Identical final state to calling :meth:`_seed_failed_pcm_line`
        per offset — the seeded set and byte writes are idempotent and
        order-independent — but with the geometry lookups hoisted and a
        single cache invalidation, which matters because construction
        seeds thousands of lines per cell at paper failure rates.
        """
        page_size = self.geometry.page
        pcm_line = self.geometry.pcm_line
        immix_line = self.geometry.immix_line
        failed = self.failed_lines
        lines = self.table.lines
        marks = self.table.fail_marks
        base = self._base
        for page_slot, page in enumerate(pages):
            offsets = page.failed_offsets
            if not offsets:
                continue
            page_base = page_slot * page_size
            for offset in offsets:
                line = (page_base + offset * pcm_line) // immix_line
                if line not in failed:
                    failed.add(line)
                    lines[base + line] = FAILED
                    marks[base + line] = 1
        if failed:
            self.touch_lines()

    def _seed_failed_pcm_line(self, page_slot: int, pcm_offset: int) -> Tuple[int, bool]:
        """Mark the Immix line poisoned by a failed PCM line.

        Returns ``(immix_line, newly_failed)``: a second failed 64 B PCM
        line landing in an already-poisoned (larger) Immix line is a
        duplicate hit, not a new false failure.
        """
        byte_offset = page_slot * self.geometry.page + pcm_offset * self.geometry.pcm_line
        immix_line = byte_offset // self.geometry.immix_line
        newly_failed = immix_line not in self.failed_lines
        self.failed_lines.add(immix_line)
        base = self._base
        self.table.lines[base + immix_line] = FAILED
        self.table.fail_marks[base + immix_line] = 1
        self.touch_lines()
        return immix_line, newly_failed

    def record_dynamic_failure(self, page_slot: int, pcm_offset: int) -> Tuple[int, bool]:
        """A line failed while the block is live; poison and flag.

        Returns ``(immix_line, newly_failed)``. Only a *newly* failed
        Immix line flags the block for evacuation — a duplicate hit
        (another PCM line of an already-poisoned Immix line) carries no
        live data to rescue, so forcing another evacuation collection
        for it would only double-count the false failure.
        """
        immix_line, newly_failed = self._seed_failed_pcm_line(page_slot, pcm_offset)
        if newly_failed:
            self.evacuate = True
        return immix_line, newly_failed

    # ------------------------------------------------------------------
    # Line accounting
    # ------------------------------------------------------------------
    def line_summary(self) -> FreeRunSummary:
        """Free runs + aggregates, cached until a line state mutates."""
        if line_table.use_reference_kernels():
            return line_table.free_run_summary(self.line_states)
        if self._summary_gen != self._line_gen:
            self._summary = line_table.free_run_summary(self.line_states)
            self._summary_gen = self._line_gen
        return self._summary  # type: ignore[return-value]

    def free_runs(self) -> List[Tuple[int, int]]:
        return self.line_summary().runs

    def free_line_count(self) -> int:
        return self.line_summary().free_lines

    def failed_line_count(self) -> int:
        return len(self.failed_lines)

    def usable_bytes(self) -> int:
        return self.free_line_count() * self.geometry.immix_line

    def is_wholly_free(self) -> bool:
        """No live data and no failed lines: pages may return to the pool."""
        return not self.objects and not self.failed_lines

    def is_empty_of_objects(self) -> bool:
        return not self.objects

    def largest_hole_bytes(self) -> int:
        return self.line_summary().largest_run * self.geometry.immix_line

    def fragmentation_index(self) -> float:
        return self.line_summary().fragmentation_index()

    # ------------------------------------------------------------------
    # Sweep support
    # ------------------------------------------------------------------
    def rebuild_line_marks(self, epoch: int, keep_old: bool = False) -> Tuple[int, int]:
        """Recompute line states from marked objects (the Immix sweep).

        Unmarked objects are dropped from the block; with ``keep_old``
        (sticky nursery sweeps) objects whose sticky bit is set are
        implicitly live. Returns ``(live_lines, lines_scanned)`` for the
        time model.

        The final per-line state follows the precedence FAILED >
        LIVE_PINNED > LIVE > FREE, which is independent of object
        visiting order — the fast kernel exploits that by slice-
        assigning unpinned spans first, pinned spans second, and
        re-stamping FAILED lines last, instead of resolving precedence
        per line. Conflict recording is unchanged: a conflict is exactly
        a survivor's span crossing a line in ``failed_lines``, reported
        in object order with ascending lines.
        """
        if line_table.use_reference_kernels():
            return self._rebuild_line_marks_reference(epoch, keep_old)
        states = self.table.lines
        base = self._base
        n = self.n_lines
        states[base : base + n] = bytes(n)
        line_size = self.geometry.immix_line
        failed = self.failed_lines
        if failed:
            failed_sorted = sorted(failed)
            min_failed = failed_sorted[0]
            max_failed = failed_sorted[-1]
            n_failed = len(failed_sorted)
        else:
            failed_sorted = None
            min_failed = max_failed = n_failed = 0
        survivors: List[SimObject] = []
        pinned_spans: List[Tuple[int, int]] = []
        conflicts: List[Tuple[int, int]] = []
        survive = survivors.append
        conflict = conflicts.append
        # Adjacent live spans merge into one slice-assign: allocation
        # order tracks offset order within a block, so consecutive
        # survivors usually touch consecutive lines. Writes are all
        # LIVE, so batching them cannot change the final table.
        span_first = span_stop = -1
        for obj in self.objects:
            if obj.mark != epoch and not (keep_old and obj.old):
                continue
            survive(obj)
            offset = obj.offset
            first = offset // line_size
            stop = (offset + obj.size - 1) // line_size + 1
            if obj.pinned:
                pinned_spans.append((first, stop))
            elif first <= span_stop and span_first <= stop:
                if first < span_first:
                    span_first = first
                if stop > span_stop:
                    span_stop = stop
            else:
                if span_first >= 0:
                    states[base + span_first : base + span_stop] = b"\x01" * (
                        span_stop - span_first
                    )
                span_first = first
                span_stop = stop
            if failed_sorted is not None and first <= max_failed and stop > min_failed:
                # A FAILED mark is hardware truth; a survivor
                # overlapping it (pinned, or an aborted evacuation)
                # must never mask it as LIVE — that would let a later
                # sweep hand the failed line back to the allocator.
                # Record the conflict for the auditor.
                i = bisect_left(failed_sorted, first)
                while i < n_failed and failed_sorted[i] < stop:
                    conflict((obj.oid, failed_sorted[i]))
                    i += 1
        if span_first >= 0:
            states[base + span_first : base + span_stop] = b"\x01" * (
                span_stop - span_first
            )
        for first, stop in pinned_spans:
            if stop - first == 1:
                states[base + first] = 2
            else:
                states[base + first : base + stop] = b"\x02" * (stop - first)
        if failed_sorted is not None:
            for line in failed_sorted:
                states[base + line] = FAILED
        self.mark_conflicts = conflicts
        self.objects = survivors
        self.allocated_since_gc = False
        self.touch_lines()
        self.touch_objects()
        live_lines = states.count(LIVE, base, base + n) + states.count(
            LIVE_PINNED, base, base + n
        )
        return live_lines, n

    def _rebuild_line_marks_reference(self, epoch: int, keep_old: bool = False) -> Tuple[int, int]:
        """The original per-line sweep, retained for bit-identity runs."""
        states = self.line_states
        for line in range(self.n_lines):
            states[line] = FREE
        for line in self.failed_lines:
            states[line] = FAILED
        survivors: List[SimObject] = []
        conflicts: List[Tuple[int, int]] = []
        line_size = self.geometry.immix_line
        for obj in self.objects:
            if obj.mark != epoch and not (keep_old and obj.old):
                continue
            survivors.append(obj)
            state = LIVE_PINNED if obj.pinned else LIVE
            for line in obj.line_span(line_size):
                if states[line] == FAILED:
                    conflicts.append((obj.oid, line))
                    continue
                if states[line] != LIVE_PINNED:
                    states[line] = state
        self.mark_conflicts = conflicts
        self.objects = survivors
        self.allocated_since_gc = False
        self.touch_lines()
        self.touch_objects()
        live_lines = line_table.count_state(states, LIVE) + line_table.count_state(
            states, LIVE_PINNED
        )
        return live_lines, self.n_lines

    # ------------------------------------------------------------------
    # Object extent index
    # ------------------------------------------------------------------
    def extent_index(self) -> Tuple[List[SimObject], List[int]]:
        """Objects sorted by start offset, plus the parallel offset list.

        Rebuilt lazily when the object list has changed since the last
        query; consumers bisect into the offset list. Sorting is by key
        (never by comparing objects), so a corrupted heap with two
        objects at one offset still indexes — the auditor relies on
        that to *report* the overlap rather than crash on it. Objects
        with no offset (mid-teardown) are excluded.
        """
        if self._extent_gen != self._obj_gen:
            objs = sorted(
                (o for o in self.objects if o.offset is not None),
                key=lambda o: o.offset,
            )
            self._extent_objs = objs
            self._extent_starts = [o.offset for o in objs]
            self._extent_gen = self._obj_gen
        return self._extent_objs, self._extent_starts

    def objects_overlapping_line(self, immix_line: int) -> List[SimObject]:
        """Live objects whose extent crosses ``immix_line``.

        Fast kernel: bisect into the extent index. Objects starting
        inside the line overlap it by definition; by the no-overlap
        invariant at most the single predecessor can span into the line
        from the left, so one extra check suffices.
        """
        line_size = self.geometry.immix_line
        if line_table.use_reference_kernels():
            return [obj for obj in self.objects if immix_line in obj.line_span(line_size)]
        line_start = immix_line * line_size
        line_end = line_start + line_size
        objs, starts = self.extent_index()
        lo = bisect_left(starts, line_start)
        hits: List[SimObject] = []
        if lo > 0:
            prev = objs[lo - 1]
            if prev.offset + prev.size > line_start:
                hits.append(prev)
        for i in range(lo, len(objs)):
            if starts[i] >= line_end:
                break
            hits.append(objs[i])
        return hits

    # ------------------------------------------------------------------
    # Object list mutation
    # ------------------------------------------------------------------
    def place(self, obj: SimObject, offset: int) -> None:
        """Bind an object to this block at ``offset`` (allocator use)."""
        obj.block = self
        obj.offset = offset
        obj.los_placement = None
        self.objects.append(obj)
        self.allocated_since_gc = True
        self._obj_gen += 1  # touch_objects(), sans the call overhead

    def remove_object(self, obj: SimObject) -> None:
        """Unlink ``obj`` (evacuation, promotion, or cell free)."""
        self.objects.remove(obj)
        self.touch_objects()

    def replace_objects(self, survivors: List[SimObject]) -> None:
        """Swap in a new object list wholesale (mark-sweep's sweep)."""
        self.objects = survivors
        self.touch_objects()

    def page_slot_of_line(self, immix_line: int) -> int:
        return immix_line * self.geometry.immix_line // self.geometry.page

    def __repr__(self) -> str:
        return (
            f"Block({self.virtual_index}, {len(self.objects)} objects, "
            f"{self.free_line_count()} free / {len(self.failed_lines)} failed lines)"
        )


def perfect_block(virtual_index: int, pages: List[HeapPage], geometry: Geometry) -> Block:
    """A block that must be hole-free (overflow fallback, LOS staging)."""
    if any(not page.is_perfect for page in pages):
        raise ValueError("perfect block requested with imperfect pages")
    return Block(virtual_index, pages, geometry)


def block_is_perfect(block: Block) -> bool:
    return not block.failed_lines


def sort_key_most_holes(block: Block) -> int:
    """Defrag candidate ordering: most fragmented blocks first.

    Reads the cached free-line count, so sorting a candidate list costs
    one summary per block, not one table scan per comparison.
    """
    return -(block.free_line_count() + block.failed_line_count())


def sorted_defrag_candidates(blocks: Sequence[Block]) -> List[Block]:
    """Candidates ordered most-holes-first with the key computed once.

    Decorate-sort-undecorate over ``(key, position)`` pairs: each
    block's hole count is evaluated exactly once (a cache hit when the
    summary is current), and ties keep their input order, matching
    ``sorted(blocks, key=sort_key_most_holes)``.
    """
    decorated = sorted(
        (sort_key_most_holes(block), position)
        for position, block in enumerate(blocks)
    )
    return [blocks[position] for _key, position in decorated]
