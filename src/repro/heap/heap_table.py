"""Whole-heap structure-of-arrays line state (paper section 4.2).

The paper's line mark table is a byte-per-line side table with spare
encodings, exactly like MMTk's — which makes a *flat whole-heap* layout
natural: instead of every :class:`~.block.Block` owning a private
258-byte table, one :class:`HeapTable` holds a single ``bytearray`` of
line states and a parallel ``bytearray`` of failure marks for the
entire heap, and each block holds an ``(offset, length)`` view into
them (:class:`LineSegment`). Free-run scanning, sweeping, and
defrag-candidate ranking then become single C-speed passes over the
whole heap (``bytes.count`` / ``bytes.find``) rather than a Python
loop over blocks.

Layout: segments are laid out back to back with one *guard byte*
between consecutive blocks. The guard holds :data:`UNMAPPED` (0xFF),
which is not FREE, so whole-heap scans can never merge a free run
across a block boundary — the per-block and whole-heap views agree by
construction. Retired segments (their block's pages returned to the
supply) are filled with :data:`UNMAPPED` too, so they drop out of every
whole-heap aggregate, and their slots are recycled LIFO for the next
block.

The fast/reference switch (:mod:`.line_table`) layers on top: the
whole-heap kernels each have a per-block reference twin that walks the
active segments with the original Python loops, and
``REPRO_KERNELS=reference`` routes every consumer through the twins
for bit-identity comparison. Generation-invalidated caches live at
heap scope here — any line-state mutation anywhere bumps
:attr:`HeapTable.generation` and lazily invalidates the whole-heap
counts, mirroring the per-block summary caches.
"""

from __future__ import annotations

from typing import List, Optional, Union

from ..hardware.geometry import Geometry
from .line_table import FREE, use_reference_kernels

#: Guard/retired filler: not a valid line state, never FREE, so flat
#: scans cannot run across block boundaries or count retired segments.
UNMAPPED = 0xFF


class HeapTable:
    """Flat line-state and failure-mark arrays for one heap.

    One table per collector; standalone blocks (tests, microbenches)
    create a private single-segment table. Segment *slots* are handed
    out by :meth:`register` and recycled by :meth:`retire`.
    """

    __slots__ = (
        "geometry",
        "lines_per_block",
        "stride",
        "lines",
        "fail_marks",
        "owners",
        "generation",
        "_free_slots",
        "_free_count",
        "_free_count_gen",
        "_failed_count",
        "_failed_count_gen",
        "_retired_fill",
        "_zero_fill",
    )

    def __init__(self, geometry: Geometry) -> None:
        self.geometry = geometry
        self.lines_per_block = geometry.immix_lines_per_block
        #: Segment pitch: one block's lines plus the guard byte.
        self.stride = self.lines_per_block + 1
        self.lines = bytearray()
        self.fail_marks = bytearray()
        #: Slot -> owning block (None for retired slots).
        self.owners: List[Optional[object]] = []
        self.generation = 0
        self._free_slots: List[int] = []
        self._free_count = 0
        self._free_count_gen = -1
        self._failed_count = 0
        self._failed_count_gen = -1
        self._retired_fill = bytes([UNMAPPED]) * self.lines_per_block
        self._zero_fill = bytes(self.lines_per_block)

    # ------------------------------------------------------------------
    # Segment lifecycle
    # ------------------------------------------------------------------
    def register(self, owner: object) -> int:
        """Claim a segment slot for ``owner``; lines start FREE."""
        if self._free_slots:
            slot = self._free_slots.pop()
            base = slot * self.stride
            end = base + self.lines_per_block
            self.lines[base:end] = self._zero_fill
            self.fail_marks[base:end] = self._zero_fill
            self.owners[slot] = owner
        else:
            slot = len(self.owners)
            self.owners.append(owner)
            self.lines.extend(self._zero_fill)
            self.lines.append(UNMAPPED)
            self.fail_marks.extend(self._zero_fill)
            self.fail_marks.append(0)
        self.touch()
        return slot

    def retire(self, slot: int) -> None:
        """Release a slot: blank both arrays and recycle the slot."""
        if self.owners[slot] is None:
            return
        base = slot * self.stride
        end = base + self.lines_per_block
        self.lines[base:end] = self._retired_fill
        self.fail_marks[base:end] = self._zero_fill
        self.owners[slot] = None
        self._free_slots.append(slot)
        self.touch()

    def base(self, slot: int) -> int:
        return slot * self.stride

    def active_slots(self) -> List[int]:
        """Registered (non-retired) slots, ascending."""
        return [slot for slot, owner in enumerate(self.owners) if owner is not None]

    def n_slots(self) -> int:
        return len(self.owners)

    # ------------------------------------------------------------------
    def touch(self) -> None:
        """Invalidate whole-heap aggregates after any line mutation."""
        self.generation += 1

    # ------------------------------------------------------------------
    # Whole-heap kernels (fast) and their per-block reference twins
    # ------------------------------------------------------------------
    def free_line_count(self) -> int:
        """FREE lines across the whole heap, one C-speed count.

        Guard bytes and retired segments hold UNMAPPED, so counting the
        flat array *is* the sum over active blocks.
        """
        if use_reference_kernels():
            return self.free_line_count_reference()
        if self._free_count_gen != self.generation:
            self._free_count = self.lines.count(FREE)
            self._free_count_gen = self.generation
        return self._free_count

    def free_line_count_reference(self) -> int:
        total = 0
        lines = self.lines
        for slot in self.active_slots():
            base = slot * self.stride
            for i in range(base, base + self.lines_per_block):
                if lines[i] == FREE:
                    total += 1
        return total

    def failed_line_count(self) -> int:
        """Failed lines across the whole heap (one count over marks)."""
        if use_reference_kernels():
            return self.failed_line_count_reference()
        if self._failed_count_gen != self.generation:
            self._failed_count = self.fail_marks.count(1)
            self._failed_count_gen = self.generation
        return self._failed_count

    def failed_line_count_reference(self) -> int:
        total = 0
        marks = self.fail_marks
        for slot in self.active_slots():
            base = slot * self.stride
            for i in range(base, base + self.lines_per_block):
                if marks[i]:
                    total += 1
        return total

    def slots_with_free_lines(self) -> List[int]:
        """Ascending slots whose segment holds at least one FREE line.

        Fast kernel: ``find`` jumps from hit to hit, so the Python loop
        runs once per *matching block*, not once per line. This is the
        whole-heap scan behind allocation-state rebuilds.
        """
        if use_reference_kernels():
            return self.slots_with_free_lines_reference()
        lines = self.lines
        find = lines.find
        stride = self.stride
        slots: List[int] = []
        pos = find(FREE)
        while pos != -1:
            slot = pos // stride
            slots.append(slot)
            pos = find(FREE, (slot + 1) * stride)
        return slots

    def slots_with_free_lines_reference(self) -> List[int]:
        lines = self.lines
        slots: List[int] = []
        for slot in self.active_slots():
            base = slot * self.stride
            for i in range(base, base + self.lines_per_block):
                if lines[i] == FREE:
                    slots.append(slot)
                    break
        return slots

    def free_lines_in(self, slot: int) -> int:
        """FREE lines of one segment (bounded C count; defrag ranking)."""
        base = slot * self.stride
        if use_reference_kernels():
            lines = self.lines
            return sum(
                1 for i in range(base, base + self.lines_per_block) if lines[i] == FREE
            )
        return self.lines.count(FREE, base, base + self.lines_per_block)

    def failed_lines_in(self, slot: int) -> int:
        """Failed lines of one segment (bounded C count)."""
        base = slot * self.stride
        if use_reference_kernels():
            marks = self.fail_marks
            return sum(
                1 for i in range(base, base + self.lines_per_block) if marks[i]
            )
        return self.fail_marks.count(1, base, base + self.lines_per_block)

    def segment_bytes(self, slot: int) -> bytes:
        """Immutable copy of one segment's line states."""
        base = slot * self.stride
        return bytes(self.lines[base : base + self.lines_per_block])

    def __repr__(self) -> str:
        active = sum(1 for owner in self.owners if owner is not None)
        return (
            f"HeapTable({active} active / {len(self.owners)} slots, "
            f"{len(self.lines)} line bytes)"
        )


class LineSegment:
    """One block's sequence-like view into the heap table.

    Quacks like the ``bytearray`` each block used to own: indexing,
    slicing, iteration, ``count``, ``translate``, ``bytes()``, and
    equality against byte strings all behave identically, so the
    :mod:`.line_table` kernels and existing tests work unchanged. A
    ``memoryview`` would not do — it lacks ``count``/``translate`` and
    would pin the table against resizing.

    Writes through the view bump the owning block's line generation
    (and therefore the heap table's), so direct pokes from tests and
    tooling can never leave a stale cached summary behind.
    """

    __slots__ = ("table", "slot", "base", "n_lines", "owner")

    def __init__(self, table: HeapTable, slot: int, owner: object) -> None:
        self.table = table
        self.slot = slot
        self.base = slot * table.stride
        self.n_lines = table.lines_per_block
        self.owner = owner

    def __len__(self) -> int:
        return self.n_lines

    def _index(self, index: int) -> int:
        if index < 0:
            index += self.n_lines
        if not 0 <= index < self.n_lines:
            raise IndexError(f"line {index} outside block of {self.n_lines} lines")
        return self.base + index

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            start, stop, step = index.indices(self.n_lines)
            if step == 1:
                return self.table.lines[self.base + start : self.base + stop]
            return bytes(self)[index]
        return self.table.lines[self._index(index)]

    def __setitem__(self, index: Union[int, slice], value) -> None:
        if isinstance(index, slice):
            start, stop, step = index.indices(self.n_lines)
            if step != 1:
                raise ValueError("line segments only support contiguous writes")
            data = bytes(value)
            if len(data) != stop - start:
                raise ValueError("line segment writes cannot resize the block")
            self.table.lines[self.base + start : self.base + stop] = data
        else:
            self.table.lines[self._index(index)] = value
        self.owner.touch_lines()

    def __iter__(self):
        return iter(bytes(self))

    def __bytes__(self) -> bytes:
        view = memoryview(self.table.lines)
        try:
            return bytes(view[self.base : self.base + self.n_lines])
        finally:
            view.release()

    def __eq__(self, other) -> bool:
        if isinstance(other, LineSegment):
            return bytes(self) == bytes(other)
        if isinstance(other, (bytes, bytearray, memoryview)):
            return bytes(self) == bytes(other)
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def count(self, value: int, start: int = 0, end: Optional[int] = None) -> int:
        if end is None or end > self.n_lines:
            end = self.n_lines
        return self.table.lines.count(value, self.base + start, self.base + end)

    def translate(self, mapping: bytes) -> bytes:
        return bytes(self).translate(mapping)

    def __repr__(self) -> str:
        return f"LineSegment(slot={self.slot}, {self.n_lines} lines)"
