"""The large object space (paper sections 3.3.3 and 4.1).

Objects above the Immix large threshold live in a page-grained space.
Large objects are the paper's canonical *fussy* allocation: each needs
whole perfect pages (virtual address translation removes any page-level
contiguity concern, so the pages themselves may be scattered). Under
two-page failure clustering, perfect pages remain plentiful up to ~50 %
failures, which is why xalan — the paper's large-object-heavy
benchmark — tolerates failures so well.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..errors import OutOfMemoryError
from ..hardware.geometry import Geometry
from .object_model import SimObject
from .page_supply import HeapPage, PageSupply


class Placement:
    """Pages backing one large object."""

    __slots__ = ("virtual_base", "pages")

    def __init__(self, virtual_base: int, pages: List[HeapPage]) -> None:
        self.virtual_base = virtual_base
        self.pages = pages

    @property
    def n_pages(self) -> int:
        return len(self.pages)


class LargeObjectSpace:
    """Page-grained allocator for large objects."""

    def __init__(self, supply: PageSupply, geometry: Geometry) -> None:
        self.supply = supply
        self.geometry = geometry
        self._objects: Dict[int, SimObject] = {}
        self._next_virtual = 1 << 40  # LOS virtual range, disjoint from blocks
        self.pages_in_use = 0
        self.peak_pages = 0
        self.allocations = 0
        self.failed_allocations = 0
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None

    def __getstate__(self) -> dict:
        """Snapshot support: object placements persist, tracers do not."""
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    # ------------------------------------------------------------------
    def pages_needed(self, size: int) -> int:
        return (size + self.geometry.page - 1) // self.geometry.page

    def allocate(self, obj: SimObject, allow_borrow: bool = True) -> bool:
        """Place a large object on perfect pages; False means "collect".

        Running out of perfect + borrowable memory surfaces as False so
        the caller can trigger a collection and retry, exactly like any
        other failed allocation request. ``allow_borrow=False`` is the
        paper's collect-before-borrowing protocol: only perfect PCM may
        be used before a collection has been tried.
        """
        n = self.pages_needed(obj.size)
        try:
            pages = self.supply.fussy_pages(n, allow_borrow=allow_borrow)
        except OutOfMemoryError:
            self.failed_allocations += 1
            return False
        placement = Placement(self._next_virtual, pages)
        self._next_virtual += n * self.geometry.page
        obj.los_placement = placement
        obj.block = None
        obj.offset = None
        self._objects[obj.oid] = obj
        self.pages_in_use += n
        self.peak_pages = max(self.peak_pages, self.pages_in_use)
        self.allocations += 1
        tr = self.tracer
        if tr is not None:
            tr.instant("los.alloc", args={"oid": obj.oid, "pages": n})
            tr.metrics.counter(
                "repro_los_allocs_total", "large-object allocations"
            ).inc()
        return True

    def free(self, obj: SimObject) -> None:
        placement = obj.los_placement
        if placement is None or self._objects.pop(obj.oid, None) is None:
            raise ValueError(f"object {obj.oid} is not in the LOS")
        self.supply.release_all(placement.pages)
        self.pages_in_use -= placement.n_pages
        obj.los_placement = None
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "los.free", args={"oid": obj.oid, "pages": placement.n_pages}
            )
            tr.metrics.counter(
                "repro_los_frees_total", "large-object frees"
            ).inc()

    # ------------------------------------------------------------------
    def sweep(
        self,
        epoch: int,
        keep_old: bool = False,
        on_free: Optional[Callable[[SimObject], None]] = None,
    ) -> List[HeapPage]:
        """Free large objects not marked with ``epoch``.

        With ``keep_old`` (sticky nursery sweeps) objects whose sticky
        bit is set survive unmarked. ``on_free`` is called with each dead
        object *before* its pages are released: releasing a perfect page
        while DRAM debt is outstanding can transmute it into a live
        borrowed placement under the same index, so per-index bookkeeping
        must be retired before the release, not after. Returns the freed
        pages for accounting.
        """
        dead = [
            obj
            for obj in self._objects.values()
            if obj.mark != epoch and not (keep_old and obj.old)
        ]
        freed: List[HeapPage] = []
        for obj in dead:
            if on_free is not None:
                on_free(obj)
            freed.extend(obj.los_placement.pages)
            self.free(obj)
        return freed

    def objects(self) -> List[SimObject]:
        return list(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)
