"""Line mark states and free-run computation (paper section 4).

Immix tracks heap memory per logical line. The stock collector uses
free / live / live-pinned states; the failure-aware extension adds a
fourth state, FAILED, "without space overhead" because line marks are
bytes with spare encodings (paper section 4.2). The bump allocator never
looks at states directly — it consumes *free runs*, the maximal spans of
contiguous FREE lines computed here.

Two kernel implementations live side by side:

* the **fast** kernels scan line tables with C-speed byte-string
  primitives (``bytes.translate`` to collapse states to a binary
  free/unavailable mask, then ``find`` to jump from run edge to run
  edge) — the number of Python-level steps is proportional to the
  number of *runs*, not the number of *lines*;
* the **reference** kernels are the original per-line Python loops,
  kept verbatim for property testing and for bit-identity runs.

This module also hosts the process-wide kernel-mode switch consulted by
:class:`repro.heap.block.Block` and the OS failure table: ``fast`` (the
default) uses the vectorized kernels plus generation-invalidated
caches, ``reference`` recomputes everything per query with the naive
loops. ``REPRO_KERNELS=reference`` selects it from the environment; the
``repro microbench`` harness toggles it in-process to prove the two
paths produce bit-identical results.
"""

from __future__ import annotations

import os
from typing import List, NamedTuple, Tuple

#: Line states (stored one byte per line, as in MMTk's line mark table).
FREE = 0
LIVE = 1
LIVE_PINNED = 2
FAILED = 3

_STATE_NAMES = {FREE: "free", LIVE: "live", LIVE_PINNED: "pinned", FAILED: "failed"}

#: ``bytes.translate`` table collapsing line states to a binary mask:
#: FREE -> 0x00, everything else -> 0x01.
_FREE_MASK_TABLE = bytes(0 if state == FREE else 1 for state in range(256))

#: Kernel implementations selectable at runtime (see module docstring).
KERNEL_MODES = ("fast", "reference")

# Validation is deliberately lazy: importing this module must never
# raise on a bad REPRO_KERNELS value, or every `python -m repro`
# invocation would die with a bare traceback before the CLI could
# print a usage message. An unknown value behaves like "fast" until
# `validate_kernel_mode()` is consulted (the CLI calls it first and
# exits 2 with usage on failure).
_kernel_mode = os.environ.get("REPRO_KERNELS", "fast")


def validate_kernel_mode() -> str:
    """Check the active mode, raising ``ValueError`` if it is invalid.

    Entry points call this once, early, and turn the error into a
    usage message + exit status 2; library code never needs to.
    """
    if _kernel_mode not in KERNEL_MODES:
        raise ValueError(
            f"REPRO_KERNELS={_kernel_mode!r} is not one of {KERNEL_MODES}"
        )
    return _kernel_mode


def kernel_mode() -> str:
    """The active kernel implementation: ``fast`` or ``reference``."""
    return _kernel_mode


def use_reference_kernels() -> bool:
    return _kernel_mode == "reference"


def set_kernel_mode(mode: str) -> str:
    """Select the kernel implementation; returns the previous mode.

    ``reference`` also disables the per-block summary caches and the
    failure table's bitmap caches, reproducing the recompute-on-query
    behaviour the fast kernels replaced — that is what makes
    fast-vs-reference end-to-end comparisons meaningful.
    """
    global _kernel_mode
    if mode not in KERNEL_MODES:
        raise ValueError(f"kernel mode {mode!r} is not one of {KERNEL_MODES}")
    previous = _kernel_mode
    _kernel_mode = mode
    return previous


def state_name(state: int) -> str:
    return _STATE_NAMES.get(state, f"?{state}")


# ----------------------------------------------------------------------
# Free-run scanning
# ----------------------------------------------------------------------
def free_runs(line_states: bytearray) -> List[Tuple[int, int]]:
    """Maximal runs of FREE lines as ``(first_line, n_lines)`` pairs.

    This is the structure the bump-pointer allocator consumes: it sets
    its cursor to the run start and its limit to the run end, skipping
    over live, pinned, and failed lines in one step.

    Fast kernel: the states collapse to a 0/1 mask via ``translate``,
    then ``find`` locates each run edge at C speed, so the Python loop
    executes once per run rather than once per line.
    """
    if _kernel_mode == "reference":
        return free_runs_reference(line_states)
    mask = line_states.translate(_FREE_MASK_TABLE)
    runs: List[Tuple[int, int]] = []
    n = len(mask)
    find = mask.find
    start = find(0)
    while start != -1:
        end = find(1, start + 1)
        if end == -1:
            runs.append((start, n - start))
            break
        runs.append((start, end - start))
        start = find(0, end + 1)
    return runs


def free_runs_reference(line_states: bytearray) -> List[Tuple[int, int]]:
    """The original per-line scan, retained for property testing."""
    runs: List[Tuple[int, int]] = []
    start = None
    for index, state in enumerate(line_states):
        if state == FREE:
            if start is None:
                start = index
        elif start is not None:
            runs.append((start, index - start))
            start = None
    if start is not None:
        runs.append((start, len(line_states) - start))
    return runs


class FreeRunSummary(NamedTuple):
    """Free runs plus the aggregates every consumer wants, in one pass.

    ``free_lines`` equals ``count_state(states, FREE)`` because the runs
    partition the free lines (property-tested): the fast kernel counts
    the table directly at C speed, the reference path accumulates run
    lengths — bit-identical either way.
    """

    runs: List[Tuple[int, int]]
    free_lines: int
    largest_run: int

    def fragmentation_index(self) -> float:
        if self.free_lines == 0:
            return 0.0
        return 1.0 - self.largest_run / self.free_lines


def free_run_summary(line_states: bytearray) -> FreeRunSummary:
    """Runs, total free lines, and largest run for one table."""
    if _kernel_mode == "reference":
        runs = free_runs_reference(line_states)
        free_lines = 0
        largest = 0
        for _start, length in runs:
            free_lines += length
            if length > largest:
                largest = length
        return FreeRunSummary(runs, free_lines, largest)
    runs = free_runs(line_states)
    if not runs:
        return FreeRunSummary(runs, 0, 0)
    largest = 0
    for run in runs:
        if run[1] > largest:
            largest = run[1]
    return FreeRunSummary(runs, line_states.count(FREE), largest)


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------
def largest_free_run(line_states: bytearray) -> int:
    """Length in lines of the largest contiguous free span."""
    return free_run_summary(line_states).largest_run


def largest_free_run_reference(line_states: bytearray) -> int:
    best = 0
    for _, length in free_runs_reference(line_states):
        best = max(best, length)
    return best


def count_state(line_states: bytearray, state: int) -> int:
    return line_states.count(state)


def fragmentation_index(line_states: bytearray) -> float:
    """How chopped-up the free space is: 0 = one run, ->1 = maximally split.

    Defined as ``1 - largest_run / total_free``; 0.0 when no free lines.
    The fast path skips the :class:`FreeRunSummary` construction — same
    arithmetic, so the result is bit-identical to the reference.
    """
    if _kernel_mode == "reference":
        return fragmentation_index_reference(line_states)
    runs = free_runs(line_states)
    if not runs:
        return 0.0
    largest = 0
    for run in runs:
        if run[1] > largest:
            largest = run[1]
    return 1.0 - largest / line_states.count(FREE)


def fragmentation_index_reference(line_states: bytearray) -> float:
    """The original double-scan formulation (count, then run list)."""
    total_free = count_state(line_states, FREE)
    if total_free == 0:
        return 0.0
    return 1.0 - largest_free_run_reference(line_states) / total_free
