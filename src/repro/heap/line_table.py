"""Line mark states and free-run computation (paper section 4).

Immix tracks heap memory per logical line. The stock collector uses
free / live / live-pinned states; the failure-aware extension adds a
fourth state, FAILED, "without space overhead" because line marks are
bytes with spare encodings (paper section 4.2). The bump allocator never
looks at states directly — it consumes *free runs*, the maximal spans of
contiguous FREE lines computed here.
"""

from __future__ import annotations

from typing import List, Tuple

#: Line states (stored one byte per line, as in MMTk's line mark table).
FREE = 0
LIVE = 1
LIVE_PINNED = 2
FAILED = 3

_STATE_NAMES = {FREE: "free", LIVE: "live", LIVE_PINNED: "pinned", FAILED: "failed"}


def state_name(state: int) -> str:
    return _STATE_NAMES.get(state, f"?{state}")


def free_runs(line_states: bytearray) -> List[Tuple[int, int]]:
    """Maximal runs of FREE lines as ``(first_line, n_lines)`` pairs.

    This is the structure the bump-pointer allocator consumes: it sets
    its cursor to the run start and its limit to the run end, skipping
    over live, pinned, and failed lines in one step.
    """
    runs: List[Tuple[int, int]] = []
    start = None
    for index, state in enumerate(line_states):
        if state == FREE:
            if start is None:
                start = index
        elif start is not None:
            runs.append((start, index - start))
            start = None
    if start is not None:
        runs.append((start, len(line_states) - start))
    return runs


def largest_free_run(line_states: bytearray) -> int:
    """Length in lines of the largest contiguous free span."""
    best = 0
    for _, length in free_runs(line_states):
        best = max(best, length)
    return best


def count_state(line_states: bytearray, state: int) -> int:
    return line_states.count(state)


def fragmentation_index(line_states: bytearray) -> float:
    """How chopped-up the free space is: 0 = one run, ->1 = maximally split.

    Defined as ``1 - largest_run / total_free``; 0.0 when no free lines.
    """
    total_free = count_state(line_states, FREE)
    if total_free == 0:
        return 0.0
    return 1.0 - largest_free_run(line_states) / total_free
