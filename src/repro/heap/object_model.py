"""The simulated object model.

Objects are records, not bytes: each knows its size, where it lives
(block + offset, or a large-object placement), what it references, and
whether it is pinned. The collector traces the real reference graph and
moves real placements, so every paper invariant — "never allocate live
objects on failed lines", "never move pinned objects" — is checkable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

#: Allocation alignment in bytes (object sizes round up to this).
ALIGNMENT = 8

#: Object header bytes charged per object, echoing a JVM-ish header.
HEADER_BYTES = 8


def aligned_size(requested: int) -> int:
    """Total footprint of an object of ``requested`` payload bytes."""
    if requested < 0:
        raise ValueError("object size must be >= 0")
    total = requested + HEADER_BYTES
    return (total + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


class SimObject:
    """One heap object."""

    __slots__ = (
        "oid",
        "size",
        "block",
        "offset",
        "los_placement",
        "refs",
        "pinned",
        "mark",
        "old",
        "birth",
        "moved_count",
    )

    def __init__(self, oid: int, size: int, pinned: bool = False, birth: int = 0) -> None:
        self.oid = oid
        self.size = size
        self.block = None  # repro.heap.block.Block when small/medium
        self.offset: Optional[int] = None  # byte offset within the block
        self.los_placement = None  # repro.heap.large_object_space.Placement
        self.refs: List["SimObject"] = []
        self.pinned = pinned
        #: Mark-state epoch; collectors compare against their epoch
        #: counter rather than clearing bits heap-wide every cycle.
        self.mark = 0
        #: Sticky mark bit: True once the object survived a collection.
        #: Nursery (sticky) collections treat old objects as implicitly
        #: live and do not trace into them.
        self.old = False
        self.birth = birth
        self.moved_count = 0

    # ------------------------------------------------------------------
    @property
    def address(self) -> Optional[int]:
        """Virtual byte address, or None while unplaced."""
        if self.block is not None and self.offset is not None:
            return self.block.virtual_base + self.offset
        if self.los_placement is not None:
            return self.los_placement.virtual_base
        return None

    @property
    def is_large(self) -> bool:
        return self.los_placement is not None

    def add_ref(self, target: "SimObject") -> None:
        self.refs.append(target)

    def clear_refs(self) -> None:
        self.refs.clear()

    def line_span(self, line_size: int) -> range:
        """Block-relative Immix line indices this object covers."""
        if self.block is None or self.offset is None:
            raise ValueError(f"object {self.oid} has no block placement")
        first = self.offset // line_size
        last = (self.offset + self.size - 1) // line_size
        return range(first, last + 1)

    def __repr__(self) -> str:
        where = f"@{self.address:#x}" if self.address is not None else "unplaced"
        pin = " pinned" if self.pinned else ""
        return f"SimObject({self.oid}, {self.size}B, {where}{pin})"


class ObjectFactory:
    """Mints objects with unique ids and a monotonically advancing clock."""

    def __init__(self) -> None:
        self._next_oid = 0
        self.allocated_objects = 0
        self.allocated_bytes = 0

    def make(self, size: int, pinned: bool = False, clock: int = 0) -> SimObject:
        obj = SimObject(self._next_oid, aligned_size(size), pinned, birth=clock)
        self._next_oid += 1
        self.allocated_objects += 1
        self.allocated_bytes += obj.size
        return obj


def reachable_from(roots: Iterable[SimObject], epoch: int) -> List[SimObject]:
    """Transitive closure over the reference graph.

    Marks every reached object with ``epoch`` and returns them in trace
    order. Objects already carrying ``epoch`` are treated as visited, so
    a collector advances its epoch once per trace.
    """
    stack = [obj for obj in roots if obj.mark != epoch]
    for obj in stack:
        obj.mark = epoch
    reached: List[SimObject] = []
    while stack:
        obj = stack.pop()
        reached.append(obj)
        for child in obj.refs:
            if child.mark != epoch:
                child.mark = epoch
                stack.append(child)
    return reached
