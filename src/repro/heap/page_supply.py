"""The VM's page supply: span ownership and the debit-credit model.

The runtime receives a fixed budget of (possibly imperfect) pages from
the OS via the fault injector. Like MMTk, the heap hands memory to its
spaces at a coarse granularity: *spans* of ``pages_per_block``
consecutive pages. The relaxed Immix block space claims whole free
spans; the fussy page-grained large object space claims spans too, but
only consumes their *perfect* pages — the imperfect remainder of a
LOS-claimed span is dead weight until the span empties.

That dead weight is the heart of the paper's two-page-clustering
threshold effect: while every 2-page region yields a perfect page
(failure rate < 50 %), a LOS span is half-usable and cheap; once
regions start yielding none, the LOS burns a whole span for one or two
perfect pages and the collector feels the loss.

When a fussy request finds no perfect PCM page at all, a page is
borrowed (modelling scarce DRAM) and the paper's one-page *space
penalty* is charged by parking one real free page for the duration of
the loan. The relaxed allocator repays outstanding debt by declining
perfect pages it is later offered.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Optional

from ..errors import OutOfMemoryError
from ..faults.accounting import PerfectPageAccountant
from ..hardware.geometry import Geometry
from . import line_table

#: Span owners.
SPAN_FREE = 0
SPAN_BLOCKS = 1
SPAN_LOS = 2


class HeapPage:
    """VM-side view of one page backing the heap."""

    __slots__ = ("index", "failed_offsets", "borrowed")

    def __init__(
        self, index: int, failed_offsets: FrozenSet[int] = frozenset(), borrowed: bool = False
    ) -> None:
        self.index = index
        self.failed_offsets = failed_offsets
        self.borrowed = borrowed

    @property
    def is_perfect(self) -> bool:
        return not self.failed_offsets

    def __repr__(self) -> str:
        kind = "borrowed" if self.borrowed else ("perfect" if self.is_perfect else
                                                 f"{len(self.failed_offsets)} holes")
        return f"HeapPage({self.index}, {kind})"


class _Span:
    """``pages_per_block`` consecutive pages with a single owner."""

    __slots__ = ("index", "pages", "owner", "free", "n_free_perfect")

    def __init__(self, index: int, pages: List[HeapPage]) -> None:
        self.index = index
        self.pages = pages
        self.owner = SPAN_FREE
        #: Pages currently free (not handed to a space user).
        self.free: List[HeapPage] = list(pages)
        #: Incremental count of perfect pages in ``free``; lets the
        #: fussy allocator skip whole spans without scanning them.
        #: Every ``free`` mutation in PageSupply keeps it in step.
        self.n_free_perfect = sum(1 for page in pages if not page.failed_offsets)

    @property
    def fully_free(self) -> bool:
        return len(self.free) == len(self.pages)

    def free_perfect(self) -> List[HeapPage]:
        return [page for page in self.free if page.is_perfect]

    def has_free_perfect(self) -> bool:
        return self.n_free_perfect > 0


class PageSupply:
    """Span-granular page bookkeeping for one VM heap."""

    def __init__(
        self,
        pages: List[HeapPage],
        geometry: Geometry,
        accountant: Optional[PerfectPageAccountant] = None,
    ) -> None:
        self.geometry = geometry
        self.accountant = accountant or PerfectPageAccountant()
        per_span = geometry.pages_per_block
        usable = len(pages) - len(pages) % per_span
        ordered = sorted(pages[:usable], key=lambda p: p.index)
        self.total_pages = usable
        self._spans: List[_Span] = [
            _Span(i, ordered[i * per_span : (i + 1) * per_span])
            for i in range(usable // per_span)
        ]
        self._span_of_page = {
            page.index: span for span in self._spans for page in span.pages
        }
        #: Incremental mirror of ``free_real_pages``: every span.free
        #: mutation below adjusts it, so the allocator's frequent
        #: ``available_pages()`` probes cost O(1) instead of a
        #: generator pass over all spans. ``REPRO_KERNELS=reference``
        #: recomputes the sum per query as the oracle.
        self._free_pages = usable
        #: Synthetic borrowed (DRAM) pages currently held by fussy users.
        self._borrowed_held: List[HeapPage] = []
        #: Real pages parked to pay the one-page space penalty of each
        #: outstanding borrowed page; returned when the loan ends.
        self._parked: List[HeapPage] = []
        self._next_borrow_index = -1
        #: Called with (old_index, new_index) when a borrowed page held
        #: by a space user adopts a real page's identity (debt
        #: repayment below); lets per-index side tables follow the page.
        self.on_page_reindexed: Optional[Callable[[int, int], None]] = None
        # Statistics
        self.relaxed_pages_taken = 0
        self.fussy_pages_taken = 0
        self.los_span_claims = 0

    def __getstate__(self) -> dict:
        """Snapshot support: drop the reindex callback (collector wiring).

        It is a bound method of the owning collector, which re-solders
        it in its own ``__setstate__``; persisting it here would make a
        supply-only pickle drag the whole collector graph along.
        """
        state = self.__dict__.copy()
        state["on_page_reindexed"] = None
        return state

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_perfect(self) -> int:
        return sum(
            1
            for span in self._spans
            if span.owner != SPAN_BLOCKS
            for page in span.free
            if page.is_perfect
        )

    @property
    def free_imperfect(self) -> int:
        return sum(
            1
            for span in self._spans
            if span.owner != SPAN_BLOCKS
            for page in span.free
            if not page.is_perfect
        )

    @property
    def free_real_pages(self) -> int:
        if line_table.use_reference_kernels():
            return sum(len(span.free) for span in self._spans)
        return self._free_pages

    def recount_free_pages(self) -> int:
        """The non-incremental sum (invariant checking, reference mode)."""
        return sum(len(span.free) for span in self._spans)

    def available_pages(self) -> int:
        """Free pages across all spans (parked pages excluded)."""
        return self.free_real_pages

    def free_spans(self) -> int:
        return sum(1 for span in self._spans if span.owner == SPAN_FREE and span.fully_free)

    @property
    def parked_pages(self) -> int:
        """Real pages currently parked as borrow penalties."""
        return len(self._parked)

    def los_dead_weight_pages(self) -> int:
        """Imperfect pages stranded inside LOS-claimed spans.

        The paper's clustering-threshold cost made visible: these pages
        are neither usable by the LOS nor available to the block space.
        """
        return sum(
            1
            for span in self._spans
            if span.owner == SPAN_LOS
            for page in span.free
            if not page.is_perfect
        )

    # ------------------------------------------------------------------
    # Relaxed path (Immix block space): whole spans
    # ------------------------------------------------------------------
    def take_block_pages(self) -> Optional[List[HeapPage]]:
        """Claim the lowest fully-free span for a 32 KB block."""
        for span in self._spans:
            if span.owner == SPAN_FREE and span.fully_free:
                span.owner = SPAN_BLOCKS
                taken = list(span.free)
                span.free = []
                span.n_free_perfect = 0
                self._free_pages -= len(taken)
                self.relaxed_pages_taken += len(taken)
                return taken
        return None

    # ------------------------------------------------------------------
    # Fussy path (LOS, overflow fallback): perfect pages
    # ------------------------------------------------------------------
    def fussy_page(self, allow_borrow: bool = True) -> HeapPage:
        """A perfect page: LOS-span inventory, a new span, or a borrow."""
        self.fussy_pages_taken += 1
        # 1. Perfect pages already inside LOS-claimed spans.
        for span in self._spans:
            if span.owner == SPAN_LOS and span.n_free_perfect:
                for page in span.free:
                    if not page.failed_offsets:
                        span.free.remove(page)
                        span.n_free_perfect -= 1
                        self._free_pages -= 1
                        self.accountant.record_perfect_hit()
                        return page
        # 2. Claim the lowest free span that holds a perfect page. Its
        #    imperfect pages become dead weight until the span empties.
        for span in self._spans:
            if span.owner == SPAN_FREE and span.fully_free and span.n_free_perfect:
                span.owner = SPAN_LOS
                self.los_span_claims += 1
                page = span.free_perfect()[0]
                span.free.remove(page)
                span.n_free_perfect -= 1
                self._free_pages -= 1
                self.accountant.record_perfect_hit()
                return page
        # 3. Borrow DRAM, parking one real free page as the penalty.
        if not allow_borrow:
            self.fussy_pages_taken -= 1
            raise OutOfMemoryError("no perfect PCM page; collect before borrowing")
        parked = self._steal_parkable()
        if parked is None:
            self.fussy_pages_taken -= 1
            raise OutOfMemoryError("no free page left to charge the borrow penalty")
        self._parked.append(parked)
        self.accountant.borrow()
        page = HeapPage(self._next_borrow_index, borrowed=True)
        self._next_borrow_index -= 1
        self._borrowed_held.append(page)
        return page

    def _steal_parkable(self) -> Optional[HeapPage]:
        """Remove one free page to park: LOS dead weight first, then any."""
        for span in self._spans:
            if span.owner == SPAN_LOS:
                for page in span.free:
                    if page.failed_offsets:
                        span.free.remove(page)
                        self._free_pages -= 1
                        return page
        for span in self._spans:
            if span.free:
                page = span.free[0]
                span.free.remove(page)
                if not page.failed_offsets:
                    span.n_free_perfect -= 1
                self._free_pages -= 1
                if span.owner == SPAN_FREE:
                    span.owner = SPAN_LOS  # broken for parking
                return page
        return None

    def fussy_pages(self, n: int, allow_borrow: bool = True) -> List[HeapPage]:
        """``n`` perfect pages, all-or-nothing."""
        taken: List[HeapPage] = []
        try:
            for _ in range(n):
                taken.append(self.fussy_page(allow_borrow=allow_borrow))
        except OutOfMemoryError:
            for page in taken:
                self.release(page)
            raise
        return taken

    # ------------------------------------------------------------------
    def release(self, page: HeapPage) -> None:
        """Return a page to its span (or end a DRAM loan).

        The paper's credit step happens here: a perfect page freed while
        debt is outstanding is surrendered to one borrowed placement
        (which silently becomes PCM-backed) instead of rejoining the
        free pool, retiring one page of debt and unparking its penalty
        page. Economically this is the paper's "relaxed allocator
        declines the perfect page" rule: the page goes to the fussy side
        the moment it would otherwise become allocatable.
        """
        if page.borrowed:
            self._borrowed_held.remove(page)
            self.accountant.return_borrowed()
            self._unpark()
            return
        if page.is_perfect and self.accountant.debt > 0 and self._borrowed_held:
            held = self._borrowed_held.pop()
            old_index = held.index
            held.index = page.index
            held.failed_offsets = page.failed_offsets
            held.borrowed = False
            if self.on_page_reindexed is not None:
                self.on_page_reindexed(old_index, held.index)
            self._unpark()
            if self.accountant.offer_perfect_to_relaxed():
                raise AssertionError("accountant debt disagreed with borrowed_held")
            return
        span = self._span_of_page[page.index]
        span.free.append(page)
        if not page.failed_offsets:
            span.n_free_perfect += 1
        self._free_pages += 1
        if span.fully_free:
            span.owner = SPAN_FREE

    def release_all(self, pages: List[HeapPage]) -> None:
        for page in pages:
            self.release(page)

    def _unpark(self) -> None:
        if self._parked:
            page = self._parked.pop()
            if page.borrowed:
                return
            self.release(page)
