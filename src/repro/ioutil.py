"""Atomic file publication for artifacts.

Every artifact this package writes — ``BENCH_sweep.json``,
``BENCH_kernels.json``, Prometheus metrics files — is a publication
point some other process may read or a resumed run may depend on. A
writer killed mid-``write()`` must never leave a torn file behind:
the crash-safety story (fault-tolerant sweeps, ``--resume``) only
holds if interrupting a run cannot corrupt what it already produced.

The pattern matches :meth:`repro.sim.cache.ResultCache.put`: write to
a temp file in the destination directory, then ``os.replace`` — a
reader sees the old content or the new content, never a prefix. On
any failure the temp file is unlinked, so the worst outcome of a
killed writer is a leaked ``*.tmp`` alongside an intact artifact.

Append-only files (the sweep flight-recorder ledger) get the other
atomicity primitive, :func:`append_jsonl`: one whole JSON line per
``O_APPEND`` write, so many processes can share one ledger without a
lock and a torn *tail* (a writer killed mid-append) is the only
possible damage — which the ledger reader tolerates explicitly.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any


def atomic_write_text(path: str, text: str) -> None:
    """Publish ``text`` at ``path`` atomically (temp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def append_jsonl(path: str, record: Any) -> None:
    """Append ``record`` to ``path`` as one JSON line, atomically.

    The line is serialized first and written with a single
    ``os.write`` on an ``O_APPEND`` descriptor, so concurrent
    appenders — the sweep parent and its worker processes all share
    one ledger file — interleave whole lines, never fragments of
    them. (POSIX guarantees the atomicity for writes up to PIPE_BUF;
    ledger records are well under that.) A process killed before the
    write leaves the file untouched; killed mid-``os.write`` on a
    local filesystem it still lands the whole line or nothing.
    """
    line = json.dumps(record, separators=(",", ":")) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, line.encode("utf-8"))
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> None:
    """Publish ``payload`` as JSON at ``path`` atomically.

    Serialization happens before the rename, so a payload that fails
    to serialize (or a writer killed mid-dump) leaves any existing
    file at ``path`` untouched.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=indent)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
