"""Cross-layer observability: structured tracing, metrics, logging.

See ``trace.py`` for the event/phase model, ``metrics.py`` for the
registry, ``export.py`` for Chrome-trace/JSONL output, ``log.py``
for the stdout/stderr conventions, ``ledger.py`` for the wall-clock
sweep flight recorder and ``profile.py`` for opt-in worker
profiling.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    CATEGORIES,
    HARDWARE,
    OS,
    ROOT_PHASE,
    RUNTIME,
    TraceEvent,
    Tracer,
    maybe_span,
)
from .export import (
    LEDGER_CATEGORIES,
    chrome_trace,
    ledger_chrome_trace,
    validate_chrome_trace,
    validate_jsonl_trace,
    write_chrome_trace,
    write_jsonl,
    write_ledger_chrome_trace,
)
from .ledger import (
    LEDGER_SCHEMA,
    REPORT_SCHEMA,
    SweepLedger,
    SweepProgress,
    aggregate,
    read_ledger,
    worker_emit,
)
from .profile import merge_profiles, profile_call, render_hotspots

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "HARDWARE",
    "Histogram",
    "LEDGER_CATEGORIES",
    "LEDGER_SCHEMA",
    "MetricsRegistry",
    "OS",
    "REPORT_SCHEMA",
    "ROOT_PHASE",
    "RUNTIME",
    "SweepLedger",
    "SweepProgress",
    "TraceEvent",
    "Tracer",
    "aggregate",
    "chrome_trace",
    "ledger_chrome_trace",
    "maybe_span",
    "merge_profiles",
    "profile_call",
    "read_ledger",
    "render_hotspots",
    "validate_chrome_trace",
    "validate_jsonl_trace",
    "worker_emit",
    "write_chrome_trace",
    "write_jsonl",
    "write_ledger_chrome_trace",
]
