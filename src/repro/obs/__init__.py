"""Cross-layer observability: structured tracing, metrics, logging.

See ``trace.py`` for the event/phase model, ``metrics.py`` for the
registry, ``export.py`` for Chrome-trace/JSONL output and ``log.py``
for the stdout/stderr conventions.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    CATEGORIES,
    HARDWARE,
    OS,
    ROOT_PHASE,
    RUNTIME,
    TraceEvent,
    Tracer,
    maybe_span,
)
from .export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "HARDWARE",
    "Histogram",
    "MetricsRegistry",
    "OS",
    "ROOT_PHASE",
    "RUNTIME",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "maybe_span",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
