"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome trace format is the JSON Array/Object format consumed by
``chrome://tracing`` and Perfetto (ui.perfetto.dev → "Open trace
file"). Simulated time units map to microseconds: the cost model's
unit is ~1 ns, so ``ts = units / 1000`` renders GC pauses at a
natural scale in the viewer.

Layers map to tracks: one process ("repro simulation"), three named
threads — runtime (tid 1), os (tid 2), hardware (tid 3) — so the
cross-layer causality of a failure (hardware interrupt → OS upcall →
dynamic-failure collection) reads top to bottom in the UI.

``validate_chrome_trace`` is the schema check used by tests, the CLI
and the CI smoke job. It verifies structural requirements Perfetto
cares about (required keys, known phases, numeric non-negative
timestamps) and — when the ring buffer did not overflow — that B/E
span events balance per track.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .trace import CATEGORIES, HARDWARE, OS, RUNTIME, Tracer

#: Track ids: runtime on top, hardware at the bottom.
TRACK_IDS = {RUNTIME: 1, OS: 2, HARDWARE: 3}
PROCESS_ID = 1
PROCESS_NAME = "repro simulation"

#: Simulated units per Chrome-trace microsecond (units are ~1 ns).
UNITS_PER_US = 1000.0

VALID_PHASES = {"B", "E", "i", "I", "M", "X"}


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array: metadata first, then the ring."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PROCESS_ID,
            "tid": 0,
            "args": {"name": PROCESS_NAME},
        }
    ]
    for cat, tid in sorted(TRACK_IDS.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PROCESS_ID,
                "tid": tid,
                "args": {"name": cat},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": PROCESS_ID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for event in tracer.events():
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts / UNITS_PER_US,
            "pid": PROCESS_ID,
            "tid": TRACK_IDS.get(event.cat, 0),
        }
        if event.ph == "i":
            record["s"] = "t"  # instant scope: thread
        if event.args is not None:
            record["args"] = event.args
        events.append(record)
    return events


def chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Full Chrome trace payload (JSON Object format)."""
    other: Dict[str, Any] = {
        "recorded_events": tracer.recorded,
        "dropped_events": tracer.dropped,
        "time_units_per_us": UNITS_PER_US,
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    tracer: Tracer, path: str, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    payload = chrome_trace(tracer, metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return payload


def write_jsonl(tracer: Tracer, path: str) -> int:
    """One raw event per line, timestamps in simulated units."""
    n = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in tracer.events():
            handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
            handle.write("\n")
            n += 1
    return n


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema problems with a Chrome trace payload; [] means valid."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    if not events:
        problems.append("traceEvents is empty")
    dropped = 0
    other = payload.get("otherData")
    if isinstance(other, dict):
        dropped = int(other.get("dropped_events", 0) or 0)
    stacks: Dict[int, List[str]] = {}
    last_ts: Dict[int, float] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
        ph = event.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"{where}: invalid ph {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
            continue
        cat = event.get("cat")
        if cat is not None and cat not in CATEGORIES:
            problems.append(f"{where}: unknown cat {cat!r}")
        tid = event["tid"]
        if ts < last_ts.get(tid, 0.0):
            problems.append(f"{where}: ts {ts} goes backwards on tid {tid}")
        last_ts[tid] = max(last_ts.get(tid, 0.0), float(ts))
        if ph == "B":
            stacks.setdefault(tid, []).append(name)
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if stack:
                stack.pop()
            elif dropped == 0:
                problems.append(f"{where}: E event {name!r} without matching B")
    if dropped == 0:
        for tid, stack in stacks.items():
            if stack:
                problems.append(
                    f"tid {tid}: {len(stack)} unclosed B event(s), "
                    f"innermost {stack[-1]!r}"
                )
    return problems
