"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome trace format is the JSON Array/Object format consumed by
``chrome://tracing`` and Perfetto (ui.perfetto.dev → "Open trace
file"). Simulated time units map to microseconds: the cost model's
unit is ~1 ns, so ``ts = units / 1000`` renders GC pauses at a
natural scale in the viewer.

Layers map to tracks: one process ("repro simulation"), three named
threads — runtime (tid 1), os (tid 2), hardware (tid 3) — so the
cross-layer causality of a failure (hardware interrupt → OS upcall →
dynamic-failure collection) reads top to bottom in the UI.

``validate_chrome_trace`` is the schema check used by tests, the CLI
and the CI smoke job. It verifies structural requirements Perfetto
cares about (required keys, known phases, numeric non-negative
timestamps) and — when the ring buffer did not overflow — that B/E
span events balance per track. ``validate_jsonl_trace`` applies the
same per-event checks to the raw JSONL spelling, tolerating exactly
the damage an interrupted writer can cause (a truncated final line)
while still flagging interior corruption, unknown event types, and
out-of-order timestamps.

A second exporter lives here too: :func:`ledger_chrome_trace` renders
a sweep flight-recorder ledger (:mod:`repro.obs.ledger`) as a
*wall-clock* Chrome trace — one track for the sweep parent and one
per worker process — so where the harness spends real time reads in
the same Perfetto UI as where the simulation spends simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence

from .trace import CATEGORIES, HARDWARE, OS, RUNTIME, Tracer

#: Track ids: runtime on top, hardware at the bottom.
TRACK_IDS = {RUNTIME: 1, OS: 2, HARDWARE: 3}
PROCESS_ID = 1
PROCESS_NAME = "repro simulation"

#: Simulated units per Chrome-trace microsecond (units are ~1 ns).
UNITS_PER_US = 1000.0

VALID_PHASES = {"B", "E", "i", "I", "M", "X"}


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """The ``traceEvents`` array: metadata first, then the ring."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PROCESS_ID,
            "tid": 0,
            "args": {"name": PROCESS_NAME},
        }
    ]
    for cat, tid in sorted(TRACK_IDS.items(), key=lambda item: item[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PROCESS_ID,
                "tid": tid,
                "args": {"name": cat},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": PROCESS_ID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    for event in tracer.events():
        record: Dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts / UNITS_PER_US,
            "pid": PROCESS_ID,
            "tid": TRACK_IDS.get(event.cat, 0),
        }
        if event.ph == "i":
            record["s"] = "t"  # instant scope: thread
        if event.args is not None:
            record["args"] = event.args
        events.append(record)
    return events


def chrome_trace(
    tracer: Tracer, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Full Chrome trace payload (JSON Object format)."""
    other: Dict[str, Any] = {
        "recorded_events": tracer.recorded,
        "dropped_events": tracer.dropped,
        "time_units_per_us": UNITS_PER_US,
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    tracer: Tracer, path: str, metadata: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    payload = chrome_trace(tracer, metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return payload


def write_jsonl(tracer: Tracer, path: str) -> int:
    """One raw event per line, timestamps in simulated units."""
    n = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in tracer.events():
            handle.write(json.dumps(event.to_dict(), separators=(",", ":")))
            handle.write("\n")
            n += 1
    return n


def validate_chrome_trace(
    payload: Any, categories: Optional[Sequence[str]] = None
) -> List[str]:
    """Schema problems with a Chrome trace payload; [] means valid.

    ``categories`` is the set of legal ``cat`` values — the simulated
    layer names by default; pass :data:`LEDGER_CATEGORIES` for a
    wall-clock ledger trace.
    """
    known_cats = tuple(categories) if categories is not None else CATEGORIES
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    if not events:
        problems.append("traceEvents is empty")
    dropped = 0
    other = payload.get("otherData")
    if isinstance(other, dict):
        dropped = int(other.get("dropped_events", 0) or 0)
    stacks: Dict[int, List[str]] = {}
    last_ts: Dict[int, float] = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing name")
        ph = event.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"{where}: invalid ph {ph!r}")
            continue
        if not isinstance(event.get("pid"), int) or not isinstance(
            event.get("tid"), int
        ):
            problems.append(f"{where}: pid/tid must be integers")
            continue
        if ph == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
            continue
        cat = event.get("cat")
        if cat is not None and cat not in known_cats:
            problems.append(f"{where}: unknown cat {cat!r}")
        tid = event["tid"]
        if ts < last_ts.get(tid, 0.0):
            problems.append(f"{where}: ts {ts} goes backwards on tid {tid}")
        last_ts[tid] = max(last_ts.get(tid, 0.0), float(ts))
        if ph == "B":
            stacks.setdefault(tid, []).append(name)
        elif ph == "E":
            stack = stacks.setdefault(tid, [])
            if stack:
                stack.pop()
            elif dropped == 0:
                problems.append(f"{where}: E event {name!r} without matching B")
    if dropped == 0:
        for tid, stack in stacks.items():
            if stack:
                problems.append(
                    f"tid {tid}: {len(stack)} unclosed B event(s), "
                    f"innermost {stack[-1]!r}"
                )
    return problems


def validate_jsonl_trace(
    lines: Iterable[str], categories: Optional[Sequence[str]] = None
) -> List[str]:
    """Problems with a raw JSONL event stream (``write_jsonl`` output).

    Checks per line: parseable JSON object (a truncated line — the
    one corruption an interrupted writer can produce — reads as
    unparseable), known ``ph`` and ``cat``, a numeric non-negative
    ``ts``, and globally non-decreasing timestamps (the tracer's
    clock is monotone, so out-of-order events mean a corrupted or
    hand-spliced file).
    """
    known_cats = tuple(categories) if categories is not None else CATEGORIES
    problems: List[str] = []
    last_ts: Optional[float] = None
    count = 0
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        count += 1
        try:
            event = json.loads(line)
        except ValueError:
            problems.append(f"line {number}: truncated or unparseable record")
            continue
        if not isinstance(event, dict):
            problems.append(f"line {number}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"line {number}: missing name")
        ph = event.get("ph")
        if ph not in VALID_PHASES:
            problems.append(f"line {number}: unknown event type {ph!r}")
            continue
        cat = event.get("cat")
        if cat is not None and cat not in known_cats:
            problems.append(f"line {number}: unknown cat {cat!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"line {number}: ts must be a non-negative number")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"line {number}: ts {ts} goes backwards (previous {last_ts})"
            )
        last_ts = max(last_ts, float(ts)) if last_ts is not None else float(ts)
    if count == 0:
        problems.append("no events")
    return problems


# ----------------------------------------------------------------------
# Wall-clock ledger traces (one track per worker process)
# ----------------------------------------------------------------------
#: The legal ``cat`` value in a ledger-derived trace.
LEDGER_CATEGORY = "sweep"
LEDGER_CATEGORIES = (LEDGER_CATEGORY,)

LEDGER_PROCESS_NAME = "repro sweep (wall clock)"

#: Parent-track id; worker tracks are assigned 2, 3, ... by first
#: appearance order of their pids.
PARENT_TID = 1


def ledger_chrome_trace(
    ledger_events: Sequence[Dict[str, Any]],
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A ledger (:func:`repro.obs.ledger.read_ledger`) as a Chrome trace.

    Wall-clock unix timestamps are rebased to the first event and
    scaled to microseconds. Worker attempts render as complete ("X")
    spans on one track per worker pid; parent-side bookkeeping
    (cache operations, dispatches, retries, quarantines) renders as
    instants — and cache operations as spans — on the parent track.
    Validate with ``validate_chrome_trace(payload, LEDGER_CATEGORIES)``.
    """
    from .ledger import (  # local: export must stay importable standalone
        ATTEMPT_END, ATTEMPT_START, CACHE_HIT, CACHE_MISS, CACHE_STORE,
        COLLECT, CRASH, DISPATCH, QUARANTINE, RETRY, SWEEP_BEGIN, TIMEOUT,
    )

    events = [e for e in ledger_events if isinstance(e.get("t"), (int, float))]
    if not events:
        return {
            "traceEvents": [],
            "displayTimeUnit": "ms",
            "otherData": dict(metadata or {}),
        }
    t0 = min(float(e["t"]) for e in events)
    parent_pid = next(
        (e.get("pid") for e in events if e.get("ev") == SWEEP_BEGIN), None
    )

    tids: Dict[Any, int] = {}

    def tid_for(event: Dict[str, Any]) -> int:
        pid = event.get("pid")
        if pid == parent_pid or pid is None:
            return PARENT_TID
        if pid not in tids:
            tids[pid] = PARENT_TID + 1 + len(tids)
        return tids[pid]

    def us(t: float) -> float:
        return max(0.0, (t - t0) * 1e6)

    spans: List[Dict[str, Any]] = []
    starts: Dict[Any, Dict[str, Any]] = {}
    for event in events:
        ev = event.get("ev")
        t = float(event["t"])
        cell = event.get("cell")
        if ev == ATTEMPT_START:
            starts[(cell, event.get("attempt", 1), event.get("pid"))] = event
        elif ev == ATTEMPT_END:
            begun = starts.pop(
                (cell, event.get("attempt", 1), event.get("pid")), None
            )
            started_ts = (
                us(float(begun["t"]))
                if begun is not None
                else us(t) - float(event.get("wall_s", 0.0)) * 1e6
            )
            spans.append(
                {
                    "name": f"cell {cell} "
                    f"{event.get('workload') or ''} a{event.get('attempt', 1)}".strip(),
                    "cat": LEDGER_CATEGORY,
                    "ph": "X",
                    "ts": started_ts,
                    "dur": max(0.0, us(t) - started_ts),
                    "pid": PROCESS_ID,
                    "tid": tid_for(event),
                    "args": {
                        "cell": cell,
                        "attempt": event.get("attempt", 1),
                        "ok": bool(event.get("ok", True)),
                    },
                }
            )
        elif ev in (CACHE_HIT, CACHE_MISS, CACHE_STORE):
            wall_us = float(event.get("wall_s", 0.0)) * 1e6
            spans.append(
                {
                    "name": ev,
                    "cat": LEDGER_CATEGORY,
                    "ph": "X",
                    "ts": max(0.0, us(t) - wall_us),
                    "dur": wall_us,
                    "pid": PROCESS_ID,
                    "tid": PARENT_TID,
                    "args": {"cell": cell},
                }
            )
        elif ev in (DISPATCH, COLLECT, RETRY, TIMEOUT, CRASH, QUARANTINE):
            spans.append(
                {
                    "name": ev,
                    "cat": LEDGER_CATEGORY,
                    "ph": "i",
                    "s": "t",
                    "ts": us(t),
                    "pid": PROCESS_ID,
                    "tid": PARENT_TID,
                    "args": {"cell": cell},
                }
            )
    spans.sort(key=lambda record: record["ts"])

    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PROCESS_ID,
            "tid": 0,
            "args": {"name": LEDGER_PROCESS_NAME},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": PROCESS_ID,
            "tid": PARENT_TID,
            "args": {"name": "parent"},
        },
    ]
    for pid, tid in sorted(tids.items(), key=lambda item: item[1]):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PROCESS_ID,
                "tid": tid,
                "args": {"name": f"worker pid {pid}"},
            }
        )
    trace_events.extend(spans)
    other: Dict[str, Any] = {
        "ledger_events": len(events),
        "workers": len(tids),
        "epoch_unix": t0,
    }
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_ledger_chrome_trace(
    ledger_events: Sequence[Dict[str, Any]],
    path: str,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    payload = ledger_chrome_trace(ledger_events, metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"))
        handle.write("\n")
    return payload
