"""Sweep flight recorder: a cross-process wall-clock event ledger.

PR 3's tracer measures *simulated* time inside one process; this
module records where the harness spends its *real* wall-clock time
across every process a sweep touches. The parent (:func:`run_grid`),
each pool worker, and every fault-tolerant attempt append typed events
to one shared JSONL file — schema ``repro.ledger/1`` — via
:func:`repro.ioutil.append_jsonl`, whose single-``write`` ``O_APPEND``
discipline makes concurrent appends safe without a lock.

The ledger is strictly observational: nothing reads it during the
sweep, and a sweep run with the recorder on produces a bit-identical
``results`` section to one run with it off (CI enforces this).

Three consumers sit on top:

* :func:`aggregate` folds a ledger into a wall-clock breakdown —
  per-phase totals (simulate / cache / queue / collect / retry waste /
  retry wait), timeline coverage, top-N slowest cells, cache hit rate
  — rendered by ``repro report``;
* :class:`SweepProgress` is a live listener on parent-side events:
  done/total, running cells, hit rate, and an EMA-based ETA, printed
  through :mod:`repro.obs.log` (``sweep --progress``) or snapshotted
  into a job's ``progress`` block (``repro serve``);
* :func:`repro.obs.export.ledger_chrome_trace` renders the merged
  ledger as a wall-clock Chrome trace, one track per worker process.

Event vocabulary (the ``ev`` field)
-----------------------------------
``sweep_begin``/``sweep_end``   parent: one sweep's bounds and totals
``cache_hit``/``cache_miss``    parent: cache lookup (+ its wall_s)
``cache_store``                 parent: result published to the cache
``dispatch``                    parent: cell handed to a worker slot
``attempt_start``/``attempt_end``  worker: one attempt's bounds
``collect``                     parent: completed result received
``retry``/``timeout``/``crash`` parent: fault-tolerant executor events
``quarantine``                  parent: cell abandoned after retries
``checkpoint``                  parent: periodic progress waypoint
``profile``                     worker: pstats file spooled for a cell

Every record carries ``t`` (unix seconds, comparable across
processes), ``pid``, and ``ev``; the rest is per-type payload.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..ioutil import append_jsonl

#: Ledger schema identifier, stamped on the ``sweep_begin`` record.
LEDGER_SCHEMA = "repro.ledger/1"

# Event types ----------------------------------------------------------
SWEEP_BEGIN = "sweep_begin"
SWEEP_END = "sweep_end"
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
CACHE_STORE = "cache_store"
DISPATCH = "dispatch"
ATTEMPT_START = "attempt_start"
ATTEMPT_END = "attempt_end"
COLLECT = "collect"
RETRY = "retry"
TIMEOUT = "timeout"
CRASH = "crash"
QUARANTINE = "quarantine"
CHECKPOINT = "checkpoint"
PROFILE = "profile"

EVENT_TYPES = frozenset(
    {
        SWEEP_BEGIN, SWEEP_END, CACHE_HIT, CACHE_MISS, CACHE_STORE,
        DISPATCH, ATTEMPT_START, ATTEMPT_END, COLLECT, RETRY, TIMEOUT,
        CRASH, QUARANTINE, CHECKPOINT, PROFILE,
    }
)

#: Emit a ``checkpoint`` waypoint every N completed cells.
CHECKPOINT_EVERY = 25


# ----------------------------------------------------------------------
# Writers
# ----------------------------------------------------------------------
class SweepLedger:
    """Parent-side ledger writer with in-process listeners.

    ``path=None`` is the in-memory mode: events still reach listeners
    (live progress, the serve daemon's job counters) but nothing is
    written to disk and worker processes — which only ever see
    :attr:`path` — record nothing. With a path, every parent event is
    appended to the file *and* delivered to listeners; worker events
    go straight to the file via :func:`worker_emit` and are only seen
    again by readers.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = str(path) if path is not None else None
        self.events: List[Dict[str, Any]] = []
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        if self.path is not None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)

    def add_listener(self, listener: Callable[[Dict[str, Any]], None]) -> None:
        self._listeners.append(listener)

    def emit(self, ev: str, **fields: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"t": time.time(), "pid": os.getpid(), "ev": ev}
        record.update(fields)
        self.events.append(record)
        if self.path is not None:
            append_jsonl(self.path, record)
        for listener in self._listeners:
            listener(record)
        return record


def worker_emit(path: Optional[str], ev: str, **fields: Any) -> None:
    """One event from a worker process (no listeners, file only)."""
    if path is None:
        return
    record: Dict[str, Any] = {"t": time.time(), "pid": os.getpid(), "ev": ev}
    record.update(fields)
    append_jsonl(path, record)


# ----------------------------------------------------------------------
# Reader
# ----------------------------------------------------------------------
def read_ledger(path: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Parse a ledger file; returns ``(events, problems)``.

    A torn *final* line — the one legal corruption an ``O_APPEND``
    writer killed mid-record can produce — is dropped with a problem
    note rather than an exception. Torn or unparseable *interior*
    lines and unknown event types are also reported; the surviving
    events are still returned so a damaged ledger degrades to a
    partial report instead of no report.
    """
    events: List[Dict[str, Any]] = []
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A well-formed ledger ends with "\n", so split leaves a final "".
    if lines and lines[-1] == "":
        lines.pop()
    elif lines:
        problems.append(
            f"line {len(lines)}: truncated record (writer killed "
            "mid-append); dropped"
        )
        lines.pop()
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            problems.append(f"line {number}: unparseable record; dropped")
            continue
        if not isinstance(record, dict):
            problems.append(f"line {number}: record is not an object; dropped")
            continue
        ev = record.get("ev")
        if ev not in EVENT_TYPES:
            problems.append(f"line {number}: unknown event type {ev!r}")
        events.append(record)
    return events, problems


# ----------------------------------------------------------------------
# Live progress
# ----------------------------------------------------------------------
class SweepProgress:
    """Listener turning parent-side ledger events into live progress.

    Tracks done/total, in-flight cells, cache hit rate, and an ETA
    from an exponential moving average of executed-cell wall times
    (cache hits are excluded from the EMA — they would drive the ETA
    to zero while uncached work remains). Attach via
    :meth:`SweepLedger.add_listener`; pass ``log`` to narrate (the
    CLI) or poll :meth:`snapshot` (the serve daemon).
    """

    #: EMA smoothing factor: ~the last 5 cells dominate.
    ALPHA = 0.35

    #: Narration is throttled to one line per interval (0 = every event).
    MIN_LOG_INTERVAL_S = 1.0

    def __init__(
        self,
        log: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._log = log
        self._clock = clock
        self._last_logged = float("-inf")
        self.total = 0
        self.jobs = 1
        self.executed = 0
        self.cached = 0
        self.quarantined = 0
        self.running = 0
        self.ema_cell_s: Optional[float] = None

    # -- event feed -----------------------------------------------------
    def __call__(self, record: Dict[str, Any]) -> None:
        ev = record.get("ev")
        if ev == SWEEP_BEGIN:
            self.total = int(record.get("cells", 0))
            self.jobs = max(1, int(record.get("jobs", 1)))
        elif ev == CACHE_HIT:
            self.cached += 1
            self._narrate()
        elif ev == DISPATCH:
            self.running += 1
        elif ev == COLLECT:
            self.running = max(0, self.running - 1)
            self.executed += 1
            wall = float(record.get("wall_s", 0.0))
            if self.ema_cell_s is None:
                self.ema_cell_s = wall
            else:
                self.ema_cell_s += self.ALPHA * (wall - self.ema_cell_s)
            self._narrate()
        elif ev == QUARANTINE:
            self.running = max(0, self.running - 1)
            self.quarantined += 1
            self._narrate()
        elif ev == SWEEP_END:
            self._narrate(force=True)

    # -- derived state --------------------------------------------------
    @property
    def done(self) -> int:
        return self.executed + self.cached + self.quarantined

    @property
    def hit_rate(self) -> Optional[float]:
        looked_up = self.executed + self.cached
        if looked_up == 0:
            return None
        return self.cached / looked_up

    def eta_s(self) -> Optional[float]:
        """Remaining wall time, assuming EMA-cost cells on all workers."""
        if self.ema_cell_s is None or self.total == 0:
            return None
        remaining = max(0, self.total - self.done)
        return remaining * self.ema_cell_s / self.jobs

    def snapshot(self) -> Dict[str, Any]:
        return {
            "cells_total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "quarantined": self.quarantined,
            "running": self.running,
            "hit_rate": self.hit_rate,
            "eta_s": self.eta_s(),
        }

    # -- narration ------------------------------------------------------
    def _narrate(self, force: bool = False) -> None:
        if self._log is None:
            return
        now = self._clock()
        if not force and now - self._last_logged < self.MIN_LOG_INTERVAL_S:
            return
        self._last_logged = now
        parts = [f"progress: {self.done}/{self.total} cells"]
        if self.running:
            parts.append(f"{self.running} running")
        rate = self.hit_rate
        if rate is not None:
            parts.append(f"hit rate {rate:.0%}")
        if self.quarantined:
            parts.append(f"{self.quarantined} quarantined")
        eta = self.eta_s()
        if eta is not None and self.done < self.total:
            parts.append(f"eta {_fmt_duration(eta)}")
        self._log(", ".join(parts))


def _fmt_duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


# ----------------------------------------------------------------------
# Aggregation (the `repro report` engine)
# ----------------------------------------------------------------------
#: Report schema identifier (the --json payload).
REPORT_SCHEMA = "repro.ledger-report/1"

#: Wall-clock phase categories, in render order. ``simulate`` is the
#: useful work; everything else is harness overhead or waste.
PHASES = (
    "simulate",      # successful attempts' in-worker wall time
    "cache",         # lookups + stores in the parent
    "queue",         # dispatch -> first attempt_start gap
    "collect",       # attempt_end -> parent collect gap (IPC + spool)
    "retry_wait",    # backoff the executor deliberately waited out
    "retry_waste",   # failed attempts' wall time (error/crash/timeout)
)


def aggregate(events: Sequence[Dict[str, Any]], top: int = 10) -> Dict[str, Any]:
    """Fold ledger events into the wall-clock report payload.

    Coverage is the honesty metric: the union of all intervals the
    ledger *explains* (cache operations; each cell's dispatch-to-
    collect or dispatch-to-quarantine span) divided by the sweep's
    measured wall. A ledger missing an emission point shows up as a
    coverage drop, not as a silently wrong breakdown — the CI
    report-smoke job holds it at >= 95 %.
    """
    begin = next((e for e in events if e.get("ev") == SWEEP_BEGIN), None)
    end = next((e for e in reversed(events) if e.get("ev") == SWEEP_END), None)

    phases = {phase: 0.0 for phase in PHASES}
    intervals: List[Tuple[float, float]] = []

    if end is not None:
        # Pool wind-down, measured by the parent and stamped on the
        # terminal record; counts as collection overhead.
        teardown = float(end.get("teardown_s", 0.0))
        if teardown > 0:
            phases["collect"] += teardown
            intervals.append((float(end["t"]) - teardown, float(end["t"])))

    dispatch_t: Dict[int, float] = {}
    start_t: Dict[Tuple[int, int], float] = {}
    end_t: Dict[int, float] = {}
    cells: Dict[int, Dict[str, Any]] = {}
    profiles: List[str] = []
    cache_hits = 0
    cache_misses = 0
    retries = 0
    result_bytes = 0
    pickle_bytes = 0
    quarantined: List[Dict[str, Any]] = []
    worker_pids = set()

    def cell(index: int) -> Dict[str, Any]:
        return cells.setdefault(
            index,
            {"index": index, "workload": None, "wall_s": 0.0,
             "attempts": 0, "cached": False, "outcome": "executed"},
        )

    for event in events:
        ev = event.get("ev")
        t = float(event.get("t", 0.0))
        index = event.get("cell")
        if ev in (CACHE_HIT, CACHE_MISS, CACHE_STORE):
            wall = float(event.get("wall_s", 0.0))
            phases["cache"] += wall
            intervals.append((t - wall, t))
            if ev == CACHE_HIT:
                cache_hits += 1
                record = cell(index)
                record.update(
                    workload=event.get("workload", record["workload"]),
                    wall_s=wall, cached=True, outcome="cached",
                )
            elif ev == CACHE_MISS:
                cache_misses += 1
        elif ev == DISPATCH:
            dispatch_t.setdefault(index, t)
            record = cell(index)
            if event.get("workload"):
                record["workload"] = event["workload"]
        elif ev == ATTEMPT_START:
            worker_pids.add(event.get("pid"))
            start_t[(index, int(event.get("attempt", 1)))] = t
            cell(index)["attempts"] += 1
            if index in dispatch_t and int(event.get("attempt", 1)) == 1:
                phases["queue"] += max(0.0, t - dispatch_t[index])
        elif ev == ATTEMPT_END:
            worker_pids.add(event.get("pid"))
            wall = float(event.get("wall_s", 0.0))
            if event.get("ok", True):
                phases["simulate"] += wall
                end_t[index] = t
            else:
                phases["retry_waste"] += wall
        elif ev == COLLECT:
            record = cell(index)
            record["workload"] = event.get("workload", record["workload"])
            record["wall_s"] = float(event.get("wall_s", 0.0))
            result_bytes += int(event.get("result_bytes", 0))
            pickle_bytes += int(event.get("pickle_bytes", 0))
            if index in end_t:
                phases["collect"] += max(0.0, t - end_t[index])
            if index in dispatch_t:
                intervals.append((dispatch_t[index], t))
        elif ev == RETRY:
            retries += 1
            phases["retry_wait"] += float(event.get("wait_s", 0.0))
        elif ev in (TIMEOUT, CRASH):
            # The attempt died without spooling an attempt_end; the
            # parent measured how long it was allowed to run.
            phases["retry_waste"] += float(event.get("wall_s", 0.0))
        elif ev == QUARANTINE:
            record = cell(index)
            record["outcome"] = "quarantined"
            record["workload"] = event.get("workload", record["workload"])
            quarantined.append(
                {"cell": index, "workload": event.get("workload"),
                 "attempts": event.get("attempts")}
            )
            if index in dispatch_t:
                intervals.append((dispatch_t[index], t))
        elif ev == PROFILE:
            spool = event.get("spool")
            if spool:
                profiles.append(spool)

    wall_s = None
    coverage = None
    if begin is not None and end is not None:
        wall_s = max(0.0, float(end["t"]) - float(begin["t"]))
        coverage = _union_length(intervals, float(begin["t"]), float(end["t"]))
        coverage = (coverage / wall_s) if wall_s > 0 else 1.0

    looked_up = cache_hits + cache_misses
    slowest = sorted(
        (record for record in cells.values() if not record["cached"]),
        key=lambda record: -record["wall_s"],
    )
    accounted = sum(phases.values())
    executed = sum(
        1
        for record in cells.values()
        if not record["cached"] and record["outcome"] == "executed"
    )
    return {
        "schema": REPORT_SCHEMA,
        "cells": int(begin.get("cells", len(cells))) if begin else len(cells),
        "jobs": int(begin.get("jobs", 1)) if begin else 1,
        "executed": executed,
        "wall_s": wall_s,
        "coverage": coverage,
        "phases": phases,
        "accounted_s": accounted,
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": (cache_hits / looked_up) if looked_up else None,
        },
        "retries": retries,
        "quarantined": quarantined,
        "transport": {
            "result_bytes": result_bytes,
            "pickle_bytes": pickle_bytes,
            "saved_bytes": max(0, pickle_bytes - result_bytes),
        },
        "waste_s": phases["retry_waste"] + phases["retry_wait"],
        "workers": sorted(pid for pid in worker_pids if pid is not None),
        "slowest_cells": [
            {
                "cell": record["index"],
                "workload": record["workload"],
                "wall_s": record["wall_s"],
                "attempts": record["attempts"],
                "outcome": record["outcome"],
            }
            for record in slowest[: max(0, top)]
        ],
        "profiles": profiles,
    }


def _union_length(
    intervals: Sequence[Tuple[float, float]], lo: float, hi: float
) -> float:
    """Total length of the union of ``intervals`` clamped to [lo, hi]."""
    clamped = sorted(
        (max(lo, a), min(hi, b)) for a, b in intervals if min(hi, b) > max(lo, a)
    )
    total = 0.0
    cursor = lo
    for a, b in clamped:
        if b <= cursor:
            continue
        total += b - max(a, cursor)
        cursor = b
    return total
