"""Logging setup separating machine output from human narration.

Two conventions, enforced repo-wide through this module:

* **stdout** carries primary output — human-readable reports via
  ``out()`` (suppressed by ``--quiet``) and machine-readable JSON via
  plain ``print`` (never suppressed, never interleaved with
  narration).
* **stderr** carries narration — progress, cache statistics, notices
  — via ``info()``/``debug()``/``warn()`` on the ``repro`` logger.

Handlers resolve ``sys.stdout``/``sys.stderr`` at *emit* time rather
than capturing the stream objects at setup, so pytest's capsys and
shell redirection both see the output regardless of when ``setup()``
ran. ``BrokenPipeError`` is re-raised instead of swallowed by
``logging``'s default error handling, because the CLI handles
``repro ... | head`` by catching it at top level.
"""

from __future__ import annotations

import logging
import sys

OUT_LOGGER = "repro.out"
DIAG_LOGGER = "repro"


class _StreamProxy(logging.Handler):
    """Handler writing to sys.<stream_name> looked up per record."""

    def __init__(self, stream_name: str) -> None:
        super().__init__()
        self._stream_name = stream_name

    def emit(self, record: logging.LogRecord) -> None:
        try:
            stream = getattr(sys, self._stream_name)
            stream.write(self.format(record) + "\n")
        except BrokenPipeError:
            raise
        except Exception:  # pragma: no cover - logging's own convention
            self.handleError(record)


def setup(verbosity: int = 0) -> None:
    """(Re)configure the repro loggers.

    verbosity < 0  — quiet: human reports off, narration warnings only
    verbosity == 0 — default: reports on, narration on
    verbosity >= 1 — verbose: debug narration on
    """
    out = logging.getLogger(OUT_LOGGER)
    diag = logging.getLogger(DIAG_LOGGER)
    for logger, stream in ((out, "stdout"), (diag, "stderr")):
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        handler = _StreamProxy(stream)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    # repro.out is a child of repro in logging's hierarchy; its own
    # handler plus propagate=False keeps the two streams independent.
    if verbosity < 0:
        out.setLevel(logging.ERROR)
        diag.setLevel(logging.WARNING)
    elif verbosity == 0:
        out.setLevel(logging.INFO)
        diag.setLevel(logging.INFO)
    else:
        out.setLevel(logging.DEBUG)
        diag.setLevel(logging.DEBUG)


def _ensure_setup() -> None:
    if not logging.getLogger(OUT_LOGGER).handlers:
        setup(0)


def out(message: str = "") -> None:
    """Primary human-readable output (stdout; silenced by --quiet)."""
    _ensure_setup()
    logging.getLogger(OUT_LOGGER).info(message)


def info(message: str) -> None:
    """Narration (stderr)."""
    _ensure_setup()
    logging.getLogger(DIAG_LOGGER).info(message)


def debug(message: str) -> None:
    """Verbose-only narration (stderr; needs -v)."""
    _ensure_setup()
    logging.getLogger(DIAG_LOGGER).debug(message)


def warn(message: str) -> None:
    """Warnings (stderr; survives --quiet)."""
    _ensure_setup()
    logging.getLogger(DIAG_LOGGER).warning(message)
