"""Counters, gauges and histograms with Prometheus text rendering.

A ``MetricsRegistry`` aggregates alongside the trace ring buffer: the
trace answers "what happened when", the registry answers "how much in
total" without being subject to ring-buffer truncation. Metrics are
keyed by (name, sorted label set); the ``counter``/``gauge``/
``histogram`` accessors get-or-create, so instrumentation sites never
need registration boilerplate.

Rendering follows the Prometheus text exposition format closely
enough for standard scrapers and for stable golden tests: families
are sorted by name, samples by label value, histogram buckets are
cumulative with a ``+Inf`` terminal bucket plus ``_sum``/``_count``.

Thread safety: a registry and every metric it creates share one
re-entrant lock, so worker threads incrementing counters while a
``/metrics`` scrape renders (the ``repro serve`` daemon does exactly
this) can never observe torn state — a histogram whose ``_count``
disagrees with its ``+Inf`` bucket, or a counter incremented between
two samples of the same render. Mutations are short critical sections;
a render holds the lock for the whole snapshot.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, str], ...]

#: Stable counter names for the fault-tolerant sweep machinery; tests,
#: dashboards and the chaos-smoke CI job key off these strings, so they
#: are defined once here rather than inline at each increment site.
SWEEP_RETRIES_TOTAL = "repro_sweep_retries_total"
SWEEP_TIMEOUTS_TOTAL = "repro_sweep_timeouts_total"
SWEEP_WORKER_CRASHES_TOTAL = "repro_sweep_worker_crashes_total"
SWEEP_QUARANTINED_CELLS_TOTAL = "repro_sweep_quarantined_cells_total"
SNAPSHOT_CHECKPOINTS_TOTAL = "repro_snapshot_checkpoints_total"

#: Default histogram bucket upper bounds. Chosen to resolve both GC
#: pauses in milliseconds (sub-ms nursery pauses through multi-second
#: full-heap pathologies) and free-run lengths in lines (1..128).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
)


def _fmt(value: float) -> str:
    """Prometheus sample formatting: integral floats without the dot."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(labels: LabelItems, extra: Optional[Tuple[str, str]] = None) -> str:
    items = list(labels)
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    body = ",".join(f'{key}="{val}"' for key, val in items)
    return "{" + body + "}"


class Counter:
    """Monotonically-increasing total."""

    __slots__ = ("name", "help", "labels", "value", "_lock")

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: LabelItems,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            return [(self.name + _label_str(self.labels), self.value)]


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "value", "_lock")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: LabelItems,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self.value = 0.0
        self._lock = lock if lock is not None else threading.RLock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount

    def samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            return [(self.name + _label_str(self.labels), self.value)]


class Histogram:
    """Fixed-bucket histogram with sum and count."""

    __slots__ = (
        "name", "help", "labels", "bounds", "bucket_counts", "sum", "count",
        "_lock",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labels: LabelItems,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        lock: Optional[threading.RLock] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = lock if lock is not None else threading.RLock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    def percentile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (for reports).

        Returns the upper bound of the bucket containing the q-th
        observation. ``q <= 0`` is clamped to 0.0 (there is no lower
        bound to report, and the first bucket's upper bound would
        overstate the minimum). When the target observation landed in
        the overflow bucket, returns ``inf``: the histogram genuinely
        does not know how large those observations were, and reporting
        the largest finite bound would silently understate the tail.
        """
        with self._lock:
            if self.count == 0 or q <= 0.0:
                return 0.0
            target = min(q, 1.0) * self.count
            running = 0
            for i, bound in enumerate(self.bounds):
                running += self.bucket_counts[i]
                if running >= target:
                    return bound
            return float("inf")

    def samples(self) -> List[Tuple[str, float]]:
        with self._lock:
            out: List[Tuple[str, float]] = []
            cumulative = 0
            for i, bound in enumerate(self.bounds):
                cumulative += self.bucket_counts[i]
                out.append(
                    (
                        self.name + "_bucket" + _label_str(self.labels, ("le", _fmt(bound))),
                        float(cumulative),
                    )
                )
            out.append(
                (
                    self.name + "_bucket" + _label_str(self.labels, ("le", "+Inf")),
                    float(self.count),
                )
            )
            out.append((self.name + "_sum" + _label_str(self.labels), self.sum))
            out.append((self.name + "_count" + _label_str(self.labels), float(self.count)))
            return out


class MetricsRegistry:
    """Get-or-create registry over all three metric kinds.

    The registry and every metric it creates share one re-entrant
    lock: get-or-create races can't register a metric twice, and a
    render sees a consistent snapshot of all values even while worker
    threads keep incrementing.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}
        self._lock = threading.RLock()

    def _get(self, cls, name: str, help_text: str, labels: Dict[str, str], **kwargs):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help_text, key[1], lock=self._lock, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help_text, labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(Histogram, name, help_text, labels, buckets=buckets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self) -> Iterable[Any]:
        with self._lock:
            return iter(list(self._metrics.values()))

    def families(self) -> List[Tuple[str, List[Any]]]:
        """Metrics grouped by family name, deterministically sorted."""
        with self._lock:
            grouped: Dict[str, List[Any]] = {}
            for (name, _labels), metric in sorted(self._metrics.items()):
                grouped.setdefault(name, []).append(metric)
            return sorted(grouped.items())

    def render_prometheus(self) -> str:
        """Prometheus text exposition of every registered metric.

        The whole render happens under the registry lock (re-entrant,
        shared with every metric), so a scrape is one consistent
        snapshot even while worker threads increment concurrently.
        """
        with self._lock:
            lines: List[str] = []
            for name, metrics in self.families():
                first = metrics[0]
                if first.help:
                    lines.append(f"# HELP {name} {first.help}")
                lines.append(f"# TYPE {name} {first.kind}")
                for metric in metrics:
                    for sample_name, value in metric.samples():
                        lines.append(f"{sample_name} {_fmt(value)}")
            return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (used by tests and the JSONL exporter)."""
        with self._lock:
            out: Dict[str, Any] = {}
            for name, metrics in self.families():
                entries = []
                for metric in metrics:
                    entry: Dict[str, Any] = {
                        "labels": dict(metric.labels),
                        "kind": metric.kind,
                    }
                    if metric.kind == "histogram":
                        entry["sum"] = metric.sum
                        entry["count"] = metric.count
                        entry["buckets"] = {
                            _fmt(bound): count
                            for bound, count in zip(metric.bounds, metric.bucket_counts)
                        }
                        entry["buckets"]["+Inf"] = metric.bucket_counts[-1]
                    else:
                        entry["value"] = metric.value
                    entries.append(entry)
                out[name] = entries
            return out
