"""Opt-in worker profiling: per-cell cProfile spools, merged reports.

``sweep --profile-cells`` answers the question the array-of-lines
roadmap item starts from: *which Python frames burn the wall time the
ledger attributes to ``simulate``?* Each worker attempt runs its cell
under :mod:`cProfile` and dumps a standard ``pstats`` file into the
ledger's spool directory; the worker then records a ``profile`` event
so ``repro report`` can find and merge every spool into one top-N
cumulative-time table — the measure-then-optimize discipline the
paper applies to GC overheads, pointed at the harness itself.

Profiling is observational: the simulated results are untouched (the
profiler only slows the worker down), and the CI report-smoke job
asserts the artifact's ``results`` section is bit-identical with
profiling on or off.
"""

from __future__ import annotations

import cProfile
import os
import pstats
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Filename pattern for one attempt's spool (kept parseable: the
#: report's table is keyed on merged frames, not on files).
SPOOL_NAME = "cell-{index}-attempt-{attempt}.pstats"


def spool_path(directory: str, index: int, attempt: int) -> str:
    return os.path.join(directory, SPOOL_NAME.format(index=index, attempt=attempt))


def profile_call(
    out_path: str, fn: Callable[..., Any], *args: Any, **kwargs: Any
) -> Any:
    """Run ``fn`` under cProfile, dump stats to ``out_path``, return result.

    The stats are dumped even when ``fn`` raises, so a failing attempt
    still leaves its profile behind for the waste analysis.
    """
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return fn(*args, **kwargs)
    finally:
        profiler.disable()
        profiler.dump_stats(out_path)


def merge_profiles(
    paths: Sequence[str], top: int = 15
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Merge pstats spools into a top-N cumulative hotspot table.

    Returns ``(rows, problems)``: rows sorted by cumulative time
    descending, each ``{"site", "calls", "tottime_s", "cumtime_s"}``;
    unreadable spools are reported in ``problems`` and skipped rather
    than failing the whole report.
    """
    stats: Optional[pstats.Stats] = None
    problems: List[str] = []
    for path in paths:
        try:
            if stats is None:
                stats = pstats.Stats(path)
            else:
                stats.add(path)
        except Exception as exc:
            problems.append(f"{path}: unreadable profile ({exc})")
    if stats is None:
        return [], problems
    rows: List[Dict[str, Any]] = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        rows.append(
            {
                "site": _format_site(func),
                "calls": nc,
                "tottime_s": tt,
                "cumtime_s": ct,
            }
        )
    rows.sort(key=lambda row: (-row["cumtime_s"], row["site"]))
    return rows[: max(0, top)], problems


def _format_site(func: Tuple[str, int, str]) -> str:
    filename, line, name = func
    if filename == "~":
        return name  # builtins render as "<built-in method ...>"
    return f"{_shorten(filename)}:{line}({name})"


def _shorten(filename: str) -> str:
    """Trim absolute paths down to the package-relative tail."""
    parts = filename.replace(os.sep, "/").split("/")
    for anchor in ("repro", "site-packages"):
        if anchor in parts[:-1]:
            keep = parts[parts.index(anchor):]
            return "/".join(keep)
    return "/".join(parts[-2:]) if len(parts) > 1 else filename


def render_hotspots(rows: Sequence[Dict[str, Any]]) -> List[str]:
    """Human table for ``repro report`` (one string per line)."""
    lines = [f"{'cumulative(s)':>13s} {'tottime(s)':>10s} {'calls':>9s}  site"]
    for row in rows:
        lines.append(
            f"{row['cumtime_s']:13.3f} {row['tottime_s']:10.3f} "
            f"{row['calls']:9d}  {row['site']}"
        )
    return lines
