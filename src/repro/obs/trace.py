"""Structured tracing over simulated time.

The simulator has no wall clock worth recording: all interesting time
is *simulated* time, derived from the cost model as a linear function
of the monotonically-increasing ``GcStats`` counters. The tracer
therefore takes a ``clock`` callable — the VM binds it to
``cost_model.total_time(stats)`` — and stamps every event with the
simulated-time value at the moment it is recorded. Because the stats
counters only ever grow, the clock is monotone non-decreasing and the
resulting event stream is a well-formed timeline.

Two independent mechanisms live here:

* an **event ring buffer** of bounded capacity. When full, the oldest
  events are evicted and ``dropped`` counts the loss; nothing else
  degrades. Exporters surface the truncation so a half-trace is never
  mistaken for a whole one.
* **phase accounting**: a stack of phase labels ("mutator", "gc.mark",
  ...) where every clock delta is charged to the phase on top of the
  stack at the time it elapsed. The per-phase totals telescope — their
  sum is exactly the clock's final reading — which is what lets the
  ``time-breakdown`` invariant assert that the breakdown sums to
  ``RunResult.time_units``. Phase accounting is deliberately *not*
  stored in the ring buffer, so buffer overflow never corrupts the
  breakdown.

Instrumented modules hold ``self.tracer = None`` by default and guard
every hook with ``if tr is not None``; a disabled tracer costs one
attribute read at event sites and nothing at all on the allocation
fast path.
"""

from __future__ import annotations

from contextlib import contextmanager, nullcontext
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

#: Event categories — one per layer of the simulated stack.
HARDWARE = "hardware"
OS = "os"
RUNTIME = "runtime"
CATEGORIES = (HARDWARE, OS, RUNTIME)

#: The phase charged while no other phase is active.
ROOT_PHASE = "mutator"

DEFAULT_CAPACITY = 65536


class TraceEvent:
    """One typed event: instant ("i") or span begin/end ("B"/"E")."""

    __slots__ = ("name", "cat", "ph", "ts", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
        }
        if self.args is not None:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.name!r}, {self.cat!r}, {self.ph!r}, ts={self.ts})"


class Tracer:
    """Bounded-ring event recorder with telescoping phase accounting."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        from .metrics import MetricsRegistry  # local: avoid import cycle risk

        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0
        self.recorded = 0
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.metrics: "MetricsRegistry" = (
            metrics if metrics is not None else MetricsRegistry()
        )
        # Phase accounting. All time belongs to ROOT_PHASE until a
        # phase is pushed; _last_clock is the reading up to which time
        # has already been charged.
        self._phase_stack: List[str] = [ROOT_PHASE]
        self._phase_totals: Dict[str, float] = {ROOT_PHASE: 0.0}
        self._last_clock = self._clock()

    # -- clock ----------------------------------------------------------
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Attach the simulated clock; resets the accounting origin.

        The VM calls this at construction time, before any simulated
        cost has accrued, so no time is lost to the rebind.
        """
        self._clock = clock
        self._last_clock = clock()

    def clock(self) -> float:
        """Current simulated time, in cost-model units."""
        return self._clock()

    # -- events ---------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self.recorded += 1

    def instant(
        self, name: str, cat: str = RUNTIME, args: Optional[Dict[str, Any]] = None
    ) -> None:
        self._record(TraceEvent(name, cat, "i", self._clock(), args))

    def begin(
        self, name: str, cat: str = RUNTIME, args: Optional[Dict[str, Any]] = None
    ) -> None:
        self._record(TraceEvent(name, cat, "B", self._clock(), args))

    def end(self, name: str, cat: str = RUNTIME) -> None:
        self._record(TraceEvent(name, cat, "E", self._clock(), None))

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = RUNTIME,
        phase: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Iterator["Tracer"]:
        """A nested interval; optionally charges time to ``phase``."""
        self.begin(name, cat, args)
        if phase is not None:
            self.push_phase(phase)
        try:
            yield self
        finally:
            if phase is not None:
                self.pop_phase()
            self.end(name, cat)

    def events(self) -> List[TraceEvent]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- phase accounting -----------------------------------------------
    def _charge_elapsed(self) -> None:
        now = self._clock()
        top = self._phase_stack[-1]
        self._phase_totals[top] = self._phase_totals.get(top, 0.0) + (
            now - self._last_clock
        )
        self._last_clock = now

    def push_phase(self, phase: str) -> None:
        self._charge_elapsed()
        self._phase_stack.append(phase)

    def pop_phase(self) -> None:
        if len(self._phase_stack) <= 1:
            raise RuntimeError("cannot pop the root phase")
        self._charge_elapsed()
        self._phase_stack.pop()

    @property
    def current_phase(self) -> str:
        return self._phase_stack[-1]

    def phase_breakdown(self) -> Dict[str, float]:
        """Per-phase simulated-time totals; safe to call mid-run.

        The returned totals include the time elapsed since the last
        phase switch (charged to the current phase), so their sum
        always equals the clock's current reading. The tracer's own
        state is not advanced.
        """
        totals = dict(self._phase_totals)
        top = self._phase_stack[-1]
        totals[top] = totals.get(top, 0.0) + (self._clock() - self._last_clock)
        return totals


def maybe_span(
    tracer: Optional[Tracer],
    name: str,
    cat: str = RUNTIME,
    phase: Optional[str] = None,
    args: Optional[Dict[str, Any]] = None,
):
    """``tracer.span(...)`` or a no-op context when tracing is off.

    Used at GC-frequency call sites where an inline guard would bloat
    the control flow; allocation fast paths use explicit guards
    instead.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, cat, phase=phase, args=args)
