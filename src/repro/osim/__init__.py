"""OS substrate: page pools, failure table, syscalls, swap.

Named ``osim`` ("OS simulation") rather than ``os`` to avoid shadowing
the standard library.
"""

from .failure_table import FailureTable
from .memory_manager import FailureEvent, OsMemoryManager
from .page import PageKind, PhysicalPage
from .pools import PagePools
from .swap import SwapSlot, SwapStats, Swapper

__all__ = [
    "FailureTable",
    "FailureEvent",
    "OsMemoryManager",
    "PageKind",
    "PhysicalPage",
    "PagePools",
    "SwapSlot",
    "SwapStats",
    "Swapper",
]
