"""The OS failure table (paper section 3.2.1).

The OS keeps one 64-bit bitmap per PCM page (for 4 KB pages of 64 B
lines) in a DRAM-resident table — about 1.6 % of PCM capacity
uncompressed. On clean shutdown the table is persisted; after an
abnormal shutdown it can be rebuilt by scanning the memory module.

Queries are cached and bit-twiddled rather than looped: the decoded
offset set per page is memoized until that page's bitmap changes, the
module-wide failed-line count is maintained incrementally on every
``record_failure``, and run counting for the compression estimate uses
a transition-popcount identity instead of walking all 64 bit positions.
``REPRO_KERNELS=reference`` (:mod:`repro.heap.line_table`) restores the
original per-bit loops for bit-identity comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from ..hardware.geometry import Geometry
from ..heap import line_table


def _popcount(bits: int) -> int:
    # int.bit_count() needs 3.10; CI still runs 3.9.
    return bin(bits).count("1")


class FailureTable:
    """Per-page failure bitmaps for a PCM module of ``n_pages`` pages."""

    def __init__(self, n_pages: int, geometry: Geometry) -> None:
        if n_pages < 0:
            raise ValueError("n_pages must be >= 0")
        self.n_pages = n_pages
        self.geometry = geometry
        self._bitmaps: Dict[int, int] = {}
        self._offsets_cache: Dict[int, FrozenSet[int]] = {}
        self._failed_count = 0
        self._imperfect_cache: List[int] = []
        self._imperfect_cache_valid = True

    # ------------------------------------------------------------------
    def record_failure(self, page_index: int, line_offset: int) -> bool:
        """Mark a line failed; returns True if the page was perfect before."""
        self._check(page_index, line_offset)
        old = self._bitmaps.get(page_index, 0)
        new = old | (1 << line_offset)
        if new != old:
            self._bitmaps[page_index] = new
            self._offsets_cache.pop(page_index, None)
            self._failed_count += 1
            if old == 0:
                self._imperfect_cache_valid = False
        return old == 0

    def record_global_line(self, global_line: int) -> bool:
        """Record a failure given a module-wide line index."""
        per_page = self.geometry.lines_per_page
        return self.record_failure(global_line // per_page, global_line % per_page)

    def bitmap(self, page_index: int) -> int:
        self._check(page_index, 0)
        return self._bitmaps.get(page_index, 0)

    def failed_offsets(self, page_index: int) -> FrozenSet[int]:
        """Decoded failed-line offsets of a page (memoized per bitmap).

        Fast kernel: extract set bits directly (``bitmap & -bitmap``
        isolates the lowest one), so decoding costs one step per failure
        instead of one per bit position; the frozenset is cached until
        the page's bitmap changes. Callers only read the result.
        """
        bitmap = self.bitmap(page_index)
        if line_table.use_reference_kernels():
            return frozenset(
                i for i in range(self.geometry.lines_per_page) if bitmap >> i & 1
            )
        cached = self._offsets_cache.get(page_index)
        if cached is None:
            offsets = []
            bits = bitmap
            while bits:
                lsb = bits & -bits
                offsets.append(lsb.bit_length() - 1)
                bits ^= lsb
            cached = frozenset(offsets)
            self._offsets_cache[page_index] = cached
        return cached

    def is_perfect(self, page_index: int) -> bool:
        return self.bitmap(page_index) == 0

    def imperfect_pages(self) -> List[int]:
        """Sorted imperfect page indices (cached until a page degrades).

        Pages never un-fail, so the sorted list only changes when a
        perfect page records its first failure; the fast kernel resorts
        only then instead of on every query. Callers get a copy either
        way — mutating the result cannot poison the cache.
        """
        if line_table.use_reference_kernels():
            return sorted(page for page, bits in self._bitmaps.items() if bits)
        if not self._imperfect_cache_valid:
            self._imperfect_cache = sorted(
                page for page, bits in self._bitmaps.items() if bits
            )
            self._imperfect_cache_valid = True
        return list(self._imperfect_cache)

    def failed_line_count(self) -> int:
        if line_table.use_reference_kernels():
            return sum(_popcount(bits) for bits in self._bitmaps.values())
        return self._failed_count

    # ------------------------------------------------------------------
    # Persistence / rebuild (section 3.2.1)
    # ------------------------------------------------------------------
    def save(self) -> Dict[int, int]:
        """Serializable snapshot for persistent storage at shutdown."""
        return {page: bits for page, bits in self._bitmaps.items() if bits}

    @classmethod
    def restore(
        cls, snapshot: Dict[int, int], n_pages: int, geometry: Geometry
    ) -> "FailureTable":
        table = cls(n_pages, geometry)
        for page, bits in snapshot.items():
            table._check(page, 0)
            table._bitmaps[page] = bits
            table._failed_count += _popcount(bits)
        table._imperfect_cache_valid = False
        return table

    @classmethod
    def rebuild_from_lines(
        cls, failed_lines: Iterable[int], n_pages: int, geometry: Geometry
    ) -> "FailureTable":
        """Eager rebuild by scanning the module (post-crash recovery)."""
        table = cls(n_pages, geometry)
        for line in failed_lines:
            table.record_global_line(line)
        return table

    # ------------------------------------------------------------------
    def storage_overhead_bytes(self) -> int:
        """DRAM bytes for the uncompressed table (one bitmap per page)."""
        return self.n_pages * self.geometry.lines_per_page // 8

    def compressed_size_bytes(self) -> int:
        """Run-length-encoded table size (paper: "run-length encoding
        or other simple encoding techniques may provide high compression
        rates ... especially when the system is new").

        Encoding: a sorted stream of (page delta, bitmap payload) where
        perfect pages are skipped entirely; each imperfect page costs a
        2-byte page delta plus an RLE bitmap of its 64 line bits (one
        byte per run, up to 8 bytes, whichever is smaller than raw).

        Fast kernel: the run count of the bit sequence b0..b(L-1) is one
        plus its number of adjacent transitions, and each transition is
        a set bit of ``bitmap ^ (bitmap >> 1)`` below position L-1 — so
        a popcount replaces the per-bit scan.
        """
        per_page = self.geometry.lines_per_page
        reference = line_table.use_reference_kernels()
        transition_mask = (1 << (per_page - 1)) - 1
        total = 0
        for page in self.imperfect_pages():
            bitmap = self._bitmaps[page]
            if reference:
                runs = 0
                previous = None
                for i in range(per_page):
                    bit = bitmap >> i & 1
                    if bit != previous:
                        runs += 1
                        previous = bit
            else:
                runs = 1 + _popcount((bitmap ^ (bitmap >> 1)) & transition_mask)
            total += 2 + min(runs, per_page // 8)
        return total

    def compression_ratio(self) -> float:
        """Uncompressed / compressed size; large when the system is new."""
        compressed = self.compressed_size_bytes()
        if compressed == 0:
            return float("inf")
        return self.storage_overhead_bytes() / compressed

    def storage_overhead_fraction(self) -> float:
        """Table size relative to the PCM it describes (paper: ~1.6 %)."""
        pcm_bytes = self.n_pages * self.geometry.page
        if pcm_bytes == 0:
            return 0.0
        return self.storage_overhead_bytes() / pcm_bytes

    def _check(self, page_index: int, line_offset: int) -> None:
        if not 0 <= page_index < self.n_pages:
            raise IndexError(f"page {page_index} outside table of {self.n_pages}")
        if not 0 <= line_offset < self.geometry.lines_per_page:
            raise IndexError(f"line offset {line_offset} outside page")
