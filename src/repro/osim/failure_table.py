"""The OS failure table (paper section 3.2.1).

The OS keeps one 64-bit bitmap per PCM page (for 4 KB pages of 64 B
lines) in a DRAM-resident table — about 1.6 % of PCM capacity
uncompressed. On clean shutdown the table is persisted; after an
abnormal shutdown it can be rebuilt by scanning the memory module.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from ..hardware.geometry import Geometry


class FailureTable:
    """Per-page failure bitmaps for a PCM module of ``n_pages`` pages."""

    def __init__(self, n_pages: int, geometry: Geometry) -> None:
        if n_pages < 0:
            raise ValueError("n_pages must be >= 0")
        self.n_pages = n_pages
        self.geometry = geometry
        self._bitmaps: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def record_failure(self, page_index: int, line_offset: int) -> bool:
        """Mark a line failed; returns True if the page was perfect before."""
        self._check(page_index, line_offset)
        old = self._bitmaps.get(page_index, 0)
        self._bitmaps[page_index] = old | (1 << line_offset)
        return old == 0

    def record_global_line(self, global_line: int) -> bool:
        """Record a failure given a module-wide line index."""
        per_page = self.geometry.lines_per_page
        return self.record_failure(global_line // per_page, global_line % per_page)

    def bitmap(self, page_index: int) -> int:
        self._check(page_index, 0)
        return self._bitmaps.get(page_index, 0)

    def failed_offsets(self, page_index: int) -> Set[int]:
        bitmap = self.bitmap(page_index)
        return {i for i in range(self.geometry.lines_per_page) if bitmap >> i & 1}

    def is_perfect(self, page_index: int) -> bool:
        return self.bitmap(page_index) == 0

    def imperfect_pages(self) -> List[int]:
        return sorted(page for page, bits in self._bitmaps.items() if bits)

    def failed_line_count(self) -> int:
        return sum(bin(bits).count("1") for bits in self._bitmaps.values())

    # ------------------------------------------------------------------
    # Persistence / rebuild (section 3.2.1)
    # ------------------------------------------------------------------
    def save(self) -> Dict[int, int]:
        """Serializable snapshot for persistent storage at shutdown."""
        return {page: bits for page, bits in self._bitmaps.items() if bits}

    @classmethod
    def restore(
        cls, snapshot: Dict[int, int], n_pages: int, geometry: Geometry
    ) -> "FailureTable":
        table = cls(n_pages, geometry)
        for page, bits in snapshot.items():
            table._check(page, 0)
            table._bitmaps[page] = bits
        return table

    @classmethod
    def rebuild_from_lines(
        cls, failed_lines: Iterable[int], n_pages: int, geometry: Geometry
    ) -> "FailureTable":
        """Eager rebuild by scanning the module (post-crash recovery)."""
        table = cls(n_pages, geometry)
        for line in failed_lines:
            table.record_global_line(line)
        return table

    # ------------------------------------------------------------------
    def storage_overhead_bytes(self) -> int:
        """DRAM bytes for the uncompressed table (one bitmap per page)."""
        return self.n_pages * self.geometry.lines_per_page // 8

    def compressed_size_bytes(self) -> int:
        """Run-length-encoded table size (paper: "run-length encoding
        or other simple encoding techniques may provide high compression
        rates ... especially when the system is new").

        Encoding: a sorted stream of (page delta, bitmap payload) where
        perfect pages are skipped entirely; each imperfect page costs a
        2-byte page delta plus an RLE bitmap of its 64 line bits (one
        byte per run, up to 8 bytes, whichever is smaller than raw).
        """
        total = 0
        for page in self.imperfect_pages():
            bitmap = self._bitmaps[page]
            runs = 0
            previous = None
            for i in range(self.geometry.lines_per_page):
                bit = bitmap >> i & 1
                if bit != previous:
                    runs += 1
                    previous = bit
            total += 2 + min(runs, self.geometry.lines_per_page // 8)
        return total

    def compression_ratio(self) -> float:
        """Uncompressed / compressed size; large when the system is new."""
        compressed = self.compressed_size_bytes()
        if compressed == 0:
            return float("inf")
        return self.storage_overhead_bytes() / compressed

    def storage_overhead_fraction(self) -> float:
        """Table size relative to the PCM it describes (paper: ~1.6 %)."""
        pcm_bytes = self.n_pages * self.geometry.page
        if pcm_bytes == 0:
            return 0.0
        return self.storage_overhead_bytes() / pcm_bytes

    def _check(self, page_index: int, line_offset: int) -> None:
        if not 0 <= page_index < self.n_pages:
            raise IndexError(f"page {page_index} outside table of {self.n_pages}")
        if not 0 <= line_offset < self.geometry.lines_per_page:
            raise IndexError(f"line offset {line_offset} outside page")
