"""The failure-aware OS memory manager (paper sections 3.2.1-3.2.2).

Responsibilities:

* own the page pools and the DRAM-resident failure table;
* expose the system calls the paper adds — an ``mmap`` variant that
  returns imperfect pages and a ``map-failures`` call that reports their
  failure maps;
* service failure interrupts from the PCM module: read the failure
  buffer, find the owning mapping (reverse address translation), update
  the failure table and pools, and either up-call a registered
  failure-aware runtime or transparently relocate the page for
  failure-unaware processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence

from ..errors import ProtocolError
from ..hardware.failure_buffer import InterruptKind
from ..hardware.geometry import Geometry
from ..hardware.pcm import PcmModule
from ..heap import line_table
from .failure_table import FailureTable
from .page import PhysicalPage
from .pools import PagePools


@dataclass(frozen=True)
class FailureEvent:
    """One dynamic line failure, as delivered to a runtime handler."""

    page_index: int
    line_offset: int
    address: int
    data: object


FailureHandler = Callable[[Sequence[FailureEvent]], None]


class OsMemoryManager:
    """OS view of one PCM module plus a DRAM reserve."""

    def __init__(
        self,
        pcm: PcmModule,
        dram_pages: int = 64,
        geometry: Optional[Geometry] = None,
        pool_policy=None,
    ) -> None:
        self.geometry = geometry or pcm.geometry
        self.pcm = pcm
        self.n_pcm_pages = pcm.size_bytes // self.geometry.page
        self.pool_policy = pool_policy
        self.pools = PagePools(
            self.n_pcm_pages,
            dram_pages,
            supply_order=(
                pool_policy.supply_order if pool_policy is not None
                else "imperfect-first"
            ),
        )
        self.failure_table = FailureTable(self.n_pcm_pages, self.geometry)
        self._handler: Optional[FailureHandler] = None
        self._owners: Dict[int, str] = {}
        self.relocated_pages = 0
        self.upcalls = 0
        #: Optional observability hook; see :mod:`repro.obs.trace`.
        self.tracer = None
        # Wire the module's interrupts to this manager and absorb any
        # failures the module already knows about (an aged module).
        pcm._on_interrupt = self._on_interrupt
        self._absorb_static_failures()

    def __getstate__(self) -> dict:
        """Snapshot support: tables and pools persist, wiring does not.

        The failure handler is a bound method of the runtime layer;
        whoever restores the stack re-registers it (the VM does, in its
        own ``__setstate__``), keeping the paper's protocol order —
        handler first, imperfect memory second — intact on resume.
        """
        state = self.__dict__.copy()
        state["tracer"] = None
        state["_handler"] = None
        return state

    # ------------------------------------------------------------------
    def _absorb_static_failures(self) -> None:
        lines = sorted(self.pcm.failed_logical_lines())
        # Bulk kernel: absorption runs at construction, before any
        # tracer is attached, so the per-line path's tracer hooks have
        # nothing to emit and the only observable effect is the final
        # table/pool state — which the bulk path reproduces exactly
        # (same per-line recording, one batched pool rebuild).
        if lines and self.tracer is None and not line_table.use_reference_kernels():
            self._absorb_static_failures_bulk(lines)
        else:
            for line in lines:
                self._record_line_failure(line)
        self.pcm.take_pending_failures()

    def _absorb_static_failures_bulk(self, lines: List[int]) -> None:
        per_page = self.geometry.lines_per_page
        record = self.failure_table.record_failure
        page_of = self.pools.page
        degraded: List[int] = []
        for global_line in lines:
            page_index, offset = divmod(global_line, per_page)
            if record(page_index, offset):
                degraded.append(page_index)
            page_of(page_index).record_failure(offset)
        self.pools.note_pages_degraded(degraded)

    def _record_line_failure(self, global_line: int) -> FailureEvent:
        per_page = self.geometry.lines_per_page
        page_index, offset = divmod(global_line, per_page)
        first_failure = self.failure_table.record_failure(page_index, offset)
        page = self.pools.page(page_index)
        page.record_failure(offset)
        if first_failure:
            self.pools.note_page_degraded(page_index)
            tr = self.tracer
            if tr is not None:
                tr.instant(
                    "os.page_degraded",
                    cat="os",
                    args={"page": page_index, "line_offset": offset},
                )
                tr.metrics.counter(
                    "repro_os_pages_degraded_total",
                    "PCM pages that saw their first line failure",
                ).inc()
                self.pools.update_gauges(tr.metrics)
        address = self.geometry.line_address(global_line)
        return FailureEvent(page_index, offset, address, None)

    # ------------------------------------------------------------------
    # System calls (section 3.2.1)
    # ------------------------------------------------------------------
    def mmap(self, n_pages: int, owner: str = "process") -> List[PhysicalPage]:
        """Failure-unaware mapping: perfect pages only."""
        pages = [self.pools.take_perfect(allow_dram=True) for _ in range(n_pages)]
        for page in pages:
            self._owners[page.index] = owner
        self._trace_grant("os.mmap", "perfect", n_pages, owner)
        return pages

    def mmap_imperfect(self, n_pages: int, owner: str = "runtime") -> List[PhysicalPage]:
        """Failure-aware mapping: any PCM pages, holes included.

        Returns exactly ``n_pages`` pages; the caller must consult
        :meth:`map_failures` to learn how much of the memory is usable
        and request more if it needs more working space.
        """
        if self._handler is None:
            raise ProtocolError(
                "a failure-aware runtime must register a failure handler "
                "before mapping imperfect memory (paper section 3.2.2)"
            )
        pages = [self.pools.take_any_pcm() for _ in range(n_pages)]
        for page in pages:
            self._owners[page.index] = owner
        self._trace_grant("os.mmap_imperfect", "imperfect", n_pages, owner)
        return pages

    def _trace_grant(self, name: str, kind: str, n_pages: int, owner: str) -> None:
        tr = self.tracer
        if tr is None:
            return
        tr.instant(name, cat="os", args={"pages": n_pages, "owner": owner})
        tr.metrics.counter(
            "repro_os_page_grants_total", "pages granted by mmap calls", kind=kind
        ).inc(n_pages)
        self.pools.update_gauges(tr.metrics)

    def map_failures(
        self, pages: Sequence[PhysicalPage]
    ) -> Dict[int, FrozenSet[int]]:
        """Failure map for a mapped region: page index -> failed offsets."""
        tr = self.tracer
        if tr is not None:
            tr.instant("os.map_failures", cat="os", args={"pages": len(pages)})
            tr.metrics.counter(
                "repro_os_map_failures_calls_total",
                "map-failures system calls serviced",
            ).inc()
        return {
            page.index: frozenset(self.failure_table.failed_offsets(page.index))
            for page in pages
        }

    def munmap(self, pages: Sequence[PhysicalPage]) -> None:
        for page in pages:
            self._owners.pop(page.index, None)
            self.pools.release(page.index)

    def register_failure_handler(self, handler: FailureHandler) -> None:
        self._handler = handler

    # ------------------------------------------------------------------
    # Dynamic failures (section 3.2.2)
    # ------------------------------------------------------------------
    def _on_interrupt(self, kind: InterruptKind) -> None:
        # In a real system the interrupt schedules the handler; in the
        # simulator we service synchronously, which also keeps the
        # failure buffer drained (no deadlock path).
        if kind is InterruptKind.WRITE_FAILURE:
            self.service_failures()

    def service_failures(self) -> List[FailureEvent]:
        """Drain pending failures: update tables, notify or relocate."""
        tr = self.tracer
        if tr is None:
            return self._service_failures()
        with tr.span("os.service_failures", cat="os"):
            events = self._service_failures()
        if events:
            tr.instant(
                "os.failures_serviced", cat="os", args={"events": len(events)}
            )
        return events

    def _service_failures(self) -> List[FailureEvent]:
        self._drain_rewrites_to_known_failures()
        events: List[FailureEvent] = []
        received_addresses: List[int] = []
        for reported, original in self.pcm.take_pending_failures():
            event = self._record_line_failure(reported)
            original_address = self.geometry.line_address(original)
            # The parked write lives under the *original* address (with
            # clustering the reported boundary line never saw the write).
            # Remember exactly which entries this drain received, so the
            # acknowledgement below releases those and only those.
            if original_address in self.pcm.failure_buffer:
                received_addresses.append(original_address)
            data = self.pcm.failure_buffer.forward(original_address)
            events.append(
                FailureEvent(event.page_index, event.line_offset, event.address, data)
            )
        if not events:
            return []
        runtime_events = [
            e for e in events if self._owners.get(e.page_index) == "runtime"
        ]
        other_events = [e for e in events if e not in runtime_events]
        for event in other_events:
            self._relocate_page(event)
        if runtime_events:
            if self._handler is None:
                raise ProtocolError("failure on runtime page with no handler")
            self.upcalls += 1
            tr = self.tracer
            if tr is not None:
                tr.metrics.counter(
                    "repro_os_upcalls_total", "failure upcalls into the runtime"
                ).inc()
                with tr.span(
                    "os.upcall",
                    cat="os",
                    phase="os.upcall",
                    args={"events": len(runtime_events)},
                ):
                    self._handler(runtime_events)
            else:
                self._handler(runtime_events)
        # The runtime has recovered the data; the OS acknowledges the
        # entries it received so the hardware can reuse the slots.
        # Acknowledgement is strict: releasing an address the buffer
        # never parked raises ProtocolError (the errors.py contract)
        # rather than silently masking a hardware/OS divergence.
        for address in received_addresses:
            self.pcm.failure_buffer.acknowledge(address)
        return events

    def _drain_rewrites_to_known_failures(self) -> None:
        """Clear buffer entries for writes that hit already-known failures.

        Between a line failing and the runtime evacuating its objects,
        the mutator may store to the line again; the module parks each
        store in the failure buffer. The OS recognizes the line as
        already handled (it is in the failure table) and releases the
        entry so the small buffer cannot silt up (section 3.1.1's
        deadlock-avoidance responsibility).
        """
        per_page = self.geometry.lines_per_page
        for entry in self.pcm.failure_buffer.pending():
            line = self.geometry.line_index(entry.address)
            page_index, offset = divmod(line, per_page)
            if page_index < self.n_pcm_pages and (
                self.failure_table.bitmap(page_index) >> offset & 1
            ):
                self.pcm.failure_buffer.acknowledge(entry.address)

    def _relocate_page(self, event: FailureEvent) -> None:
        """Failure-unaware handling: copy the whole page to a perfect one.

        This is the DRAM-era behaviour the paper improves on — it burns
        one perfect page per failed line when the page has no
        failure-aware owner.
        """
        self.pools.take_perfect(allow_dram=True)
        self.relocated_pages += 1
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "os.relocate_page", cat="os", args={"page": event.page_index}
            )
            tr.metrics.counter(
                "repro_os_page_relocations_total",
                "whole-page relocations for failure-unaware owners",
            ).inc()

    # ------------------------------------------------------------------
    def imperfect_fraction(self) -> float:
        """Fraction of PCM pages with at least one failed line."""
        return len(self.failure_table.imperfect_pages()) / max(1, self.n_pcm_pages)
