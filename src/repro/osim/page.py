"""Physical page descriptors used by the OS layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Set


class PageKind(Enum):
    """Which physical medium backs the page."""

    DRAM = auto()
    PCM = auto()


@dataclass
class PhysicalPage:
    """One physical page and its failure state.

    ``failed_offsets`` holds page-relative PCM line offsets (0..63 for
    the paper's 4 KB/64 B geometry). DRAM pages never fail.
    """

    index: int
    kind: PageKind = PageKind.PCM
    failed_offsets: Set[int] = field(default_factory=set)

    @property
    def is_perfect(self) -> bool:
        return not self.failed_offsets

    @property
    def failed_count(self) -> int:
        return len(self.failed_offsets)

    def record_failure(self, offset: int) -> None:
        if self.kind is PageKind.DRAM:
            raise ValueError("DRAM pages do not fail in this model")
        self.failed_offsets.add(offset)

    def compatible_destination_for(self, source: "PhysicalPage") -> bool:
        """Can data written around ``source``'s holes land on this page?

        True when this page's holes are a subset of the source's holes
        (paper section 3.2.3, option 2's cheap special case).
        """
        return self.failed_offsets <= source.failed_offsets

    def __repr__(self) -> str:
        state = "perfect" if self.is_perfect else f"{self.failed_count} failed lines"
        return f"PhysicalPage({self.index}, {self.kind.name}, {state})"
