"""OS page pools (paper section 3.2.1).

The OS manages DRAM, perfect PCM, and imperfect PCM pages in separate
pools. All PCM pages start perfect; the first failure on a page moves it
to the imperfect pool. Failure-unaware processes draw only from the
perfect (or DRAM) pools; failure-aware runtimes may draw imperfect pages
too, which grow ever more abundant as the system ages.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..errors import OutOfMemoryError, PerfectMemoryExhaustedError
from .page import PageKind, PhysicalPage


class PagePools:
    """Free-page pools plus the universe of page descriptors."""

    #: Valid ``supply_order`` spellings for :meth:`take_any_pcm`.
    SUPPLY_ORDERS = ("imperfect-first", "perfect-first")

    def __init__(
        self,
        n_pcm_pages: int,
        n_dram_pages: int = 0,
        supply_order: str = "imperfect-first",
    ) -> None:
        if n_pcm_pages < 0 or n_dram_pages < 0:
            raise ValueError("page counts must be >= 0")
        if supply_order not in self.SUPPLY_ORDERS:
            raise ValueError(
                f"unknown supply_order {supply_order!r}; "
                f"choose from {self.SUPPLY_ORDERS}"
            )
        self.supply_order = supply_order
        self.pages: Dict[int, PhysicalPage] = {}
        self._perfect: Deque[int] = deque()
        self._imperfect: Deque[int] = deque()
        self._dram: Deque[int] = deque()
        for index in range(n_pcm_pages):
            self.pages[index] = PhysicalPage(index, PageKind.PCM)
            self._perfect.append(index)
        for index in range(n_pcm_pages, n_pcm_pages + n_dram_pages):
            self.pages[index] = PhysicalPage(index, PageKind.DRAM)
            self._dram.append(index)
        self._allocated: set = set()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def free_perfect(self) -> int:
        return len(self._perfect)

    @property
    def free_imperfect(self) -> int:
        return len(self._imperfect)

    @property
    def free_dram(self) -> int:
        return len(self._dram)

    def is_allocated(self, index: int) -> bool:
        return index in self._allocated

    def page(self, index: int) -> PhysicalPage:
        return self.pages[index]

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def take_perfect(self, allow_dram: bool = False) -> PhysicalPage:
        """A page with no failures: perfect PCM first, DRAM as fallback."""
        if self._perfect:
            return self._take(self._perfect.popleft())
        if allow_dram and self._dram:
            return self._take(self._dram.popleft())
        raise PerfectMemoryExhaustedError("no perfect PCM page available")

    def take_dram(self) -> PhysicalPage:
        if not self._dram:
            raise OutOfMemoryError("no DRAM page available")
        return self._take(self._dram.popleft())

    def take_any_pcm(self) -> PhysicalPage:
        """Any PCM page, in the pool policy's supply order.

        The paper supplies imperfect pages first (they are less
        precious); MigrantStore-style policies invert the order so data
        lands on reliable frames by default.
        """
        if self.supply_order == "perfect-first":
            first, second = self._perfect, self._imperfect
        else:
            first, second = self._imperfect, self._perfect
        if first:
            return self._take(first.popleft())
        if second:
            return self._take(second.popleft())
        raise OutOfMemoryError("no PCM page available")

    def take_imperfect(self) -> Optional[PhysicalPage]:
        """An imperfect page, or None when none are free."""
        if self._imperfect:
            return self._take(self._imperfect.popleft())
        return None

    def take_page(self, index: int) -> Optional[PhysicalPage]:
        """Take one specific free page by index, or None if unavailable."""
        for pool in (self._perfect, self._imperfect, self._dram):
            try:
                pool.remove(index)
            except ValueError:
                continue
            return self._take(index)
        return None

    def take_compatible(self, source: PhysicalPage) -> Optional[PhysicalPage]:
        """A free imperfect page whose holes are a subset of ``source``'s.

        Supports the swap-in path (section 3.2.3); linear scan, which
        the paper notes has limited efficacy — failure clustering makes
        the simpler failed-count comparison (``take_clustered_compatible``)
        preferable.
        """
        for index in list(self._imperfect):
            candidate = self.pages[index]
            if candidate.compatible_destination_for(source):
                self._imperfect.remove(index)
                return self._take(index)
        return None

    def take_clustered_compatible(self, failed_count: int) -> Optional[PhysicalPage]:
        """A free imperfect page with at most ``failed_count`` failures.

        Valid only under failure clustering, where every page's holes
        are packed at a known end: any page with the same number or
        fewer failures is automatically hole-compatible.
        """
        for index in list(self._imperfect):
            if self.pages[index].failed_count <= failed_count:
                self._imperfect.remove(index)
                return self._take(index)
        return None

    def _take(self, index: int) -> PhysicalPage:
        self._allocated.add(index)
        return self.pages[index]

    # ------------------------------------------------------------------
    # Release and state transitions
    # ------------------------------------------------------------------
    def release(self, index: int) -> None:
        if index not in self._allocated:
            raise ValueError(f"page {index} is not allocated")
        self._allocated.remove(index)
        page = self.pages[index]
        if page.kind is PageKind.DRAM:
            self._dram.append(index)
        elif page.is_perfect:
            self._perfect.append(index)
        else:
            self._imperfect.append(index)

    def note_page_degraded(self, index: int) -> None:
        """Move a free page from the perfect to the imperfect pool after
        its first failure (allocated pages move when released)."""
        if index in self._allocated:
            return
        try:
            self._perfect.remove(index)
        except ValueError:
            return
        self._imperfect.append(index)

    def note_pages_degraded(self, indices: List[int]) -> None:
        """Bulk :meth:`note_page_degraded`: one pool rebuild, not one
        O(n) ``deque.remove`` per page.

        Absorbing an aged module's static failures degrades thousands
        of pages against a full perfect pool, which is quadratic the
        one-at-a-time way. Final pool contents and order are identical:
        filtering preserves the perfect pool's relative order exactly
        as repeated ``remove`` calls would, and moved pages append to
        the imperfect pool in call order.
        """
        perfect = set(self._perfect)
        moved: List[int] = []
        seen: set = set()
        for index in indices:
            if index in seen or index in self._allocated or index not in perfect:
                continue
            seen.add(index)
            moved.append(index)
        if not moved:
            return
        dropped = set(moved)
        self._perfect = deque(i for i in self._perfect if i not in dropped)
        self._imperfect.extend(moved)

    def imperfect_page_indices(self) -> List[int]:
        return sorted(self._imperfect)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def update_gauges(self, metrics) -> None:
        """Refresh the free-pool gauges in a metrics registry."""
        help_text = "free pages per OS pool"
        metrics.gauge("repro_os_pool_pages", help_text, pool="perfect").set(
            len(self._perfect)
        )
        metrics.gauge("repro_os_pool_pages", help_text, pool="imperfect").set(
            len(self._imperfect)
        )
        metrics.gauge("repro_os_pool_pages", help_text, pool="dram").set(
            len(self._dram)
        )
        metrics.gauge("repro_os_pool_pages", help_text, pool="allocated").set(
            len(self._allocated)
        )
