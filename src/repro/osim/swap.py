"""Paging imperfect pages in and out (paper section 3.2.3).

When an imperfect page is swapped out and later brought back, its data
was written *around* the holes of its original physical page. The OS has
three options for the destination:

1. a perfect page (always safe, depletes the scarce perfect pool);
2. an imperfect page whose holes are a subset of the source's holes
   (safe without runtime help, but finding one needs a compatibility
   scan with limited efficacy — Ipek et al.'s observation);
3. under failure clustering, any page with the *same number or fewer*
   failures (holes are packed at a known end, so counting suffices).

:class:`Swapper` implements all three so experiments can compare their
hit rates as memory ages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import OutOfMemoryError
from .page import PhysicalPage
from .pools import PagePools


@dataclass
class SwapSlot:
    """A swapped-out page image and the hole pattern it was written around."""

    payload: object
    source_failed_offsets: frozenset
    clustered: bool


@dataclass
class SwapStats:
    swapped_out: int = 0
    swapped_in: int = 0
    perfect_destinations: int = 0
    subset_destinations: int = 0
    clustered_destinations: int = 0
    upcalls_needed: int = 0
    by_strategy: Dict[str, int] = field(default_factory=dict)


class Swapper:
    """Swap policy over a :class:`PagePools`."""

    def __init__(self, pools: PagePools, clustering_enabled: bool = False) -> None:
        self.pools = pools
        self.clustering_enabled = clustering_enabled
        self._slots: Dict[int, SwapSlot] = {}
        self._next_slot = 0
        self.stats = SwapStats()

    # ------------------------------------------------------------------
    def swap_out(self, page: PhysicalPage, payload: object) -> int:
        """Evict a page's contents to backing store; returns a slot id."""
        slot_id = self._next_slot
        self._next_slot += 1
        self._slots[slot_id] = SwapSlot(
            payload=payload,
            source_failed_offsets=frozenset(page.failed_offsets),
            clustered=self.clustering_enabled,
        )
        self.pools.release(page.index)
        self.stats.swapped_out += 1
        return slot_id

    def swap_in(self, slot_id: int) -> PhysicalPage:
        """Bring a slot back into memory using the cheapest safe page.

        Tries option 3 (clustered count match) when clustering is on,
        then option 2 (hole-subset scan), then option 1 (perfect page).
        Raises :class:`OutOfMemoryError` when nothing fits.
        """
        slot = self._slots.pop(slot_id)
        destination = self._pick_destination(slot)
        if destination is None:
            # Re-register the slot so the caller can retry after freeing
            # memory; swap-in failed atomically.
            self._slots[slot_id] = slot
            raise OutOfMemoryError("no compatible destination page for swap-in")
        self.stats.swapped_in += 1
        return destination

    def _pick_destination(self, slot: SwapSlot) -> Optional[PhysicalPage]:
        if slot.clustered and self.clustering_enabled:
            page = self.pools.take_clustered_compatible(len(slot.source_failed_offsets))
            if page is not None:
                self._count("clustered")
                self.stats.clustered_destinations += 1
                return page
        source_proxy = PhysicalPage(-1, failed_offsets=set(slot.source_failed_offsets))
        page = self.pools.take_compatible(source_proxy)
        if page is not None:
            self._count("subset")
            self.stats.subset_destinations += 1
            return page
        try:
            page = self.pools.take_perfect(allow_dram=True)
        except OutOfMemoryError:
            return None
        self._count("perfect")
        self.stats.perfect_destinations += 1
        return page

    def _count(self, strategy: str) -> None:
        self.stats.by_strategy[strategy] = self.stats.by_strategy.get(strategy, 0) + 1

    @property
    def resident_slots(self) -> int:
        return len(self._slots)
