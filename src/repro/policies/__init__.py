"""Pluggable wear-management policies (ROADMAP: related-work baselines).

The paper's headline claim — conventional wear-leveling is actively
*harmful* once a managed runtime can route allocation around failed
lines — was hard-coded into the stack: the hardware never leveled, the
OS always supplied imperfect pages first, and the runtime always placed
large objects on perfect pages. This package turns those three
decisions into policy seams so the claim can be tested against the
later counter-designs catalogued in PAPERS.md:

* :class:`~repro.policies.wear.WearLevelingPolicy` (hardware layer) —
  where writes land relative to line wear, and how a static failure map
  is reshaped by address remapping. ``none`` reproduces the paper;
  ``wolfram`` models WoLFRaM-style programmable address decoders
  (failed lines remapped into a spare region, rotation-based leveling);
  ``softwear`` models SoftWear's software-only region rotation.
* :class:`~repro.policies.pool.PagePoolPolicy` (OS layer) — how
  perfect/imperfect pages are ranked, supplied, and migrated. ``paper``
  is the supply order of section 3.2; ``migrant`` is a
  MigrantStore-style baseline that migrates data off damaged frames
  entirely (whole-page retirement, perfect-first supply).
* :class:`~repro.policies.placement.PlacementPolicy` (runtime layer) —
  which allocations may land on imperfect pages. ``paper`` is the
  runtime-aware placement of section 3.3; ``hrm`` is a
  Heterogeneous-Reliability-Memory-style split that routes
  error-tolerant large objects through line-space arraylets instead of
  demanding perfect LOS pages.

Policies are selected by name via ``RunConfig`` fields (``wear_policy``,
``pool_policy``, ``placement_policy``) and resolved through the
registries below. Implementations must be deterministic under a fixed
seed, stateless or cleanly picklable (snapshots capture them with the
machine), and must never place writes on FAILED lines — the contract
suite in ``tests/policies/contract.py`` holds every registered
implementation to exactly those invariants, so a third design dropped
into a registry gets its coverage for free.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from ..errors import ConfigError
from .placement import HrmPlacementPolicy, PaperPlacementPolicy, PlacementPolicy
from .pool import MigrantPoolPolicy, PagePoolPolicy, PaperPoolPolicy
from .wear import (
    NoWearPolicy,
    SoftwearWearPolicy,
    WearLevelingPolicy,
    WolframWearPolicy,
)

#: Default spellings: the paper's design, bit-identical to the
#: pre-policy code paths (CI-enforced against pinned golden artifacts).
DEFAULT_WEAR_POLICY = "none"
DEFAULT_POOL_POLICY = "paper"
DEFAULT_PLACEMENT_POLICY = "paper"

WEAR_POLICIES: Dict[str, Type[WearLevelingPolicy]] = {
    "none": NoWearPolicy,
    "wolfram": WolframWearPolicy,
    "softwear": SoftwearWearPolicy,
}

POOL_POLICIES: Dict[str, Type[PagePoolPolicy]] = {
    "paper": PaperPoolPolicy,
    "migrant": MigrantPoolPolicy,
}

PLACEMENT_POLICIES: Dict[str, Type[PlacementPolicy]] = {
    "paper": PaperPlacementPolicy,
    "hrm": HrmPlacementPolicy,
}


def _resolve(registry: Dict[str, type], name: str, axis: str):
    try:
        cls = registry[name]
    except KeyError:
        known = ", ".join(sorted(registry))
        raise ConfigError(
            f"unknown {axis} {name!r}; choose from {known}"
        ) from None
    return cls()


def resolve_wear_policy(name: str) -> WearLevelingPolicy:
    return _resolve(WEAR_POLICIES, name, "wear_policy")


def resolve_pool_policy(name: str) -> PagePoolPolicy:
    return _resolve(POOL_POLICIES, name, "pool_policy")


def resolve_placement_policy(name: str) -> PlacementPolicy:
    return _resolve(PLACEMENT_POLICIES, name, "placement_policy")


def policy_triple(
    wear: str, pool: str, placement: str
) -> Tuple[WearLevelingPolicy, PagePoolPolicy, PlacementPolicy]:
    """Resolve all three axes at once (fails fast on any unknown name)."""
    return (
        resolve_wear_policy(wear),
        resolve_pool_policy(pool),
        resolve_placement_policy(placement),
    )


__all__ = [
    "DEFAULT_WEAR_POLICY",
    "DEFAULT_POOL_POLICY",
    "DEFAULT_PLACEMENT_POLICY",
    "WEAR_POLICIES",
    "POOL_POLICIES",
    "PLACEMENT_POLICIES",
    "WearLevelingPolicy",
    "PagePoolPolicy",
    "PlacementPolicy",
    "NoWearPolicy",
    "WolframWearPolicy",
    "SoftwearWearPolicy",
    "PaperPoolPolicy",
    "MigrantPoolPolicy",
    "PaperPlacementPolicy",
    "HrmPlacementPolicy",
    "resolve_wear_policy",
    "resolve_pool_policy",
    "resolve_placement_policy",
    "policy_triple",
]
