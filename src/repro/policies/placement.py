"""Runtime-layer data-placement policies.

A placement policy decides which allocations may land on imperfect
memory. The seam sits in the collector's large-object path — small and
medium objects already flow around failed lines naturally, so the
interesting decision is what to do with objects big enough to need
contiguous space:

* ``paper`` — section 3.3's runtime-aware placement: large objects go
  to the large-object space on perfect pages (or, when the run enables
  arraylets globally, all of them shatter into line-space chunks).
* ``hrm`` — a Heterogeneous-Reliability-Memory-style split: a
  deterministic fraction of large objects is classified error-tolerant
  and routed through the existing arraylet machinery (line-space
  chunks, zero perfect-page demand), while the strict remainder keeps
  demanding perfect LOS pages. This interpolates between the paper's
  two extremes on the perfect-page-demand axis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - hints only
    from ..heap.object_model import SimObject


class PlacementPolicy:
    """Interface: deterministic, stateless, picklable."""

    #: Registry key; also the ``RunConfig.placement_policy`` spelling.
    name = "paper"
    #: True when any large object may take the arraylet (tolerant) path
    #: even without the global ``arraylets`` flag — collectors without
    #: an arraylet path must reject such policies up front.
    needs_arraylets = False

    def tolerant_large(self, obj: "SimObject") -> bool:
        """May this large object live on imperfect lines?"""
        return False

    def describe(self) -> dict:
        return {"name": self.name}

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PaperPlacementPolicy(PlacementPolicy):
    """The paper's placement: large objects demand perfect pages."""

    name = "paper"


class HrmPlacementPolicy(PlacementPolicy):
    """HRM-style error-tolerance split for large objects.

    Tolerance is a stable property of the object, not of the moment of
    allocation: the classification hashes the object id, so the same
    object makes the same choice on every allocation retry and on every
    re-run of the same seed.
    """

    name = "hrm"
    needs_arraylets = True

    def __init__(self, tolerant_fraction: float = 0.5) -> None:
        if not 0.0 <= tolerant_fraction <= 1.0:
            raise ValueError("tolerant_fraction must be within [0, 1]")
        self.tolerant_fraction = tolerant_fraction
        self._threshold = int(tolerant_fraction * 2**32)

    def tolerant_large(self, obj: "SimObject") -> bool:
        return ((obj.oid * 2654435761) & 0xFFFFFFFF) < self._threshold

    def describe(self) -> dict:
        return {"name": self.name, "tolerant_fraction": self.tolerant_fraction}
