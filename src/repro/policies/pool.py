"""OS-layer page-pool policies.

A pool policy decides how the OS ranks, supplies, and migrates
perfect/imperfect frames. The seam is intentionally declarative — two
knobs the OS and runtime consult rather than callbacks on the hot
path — so the default spelling compiles to exactly the pre-policy
behavior:

* ``supply_order`` — which pool :meth:`~repro.osim.pools.PagePools.
  take_any_pcm` drains first. The paper supplies imperfect frames
  first (section 3.2: perfect pages are precious; give the runtime
  holes, it knows how to use them).
* ``retire_whole_pages`` — whether the runtime's failure view rounds
  line failures up to whole frames. MigrantStore-style designs never
  leave data on a damaged frame: any frame with a failed line is
  migrated off and dropped from service entirely.
"""

from __future__ import annotations


class PagePoolPolicy:
    """Interface: deterministic, stateless, picklable."""

    #: Registry key; also the ``RunConfig.pool_policy`` spelling.
    name = "paper"
    #: ``"imperfect-first"`` or ``"perfect-first"``.
    supply_order = "imperfect-first"
    #: Round line failures up to whole-frame retirement/migration.
    retire_whole_pages = False

    def describe(self) -> dict:
        return {
            "name": self.name,
            "supply_order": self.supply_order,
            "retire_whole_pages": self.retire_whole_pages,
        }

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class PaperPoolPolicy(PagePoolPolicy):
    """The paper's supply order: imperfect frames first, holes and all."""

    name = "paper"


class MigrantPoolPolicy(PagePoolPolicy):
    """MigrantStore-style migration: data never lives on damaged frames.

    Two consequences, both honest to the design being modeled:

    * the OS hands out pristine frames first (``perfect-first``) — the
      migration store wants data on reliable media by default;
    * any frame that develops (or arrives with) a failed line is
      treated as wholly unusable: statically imperfect frames are
      retired before mapping, and a dynamic failure migrates the whole
      frame's contents away rather than patching around one line.

    At low failure rates this looks clean; as the rate grows the
    perfect-frame demand explodes — the contrast the policy-comparison
    figure exists to show.
    """

    name = "migrant"
    supply_order = "perfect-first"
    retire_whole_pages = True
