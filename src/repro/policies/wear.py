"""Hardware-layer wear-leveling policies.

A wear-leveling policy answers two questions the hardware layer used to
hard-code:

1. **How does address remapping reshape a static failure map?**
   ``transform_static_map`` runs between failure-map generation and
   injection into the PCM module, so every downstream view (OS failure
   tables, collector line metadata, invariant checkers) sees one
   coherent, already-transformed map.
2. **Where do writes land relative to line wear during wearing runs?**
   ``build_leveler`` returns the :class:`~repro.hardware.wear_leveling.
   WearLeveler` the PCM module consults on every write.

The paper's position (``none``) is that the runtime tolerates holes, so
the hardware should do nothing. The two baselines model the
counter-designs from PAPERS.md: WoLFRaM's programmable address decoders
and SoftWear's software-only region rotation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..faults.maps import FailureMap
from ..hardware.wear_leveling import (
    NoWearLeveling,
    StartGapWearLeveler,
    WearLeveler,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints only
    from ..hardware.geometry import Geometry


class WearLevelingPolicy:
    """Interface: deterministic, stateless, picklable."""

    #: Registry key; also the ``RunConfig.wear_policy`` spelling.
    name = "none"

    def transform_static_map(
        self, static_map: FailureMap, geometry: "Geometry", seed: int
    ) -> FailureMap:
        """Reshape the generated static map; identity by default."""
        return static_map

    def build_leveler(self, geometry: "Geometry", seed: int) -> WearLeveler:
        """The write-path leveler for wearing/lifetime runs."""
        return NoWearLeveling()

    def describe(self) -> dict:
        return {"name": self.name}

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self)

    def __hash__(self) -> int:
        return hash(type(self))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class NoWearPolicy(WearLevelingPolicy):
    """The paper's design: no hardware wear management at all."""

    name = "none"


class WolframWearPolicy(WearLevelingPolicy):
    """WoLFRaM-style programmable address decoders.

    Failed lines are remapped into a spare region at the top of the
    module: the decoder redirects a failed line's address to a healthy
    spare, so the original address becomes usable again while the
    consumed spare drops out of the usable pool. The remap table is
    finite (``spare_fraction`` of the module), so at low failure rates
    nearly all damage is absorbed — scattered holes concentrate into a
    few sacrificed pages and the OS recovers perfect pages — while at
    high rates the table saturates and the module behaves like the
    unmanaged baseline minus its spare capacity.

    Remapping is deterministic: the lowest failed addresses are absorbed
    first, spares are consumed from the top of the module downward, and
    a spare is never itself a failed line.
    """

    name = "wolfram"

    def __init__(self, spare_fraction: float = 0.02) -> None:
        self.spare_fraction = spare_fraction

    def transform_static_map(
        self, static_map: FailureMap, geometry: "Geometry", seed: int
    ) -> FailureMap:
        failed = static_map.failed_lines
        n_lines = static_map.n_lines
        if not failed or n_lines == 0:
            return static_map
        capacity = max(
            geometry.lines_per_page, int(n_lines * self.spare_fraction)
        )
        spares = []
        for line in range(n_lines - 1, -1, -1):
            if len(spares) >= capacity:
                break
            if line not in failed:
                spares.append(line)
        remapped = set(failed)
        for victim, spare in zip(sorted(failed), spares):
            if spare <= victim:
                # The spare region has grown down into the damage it is
                # meant to absorb; further remapping only shuffles loss.
                break
            remapped.discard(victim)
            remapped.add(spare)
        return FailureMap(n_lines, remapped)

    def build_leveler(self, geometry: "Geometry", seed: int) -> WearLeveler:
        # The decoder doubles as a Start-Gap-style rotation engine: one
        # gap line per leveling domain, rotated every 64 writes.
        return StartGapWearLeveler(
            domain_lines=geometry.lines_per_page * 4, gap_write_interval=64
        )

    def describe(self) -> dict:
        return {"name": self.name, "spare_fraction": self.spare_fraction}


class RegionRotationLeveler(WearLeveler):
    """Software-triggered rotation of whole regions (SoftWear).

    Every ``rotate_interval`` writes to a region, software bumps that
    region's rotation offset by one line; reads and writes are
    redirected through the offset. Purely software state — no decoder
    hardware — so the rotation granularity is coarse and the translate
    cost is paid on every access.
    """

    def __init__(self, region_lines: int, rotate_interval: int = 4096) -> None:
        if region_lines <= 0:
            raise ValueError("region_lines must be > 0")
        if rotate_interval <= 0:
            raise ValueError("rotate_interval must be > 0")
        self.region_lines = region_lines
        self.rotate_interval = rotate_interval
        self._offsets: dict = {}
        self._write_counts: dict = {}
        self.rotations = 0

    def translate(self, line_index: int) -> int:
        region = line_index // self.region_lines
        offset = self._offsets.get(region, 0)
        if not offset:
            return line_index
        base = region * self.region_lines
        return base + (line_index - base + offset) % self.region_lines

    def on_write(self, line_index: int) -> None:
        region = line_index // self.region_lines
        count = self._write_counts.get(region, 0) + 1
        if count >= self.rotate_interval:
            self._offsets[region] = (
                self._offsets.get(region, 0) + 1
            ) % self.region_lines
            self.rotations += 1
            count = 0
        self._write_counts[region] = count


class SoftwearWearPolicy(WearLevelingPolicy):
    """SoftWear-style software-only in-memory wear leveling.

    Static view: accumulated rotation displaces where failures sit
    relative to the data layout, so a clustered map loses its page
    alignment — each region's failures land at a deterministic
    seed-derived rotation of their hardware positions. This is exactly
    the interaction the paper predicts is harmful: rotation smears the
    clustering hardware's carefully contiguous damage back across page
    boundaries, turning few fully-dead pages into many imperfect ones.

    Wearing view: :class:`RegionRotationLeveler`.
    """

    name = "softwear"

    def __init__(self, region_pages: int = 8, rotate_interval: int = 4096) -> None:
        if region_pages <= 0:
            raise ValueError("region_pages must be > 0")
        self.region_pages = region_pages
        self.rotate_interval = rotate_interval

    def _rotation(self, region: int, span: int, seed: int) -> int:
        # Knuth multiplicative hash over (region, seed): stable across
        # processes, different per region, different per seed.
        mixed = (region * 2654435761 + (seed + 1) * 40503) & 0xFFFFFFFF
        return mixed % span

    def transform_static_map(
        self, static_map: FailureMap, geometry: "Geometry", seed: int
    ) -> FailureMap:
        failed = static_map.failed_lines
        n_lines = static_map.n_lines
        if not failed or n_lines == 0:
            return static_map
        region_lines = geometry.lines_per_page * self.region_pages
        rotated = set()
        for line in failed:
            region = line // region_lines
            base = region * region_lines
            span = min(region_lines, n_lines - base)
            offset = self._rotation(region, span, seed)
            rotated.add(base + (line - base + offset) % span)
        return FailureMap(n_lines, rotated)

    def build_leveler(self, geometry: "Geometry", seed: int) -> WearLeveler:
        return RegionRotationLeveler(
            region_lines=geometry.lines_per_page * self.region_pages,
            rotate_interval=self.rotate_interval,
        )

    def describe(self) -> dict:
        return {
            "name": self.name,
            "region_pages": self.region_pages,
            "rotate_interval": self.rotate_interval,
        }
