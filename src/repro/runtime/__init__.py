"""Managed runtime: the VM facade and the execution-time cost model."""

from .time_model import DEFAULT_COST_MODEL, CostModel
from .vm import COLLECTORS, VirtualMachine, VmConfig

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "COLLECTORS",
    "VirtualMachine",
    "VmConfig",
]
