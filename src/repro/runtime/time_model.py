"""The execution-time cost model (paper section 5, methodology).

The original evaluation measures wall-clock time of Jikes RVM on real
hardware. This reproduction executes the memory-management *algorithms*
for real but cannot measure their machine-level cost, so simulated time
is an explicit linear model over the event counters in
:class:`repro.collectors.stats.GcStats`:

* mutator time — application work proportional to allocation volume,
  plus per-event allocation costs (bump fast path, run skips, block
  acquisition, overflow searches), plus a locality term charged per
  allocation discontiguity (fragmented allocation scatters objects that
  are accessed together, which the paper observes as mutator slowdown);
* GC time — a fixed per-collection cost (root scanning, flushing), plus
  terms per traced object/byte, per copied byte, and per swept
  line/cell/block.

Every experiment uses the same constants (below); only the counters
differ between configurations, mirroring how wall-clock comparisons
work. The constants were calibrated once against the paper's anchors:
~1.8 s mean benchmark time, ~15 collections and ~7 ms mean full-heap
pause at a 2x heap, GC time a minority share of execution.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..collectors.stats import GcStats


@dataclass(frozen=True)
class CostModel:
    """Cost constants in abstract time units (1 unit ~ 1 ns at default
    calibration; see :attr:`units_per_ms`)."""

    # ------------------------------------------------------------------
    # Mutator
    # ------------------------------------------------------------------
    #: Application compute charged per allocated byte. This is the
    #: non-memory-management work; it dominates total time, which keeps
    #: GC overheads in the realistic 5-20 % band.
    app_work_per_byte: float = 55.0
    #: Bump-pointer fast path, per object.
    alloc_fast: float = 15.0
    #: Segregated free-list pop, per object (slower than bump).
    freelist_alloc: float = 30.0
    #: Advancing the bump cursor to the next free run (hole skip).
    run_advance: float = 80.0
    #: Acquiring a recycled or free block.
    block_request: float = 500.0
    #: Medium-object diversion to the overflow block.
    overflow_alloc: float = 40.0
    #: Inspecting one run while searching an imperfect overflow block.
    overflow_run_search: float = 25.0
    #: Falling back to a perfect block (fussy request + page fault work).
    perfect_block_request: float = 1200.0
    #: LOS allocation, per page.
    los_alloc_per_page: float = 250.0
    #: Discontiguous-array access tax per arraylet byte: spine
    #: indirection on every array access. Sartor et al. report <13 %
    #: average slowdown; 7 units/byte is ~13 % of the app work rate.
    arraylet_access_per_byte: float = 7.0
    #: Downstream mutator locality loss per allocation discontiguity:
    #: objects allocated across a skip are no longer adjacent in cache.
    locality_per_run_advance: float = 220.0
    locality_per_block_request: float = 400.0
    #: Mutator cache penalty per locality-weighted byte: the collector
    #: accumulates size/run_length_lines per placement, so allocation
    #: into short fragmented runs (the hallmark of uniformly failed
    #: memory) is charged heavily while virgin-block allocation is
    #: nearly free. This reproduces the paper's observation that
    #: fragmentation slows the *mutator*, not just the allocator.
    locality_per_run_unit: float = 5.0
    #: Mutator page/TLB locality penalty per sparsity-weighted byte:
    #: the collector accumulates size x failed_fraction(block) per
    #: placement, so data laid out in blocks that are largely holes —
    #: even neatly clustered holes — pays for its larger footprint.
    locality_per_sparse_byte: float = 20.0
    #: MS reuse of freed cells scatters allocation across the heap;
    #: charged per reused cell (fresh carving stays cheap, bump-like).
    locality_per_freelist_reuse: float = 600.0
    #: Baseline free-list overhead charged per MS allocation.
    locality_per_freelist_alloc: float = 9.0

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    #: Per collection: root scan, allocator flush, phase turnaround.
    gc_fixed: float = 100_000.0
    trace_per_object: float = 35.0
    trace_per_byte: float = 1.0
    copy_per_byte: float = 0.35
    line_sweep: float = 6.0
    #: Per live line re-marked at sweep (line mark-table maintenance).
    line_mark: float = 12.0
    cell_sweep: float = 1.5
    block_sweep: float = 60.0
    los_page_sweep: float = 120.0

    #: Calibration: abstract units per simulated millisecond.
    units_per_ms: float = 1_000_000.0

    # ------------------------------------------------------------------
    def mutator_time(self, stats: GcStats) -> float:
        return (
            stats.bytes_allocated * self.app_work_per_byte
            + stats.fast_path_allocs * self.alloc_fast
            + stats.freelist_allocs * (self.freelist_alloc + self.locality_per_freelist_alloc)
            + stats.freelist_reuse_allocs * self.locality_per_freelist_reuse
            + stats.run_advances * (self.run_advance + self.locality_per_run_advance)
            + stats.block_requests * (self.block_request + self.locality_per_block_request)
            + stats.run_locality_units * self.locality_per_run_unit
            + stats.block_sparsity_units * self.locality_per_sparse_byte
            + stats.overflow_allocs * self.overflow_alloc
            + stats.overflow_run_searches * self.overflow_run_search
            + stats.perfect_block_requests * self.perfect_block_request
            + stats.los_pages_allocated * self.los_alloc_per_page
            + stats.arraylet_bytes * self.arraylet_access_per_byte
        )

    def gc_time(self, stats: GcStats) -> float:
        return (
            stats.collections * self.gc_fixed
            + stats.objects_traced * self.trace_per_object
            + stats.bytes_traced * self.trace_per_byte
            + stats.bytes_copied * self.copy_per_byte
            + stats.lines_swept * self.line_sweep
            + stats.lines_marked * self.line_mark
            + stats.cells_swept * self.cell_sweep
            + stats.blocks_swept * self.block_sweep
            + stats.los_pages_reclaimed * self.los_page_sweep
        )

    def total_time(self, stats: GcStats) -> float:
        return self.mutator_time(stats) + self.gc_time(stats)

    # ------------------------------------------------------------------
    def to_ms(self, units: float) -> float:
        return units / self.units_per_ms

    def total_ms(self, stats: GcStats) -> float:
        return self.to_ms(self.total_time(stats))

    def full_gc_pause_ms(self, live_bytes: int, lines_swept_est: int = 0) -> float:
        """Estimated pause of one full-heap collection (section 4.2)."""
        units = (
            self.gc_fixed
            + live_bytes * self.trace_per_byte
            + lines_swept_est * self.line_sweep
        )
        return self.to_ms(units)

    def describe(self) -> str:
        parts = [f"{f.name}={getattr(self, f.name)}" for f in fields(self)]
        return "CostModel(" + ", ".join(parts) + ")"


#: The single calibrated model used by every experiment.
DEFAULT_COST_MODEL = CostModel()
