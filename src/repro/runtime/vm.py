"""The virtual-machine facade (paper sections 3.3.2 and 4).

:class:`VirtualMachine` wires the whole cooperative stack together:

* it builds (or accepts) a :class:`~repro.faults.injector.FaultInjector`
  — the aged PCM module plus the failure-aware OS;
* registers a dynamic-failure handler with the OS before requesting
  imperfect memory (the protocol the paper mandates);
* maps a compensated heap, folds the failure map into the collector's
  line metadata, and exposes ``alloc`` / ``add_root`` / ``add_ref`` /
  ``mutate`` to workloads;
* triggers collections on allocation failure and full collections when
  dynamic failures require evacuation.
"""

from __future__ import annotations

import os as _os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..check.audit import HeapAuditor, check_verify_level
from ..collectors.immix import ImmixCollector, ImmixConfig
from ..collectors.marksweep import MarkSweepCollector
from ..collectors.stats import GcStats
from ..errors import ConfigError, OutOfMemoryError
from ..faults.generator import FailureModel
from ..faults.injector import FaultInjector
from ..hardware.geometry import Geometry
from ..heap.object_model import ObjectFactory, SimObject
from ..heap.page_supply import HeapPage, PageSupply
from ..obs.trace import Tracer
from ..policies import policy_triple
from .time_model import DEFAULT_COST_MODEL, CostModel

#: Collector selection strings, paper notation.
COLLECTORS = ("immix", "sticky-immix", "marksweep", "sticky-marksweep")


@dataclass
class VmConfig:
    """Everything needed to build a VM deterministically."""

    heap_bytes: int
    geometry: Geometry = field(default_factory=Geometry)
    collector: str = "sticky-immix"
    failure_model: FailureModel = field(default_factory=FailureModel)
    #: Hold non-faulty bytes constant by requesting h/(1-f) raw memory.
    compensate: bool = True
    large_threshold: int = 8 * 1024
    seed: int = 0
    #: Simulate PCM wear on writes (dynamic-failure experiments).
    wear_writes: bool = False
    #: DRAM-era baseline: retire the whole page when any line fails,
    #: instead of stepping around the single failed line.
    page_retirement: bool = False
    #: Discontiguous arrays: place large objects as arraylets in line
    #: space instead of on perfect LOS pages (paper section 3.3.3).
    arraylets: bool = False
    #: Policy seams (:mod:`repro.policies`): hardware wear leveling, OS
    #: page-pool supply/migration, runtime large-object placement. The
    #: defaults reproduce the paper's hard-coded design bit-identically.
    wear_policy: str = "none"
    pool_policy: str = "paper"
    placement_policy: str = "paper"
    #: Heap-auditor level (:data:`repro.check.VERIFY_LEVELS`); None
    #: defers to the ``REPRO_VERIFY`` environment variable, defaulting
    #: to "off".
    verify: Optional[str] = None
    #: Observability: a :class:`repro.obs.Tracer` to wire through all
    #: three layers, or None (the default) for zero-cost no-op tracing.
    tracer: Optional[Tracer] = None

    def __post_init__(self) -> None:
        if self.collector not in COLLECTORS:
            raise ConfigError(
                f"unknown collector {self.collector!r}; choose from {COLLECTORS}"
            )
        if self.heap_bytes <= 0:
            raise ConfigError("heap_bytes must be positive")
        # Fail fast on unknown policy names and impossible pairings —
        # a policy conflict discovered mid-run would waste the run.
        wear, pool, placement = policy_triple(
            self.wear_policy, self.pool_policy, self.placement_policy
        )
        if placement.needs_arraylets and self.collector in (
            "marksweep",
            "sticky-marksweep",
        ):
            raise ConfigError(
                f"placement_policy {placement.name!r} needs the collector's "
                f"arraylet path; collector {self.collector!r} has none "
                f"(choose an immix collector)"
            )

    def __getstate__(self) -> dict:
        """Snapshot support: a tracer is process wiring, not config."""
        state = self.__dict__.copy()
        state["tracer"] = None
        return state


class VirtualMachine:
    """A failure-aware managed runtime over simulated wearable memory."""

    def __init__(
        self,
        config: VmConfig,
        injector: Optional[FaultInjector] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.config = config
        self.geometry = config.geometry
        self.cost_model = cost_model
        self.stats = GcStats()
        self.factory = ObjectFactory()
        self._roots: Dict[int, SimObject] = {}
        self._pending_failure_gc = False
        self._displaced: List[SimObject] = []
        # Resolved policy objects travel with the machine (snapshots
        # capture them); _retire_pages folds the DRAM-era flag and the
        # MigrantStore-style pool policy into one whole-page switch.
        self.wear_policy, self.pool_policy, self.placement_policy = policy_triple(
            config.wear_policy, config.pool_policy, config.placement_policy
        )
        self._retire_pages = (
            config.page_retirement or self.pool_policy.retire_whole_pages
        )
        self.tracer = config.tracer
        if self.tracer is not None:
            # Simulated time is a pure function of the stats counters,
            # which only ever grow — a monotone clock for event stamps.
            self.tracer.bind_clock(lambda: self.cost_model.total_time(self.stats))
        self.injector = injector or self._build_injector()
        self.os = self.injector.os
        # Protocol order matters: register the handler, then map
        # imperfect memory (section 3.2.2). The tracer is wired first so
        # the initial heap-mapping system calls are already on record.
        if self.tracer is not None:
            self._wire_tracer()
        self.os.register_failure_handler(self._on_failure_upcall)
        self._heap_pages = self._map_heap()
        self.supply = PageSupply(self._heap_pages, self.geometry)
        self.collector = self._build_collector()
        if self.tracer is not None:
            self.collector.tracer = self.tracer
            self.collector.los.tracer = self.tracer
        self.auditor = HeapAuditor(self, level=self._verify_level())

    # ------------------------------------------------------------------
    # Snapshot support (see repro.sim.snapshot)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Serialize the machine, not its observability wiring.

        Tracers hold open sinks and clock closures; every layer drops
        its own reference, and a restored machine comes back silent.
        Use :meth:`attach_tracer` to resume observability.
        """
        state = self.__dict__.copy()
        state["tracer"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Restore the cooperation wiring the per-layer __getstate__
        # hooks dropped, in the paper's protocol order: the runtime
        # handler is registered before the hardware interrupt line is
        # re-soldered into the OS, so no upcall can ever fire into an
        # unhandled manager.
        self.os.register_failure_handler(self._on_failure_upcall)
        self.injector.pcm._on_interrupt = self.os._on_interrupt

    def attach_tracer(self, tracer: Tracer) -> None:
        """(Re)wire a tracer through all three layers of a built machine.

        Snapshots never persist tracers, so a restored machine is
        silent until the caller attaches a fresh one.
        """
        self.tracer = tracer
        self.config.tracer = tracer
        tracer.bind_clock(lambda: self.cost_model.total_time(self.stats))
        self.injector.pcm.set_tracer(tracer)
        self.os.tracer = tracer
        self.collector.tracer = tracer
        self.collector.los.tracer = tracer

    def _wire_tracer(self) -> None:
        """Push the tracer into every instrumented layer."""
        tracer = self.tracer
        self.injector.pcm.set_tracer(tracer)
        self.os.tracer = tracer
        tracer.instant(
            "vm.start",
            args={
                "collector": self.config.collector,
                "heap_bytes": self.config.heap_bytes,
                "static_failed_lines": len(
                    self.injector.pcm.failed_logical_lines()
                ),
            },
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _verify_level(self) -> str:
        level = self.config.verify
        if level is None:
            level = _os.environ.get("REPRO_VERIFY", "off")
        return check_verify_level(level)

    def _raw_heap_bytes(self) -> int:
        rate = self.config.failure_model.rate
        if self.config.compensate and rate > 0.0:
            return FaultInjector.compensated_bytes(
                self.config.heap_bytes, rate, self.geometry.block
            )
        block = self.geometry.block
        return (self.config.heap_bytes + block - 1) // block * block

    def _build_injector(self) -> FaultInjector:
        raw = self._raw_heap_bytes()
        region = self.geometry.region
        pcm_bytes = (raw + region - 1) // region * region
        return FaultInjector(
            self.config.failure_model,
            pcm_bytes=pcm_bytes,
            geometry=self.geometry,
            seed=self.config.seed,
            wear_policy=self.wear_policy,
            pool_policy=self.pool_policy,
        )

    def _map_heap(self) -> List[HeapPage]:
        n_pages = self._raw_heap_bytes() // self.geometry.page
        os_pages = self.os.mmap_imperfect(n_pages, owner="runtime")
        failures = self.os.map_failures(os_pages)
        if self._retire_pages:
            # Whole-page view (DRAM-era baseline, MigrantStore-style
            # migration): a page with any failed line is dead.
            whole_page = frozenset(range(self.geometry.lines_per_page))
            failures = {
                index: (whole_page if offsets else frozenset())
                for index, offsets in failures.items()
            }
        return [HeapPage(p.index, failures[p.index]) for p in os_pages]

    def _build_collector(self):
        name = self.config.collector
        if name in ("immix", "sticky-immix"):
            return ImmixCollector(
                self.supply,
                self.geometry,
                config=ImmixConfig(
                    large_threshold=self.config.large_threshold,
                    generational=name == "sticky-immix",
                    arraylets=self.config.arraylets,
                ),
                placement=self.placement_policy,
                stats=self.stats,
                factory=self.factory,
            )
        return MarkSweepCollector(
            self.supply,
            self.geometry,
            generational=name == "sticky-marksweep",
            large_threshold=self.config.large_threshold,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Mutator interface
    # ------------------------------------------------------------------
    def alloc(self, size: int, pinned: bool = False) -> SimObject:
        """Allocate an object, collecting (and retrying) as needed."""
        if self._pending_failure_gc:
            self._failure_collection()
        obj = self.factory.make(size, pinned=pinned)
        if not self.collector.allocate(obj):
            self.collect()
            if not self.collector.allocate(obj, after_gc=True):
                self.collect(force_full=True)
                if not self.collector.allocate(obj, after_gc=True):
                    raise OutOfMemoryError(
                        f"cannot place {obj.size} B object in a "
                        f"{self.config.heap_bytes} B heap "
                        f"({self.config.failure_model.describe()})"
                    )
        if self.config.wear_writes:
            self._write_object(obj)
        self.auditor.after_alloc()
        return obj

    def add_root(self, obj: SimObject) -> None:
        self._roots[obj.oid] = obj

    def remove_root(self, obj: SimObject) -> None:
        self._roots.pop(obj.oid, None)

    def add_ref(self, parent: SimObject, child: SimObject) -> None:
        parent.add_ref(child)
        self.collector.write_barrier(parent, child)
        if self.config.wear_writes:
            self._write_slot(parent)

    def mutate(self, obj: SimObject) -> None:
        """An application store into the object (wears its lines)."""
        if self.config.wear_writes:
            self._write_slot(obj)

    def roots(self) -> List[SimObject]:
        return list(self._roots.values())

    @property
    def live_root_count(self) -> int:
        return len(self._roots)

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def collect(self, force_full: bool = False) -> dict:
        tr = self.tracer
        start = tr.clock() if tr is not None else 0.0
        result = self.collector.collect(self.roots(), force_full=force_full)
        self._replace_displaced()
        if tr is not None:
            tr.metrics.counter(
                "repro_gc_collections_total",
                "collections by kind",
                kind=result["kind"],
            ).inc()
            tr.metrics.histogram(
                "repro_gc_pause_ms", "GC pause durations in simulated ms"
            ).observe(self.cost_model.to_ms(tr.clock() - start))
        self.auditor.after_gc()
        return result

    def _failure_collection(self) -> None:
        """Full collection forced by a dynamic failure (section 4.2)."""
        self._pending_failure_gc = False
        self.stats.dynamic_failure_collections += 1
        tr = self.tracer
        if tr is not None:
            tr.instant(
                "vm.dynamic_failure_collection",
                args={"pending_displaced": len(self.collector.displaced)}
                if hasattr(self.collector, "displaced")
                else None,
            )
            tr.metrics.counter(
                "repro_gc_dynamic_failure_collections_total",
                "full collections forced by dynamic failures",
            ).inc()
        self.collect(force_full=True)

    def _replace_displaced(self) -> None:
        displaced = getattr(self.collector, "displaced", self._displaced)
        while displaced:
            obj = displaced.pop()
            if not self.collector.allocate(obj, after_gc=True):
                displaced.append(obj)
                raise OutOfMemoryError("cannot re-place object displaced by failure")

    # ------------------------------------------------------------------
    # Dynamic failures (OS up-call)
    # ------------------------------------------------------------------
    def _on_failure_upcall(self, events: Sequence) -> None:
        """OS handler: route each failed line into the collector."""
        tr = self.tracer
        if tr is not None:
            tr.instant("vm.failure_upcall", args={"events": len(events)})
        needs_gc = False
        for event in events:
            if isinstance(self.collector, ImmixCollector):
                if self._retire_pages:
                    # Whole-page handling (DRAM retirement, MigrantStore
                    # migration): every line of the page is treated as
                    # failed, evacuating the whole page.
                    for offset in range(self.geometry.lines_per_page):
                        needs_gc |= self.collector.note_dynamic_failure(
                            event.page_index, offset
                        )
                else:
                    needs_gc |= self.collector.note_dynamic_failure(
                        event.page_index, event.line_offset
                    )
            else:
                # The MS baseline cannot relocate; the OS would have to
                # remap the page (paper section 3.3.1). Count it only.
                needs_gc = False
        if needs_gc:
            self._pending_failure_gc = True
        self.auditor.after_upcall()

    # ------------------------------------------------------------------
    # Physical writes (wear modelling)
    # ------------------------------------------------------------------
    def _write_object(self, obj: SimObject) -> None:
        """Write the object's memory through to the PCM module."""
        for page_index, offset, length in self._physical_extents(obj):
            if page_index < 0:
                continue  # borrowed DRAM page: no wear
            self.injector.pcm.write(
                page_index * self.geometry.page + offset, length, data=obj.oid
            )

    def _write_slot(self, obj: SimObject) -> None:
        """Write one word of the object (a field store)."""
        extents = self._physical_extents(obj)
        if not extents:
            return
        page_index, offset, _ = extents[0]
        if page_index < 0:
            return
        self.injector.pcm.write(page_index * self.geometry.page + offset, 8, data=obj.oid)

    def _physical_extents(self, obj: SimObject) -> List[tuple]:
        """(page_index, offset_in_page, length) extents covering the object."""
        page_size = self.geometry.page
        extents: List[tuple] = []
        if obj.block is not None and obj.offset is not None:
            start = obj.offset
            end = obj.offset + obj.size
            while start < end:
                slot = start // page_size
                in_page = start % page_size
                length = min(end - start, page_size - in_page)
                page = obj.block.pages[slot]
                extents.append((page.index, in_page, length))
                start += length
        elif obj.los_placement is not None:
            remaining = obj.size
            for page in obj.los_placement.pages:  # empty for arraylets
                length = min(remaining, page_size)
                extents.append((page.index, 0, length))
                remaining -= length
                if remaining <= 0:
                    break
        return extents

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def simulated_time(self) -> float:
        return self.cost_model.total_time(self.stats)

    def simulated_ms(self) -> float:
        return self.cost_model.total_ms(self.stats)

    def heap_census(self) -> dict:
        return self.collector.heap_census()
