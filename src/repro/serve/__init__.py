"""``repro serve``: a long-running shared-cache experiment service.

Many clients, one warm simulation farm: plans POSTed by concurrent
clients run through one job queue, one fault-tolerant worker pool, and
one content-addressed result cache, so identical cells are simulated
exactly once no matter how many clients ask. See
:mod:`repro.serve.protocol` for the wire format,
:mod:`repro.serve.jobs` for the queue, :mod:`repro.serve.server` for
the HTTP surface, and :mod:`repro.serve.client` for the stdlib client.
"""

from .jobs import Job, JobManager
from .protocol import (
    JOB_SCHEMA,
    PROBLEMS_SCHEMA,
    PROTOCOL_SCHEMA,
    STATE_COMPLETED,
    STATE_FAILED,
    STATE_PARTIAL,
    STATE_QUEUED,
    STATE_RUNNING,
    TERMINAL_STATES,
    PlanRejected,
)
from .server import ExperimentService


def __getattr__(name):
    # Imported lazily so `python -m repro.serve.client` doesn't load
    # the module twice (runpy warns when __main__ is already in
    # sys.modules as a plain import).
    if name in ("ServeClient", "ServeError"):
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ServeClient",
    "ServeError",
    "Job",
    "JobManager",
    "JOB_SCHEMA",
    "PROBLEMS_SCHEMA",
    "PROTOCOL_SCHEMA",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "STATE_PARTIAL",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "TERMINAL_STATES",
    "PlanRejected",
    "ExperimentService",
]
