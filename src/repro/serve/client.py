"""Stdlib client for the ``repro serve`` daemon.

:class:`ServeClient` wraps the wire protocol — submit a plan, poll its
job, fetch the artifact — over ``urllib`` so tests, CI, and scripts
need no third-party HTTP stack. Plan *files* are loaded with
:func:`repro.sim.plan.load_plan`, which resolves and strips ``include``
chains client-side; the service only ever sees flattened documents.

Run as a module it is a one-shot submit-and-wait::

    python -m repro.serve.client plans/smoke.yaml \
        --url http://127.0.0.1:8321 --out artifact.json

exiting with the offline CLI's codes: 0 completed, 2 rejected by the
precheck (the 422 path), 3 partial (quarantined cells), 1 failed.
"""

from __future__ import annotations

import argparse
import json
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from ..ioutil import atomic_write_json
from ..obs import log as obslog
from ..sim.plan import load_plan
from . import protocol


class ServeError(Exception):
    """A non-422 HTTP failure talking to the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(
        self, path: str, body: Optional[Dict[str, Any]] = None
    ) -> Any:
        request = urllib.request.Request(
            self.base_url + path,
            data=(
                json.dumps(body).encode("utf-8") if body is not None else None
            ),
            headers={"Content-Type": protocol.CONTENT_JSON}
            if body is not None
            else {},
            method="POST" if body is not None else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                raw = resp.read()
                content_type = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw)
            except ValueError:
                payload = None
            if exc.code == 422 and payload is not None:
                raise protocol.PlanRejected(
                    payload.get("problems", [])
                ) from exc
            detail = (
                payload.get("error") if isinstance(payload, dict) else None
            ) or raw.decode("utf-8", "replace")
            raise ServeError(exc.code, detail) from exc
        if content_type.startswith("application/json"):
            return json.loads(raw)
        return raw.decode("utf-8")

    # ------------------------------------------------------------------
    def submit(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """POST a plan document; returns the new job's status.

        Raises :class:`~repro.serve.protocol.PlanRejected` when the
        service's precheck rejects the plan (HTTP 422).
        """
        return self._request("/jobs", body=document)

    def submit_file(self, path: Union[str, Path]) -> Dict[str, Any]:
        """Load a plan file (resolving includes locally) and submit it."""
        return self.submit(load_plan(path))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/jobs/{job_id}")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("/jobs")["jobs"]

    def wait(
        self,
        job_id: str,
        timeout_s: float = 600.0,
        poll_s: float = 0.1,
        on_status: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state.

        ``on_status`` sees every polled status document (including the
        terminal one) — the one-shot CLI uses it to narrate the job's
        ``progress`` block while waiting.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            status = self.status(job_id)
            if on_status is not None:
                on_status(status)
            if status["state"] in protocol.TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout_s:g}s"
                )
            time.sleep(poll_s)

    def artifact(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/jobs/{job_id}/artifact")

    def cell(self, job_id: str, index: int) -> Dict[str, Any]:
        return self._request(f"/jobs/{job_id}/cells/{index}")

    def healthz(self) -> Dict[str, Any]:
        return self._request("/healthz")

    def metrics(self) -> str:
        return self._request("/metrics")


# ----------------------------------------------------------------------
# One-shot CLI: submit, wait, fetch
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.client",
        description="submit a plan to a running repro serve daemon and "
        "wait for its artifact",
    )
    parser.add_argument("plan", help="plan file (YAML or JSON)")
    parser.add_argument("--url", default="http://127.0.0.1:8321")
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the finished artifact to PATH",
    )
    parser.add_argument("--timeout", type=float, default=600.0, metavar="S")
    parser.add_argument("--poll", type=float, default=0.2, metavar="S")
    args = parser.parse_args(argv)

    client = ServeClient(args.url)
    try:
        submitted = client.submit_file(args.plan)
    except protocol.PlanRejected as exc:
        for problem in exc.problems:
            obslog.warn(f"plan: {problem['where']}: {problem['message']}")
        return 2
    job_id = submitted["id"]
    obslog.info(f"submitted {args.plan} as {job_id} ({submitted['cells']} cells)")

    last_done = -1

    def narrate(status: Dict[str, Any]) -> None:
        # One line per newly-finished cell, driven by the status
        # document's progress block (absent while the job is queued).
        nonlocal last_done
        progress = status.get("progress") or {}
        total = progress.get("cells_total")
        if not total:
            return
        done = int(progress.get("executed") or 0) + int(
            progress.get("cached") or 0
        )
        if done == last_done:
            return
        last_done = done
        parts = [f"{job_id}: {done}/{total} cells"]
        cached = progress.get("cached")
        if cached:
            parts.append(f"{cached} cached")
        eta = progress.get("eta_s")
        if isinstance(eta, (int, float)) and done < total:
            parts.append(f"eta {eta:.1f}s")
        message = progress.get("message")
        if message:
            parts.append(str(message))
        obslog.info(", ".join(parts))

    status = client.wait(
        job_id, timeout_s=args.timeout, poll_s=args.poll, on_status=narrate
    )
    if status["state"] == protocol.STATE_FAILED:
        obslog.warn(f"job {job_id} failed: {status['error']}")
        return 1
    artifact = client.artifact(job_id)
    if args.out:
        atomic_write_json(args.out, artifact, indent=2)
        obslog.info(f"artifact: {args.out}")
    else:
        print(json.dumps(artifact, indent=2))
    if status["state"] == protocol.STATE_PARTIAL:
        obslog.warn(
            f"job {job_id} finished partial: {status['quarantined']} "
            "quarantined cell(s) absent from the artifact"
        )
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
