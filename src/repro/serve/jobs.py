"""Job queue of the experiment service: one shared cache, one pool.

Submissions become :class:`Job` records processed by a single worker
thread, one job at a time, each fanned out over the same
:func:`~repro.sim.parallel.run_grid` worker pool and the same
:class:`~repro.sim.cache.ResultCache` directory. That pairing is what
makes concurrent clients cheap: jobs serialize at the queue, so by the
time the second submission of an identical plan runs, every cell is
already on disk and replays as a cache hit — each distinct cell is
simulated exactly once no matter how many clients ask for it
(WoLFRaM's shared-remapping-state shape: many writers, one store).

Execution reuses the offline machinery unchanged — the same
fault-tolerant executor, retry policy, and quarantine semantics as
``sweep --plan`` — so a job's ``results`` section is bit-identical to
running its plan offline.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.ledger import CACHE_HIT, COLLECT, SweepLedger, SweepProgress
from ..obs.metrics import MetricsRegistry
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from ..sim.cache import ResultCache, result_to_dict
from ..sim.ftexec import RetryPolicy
from ..sim.parallel import run_grid
from ..sim.plan import ExpandedPlan, cell_slug, expand
from ..errors import PlanError
from . import protocol

#: Metric names the serve-smoke CI job and the tests key off.
JOBS_SUBMITTED_TOTAL = "repro_serve_jobs_submitted_total"
JOBS_REJECTED_TOTAL = "repro_serve_jobs_rejected_total"
JOBS_COMPLETED_TOTAL = "repro_serve_jobs_completed_total"
JOBS_PARTIAL_TOTAL = "repro_serve_jobs_partial_total"
JOBS_FAILED_TOTAL = "repro_serve_jobs_failed_total"
QUEUE_DEPTH = "repro_serve_queue_depth"
JOB_WALL_SECONDS = "repro_serve_job_wall_seconds"
CELLS_EXECUTED_TOTAL = "repro_serve_cells_executed_total"
CELL_WALL_SECONDS = "repro_serve_cell_wall_seconds"
CACHE_LOOKUP_SECONDS = "repro_serve_cache_lookup_seconds"
CACHE_HITS = "repro_serve_cache_hits"
CACHE_MISSES = "repro_serve_cache_misses"
CACHE_STORES = "repro_serve_cache_stores"

_STOP = object()


@dataclass
class Job:
    """One submitted plan moving through the queue."""

    id: str
    plan: ExpandedPlan
    source: str
    state: str = protocol.STATE_QUEUED
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: Uncached cells executed so far (ledger ``collect`` count).
    executed_cells: int = 0
    #: Cells served from the shared cache (ledger ``cache_hit`` count).
    cached_cells: int = 0
    quarantined: int = 0
    #: Latest per-cell narration line from the executor (the text the
    #: old progress callback used to drop on the floor).
    last_message: Optional[str] = None
    error: Optional[str] = None
    artifact: Optional[Dict[str, Any]] = None
    #: Live progress listener, attached while the job runs; its
    #: snapshot backs the status document's ``progress`` block.
    tracker: Optional[SweepProgress] = field(default=None, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in protocol.TERMINAL_STATES


class JobManager:
    """Queue + worker thread + shared cache behind the HTTP surface.

    Thread model: HTTP handler threads call :meth:`submit` and the
    read-only accessors; exactly one worker thread (started by
    :meth:`start`) mutates job state past ``queued``. All shared state
    is guarded by one lock; the executor itself runs outside it.
    """

    def __init__(
        self,
        cache: Optional[ResultCache] = None,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.cache = cache
        self.pool_jobs = jobs
        self.retry = retry
        self.timeout_s = timeout_s
        self.cost_model = cost_model
        self.registry = registry if registry is not None else MetricsRegistry()
        self.started_unix = time.time()
        self._queue: "queue.Queue" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._serial = 0
        self._worker: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-serve-worker", daemon=True
        )
        self._worker.start()

    def stop(self, timeout_s: float = 30.0) -> None:
        if self._worker is None:
            return
        self._queue.put(_STOP)
        self._worker.join(timeout_s)
        self._worker = None

    # ------------------------------------------------------------------
    # Submission (HTTP handler threads)
    # ------------------------------------------------------------------
    def submit(self, document: Any, source: str = "<POST /jobs>") -> Job:
        """Validate and enqueue one plan document.

        Raises :class:`~repro.serve.protocol.PlanRejected` — the HTTP
        422 path, carrying the *complete* precheck problem list — for
        anything the offline CLI would exit 2 on.
        """
        try:
            protocol.validate_submission(document)
            plan = expand(document, source=source)
        except PlanError as exc:
            self._counter(JOBS_REJECTED_TOTAL, "plans failing precheck").inc()
            raise protocol.PlanRejected(
                [
                    {"where": problem.where, "message": problem.message}
                    for problem in exc.problems
                ]
            ) from exc
        except protocol.PlanRejected:
            self._counter(JOBS_REJECTED_TOTAL, "plans failing precheck").inc()
            raise
        if not plan.cells:
            self._counter(JOBS_REJECTED_TOTAL, "plans failing precheck").inc()
            raise protocol.PlanRejected.single(
                "axes",
                f"plan {plan.name!r} expands to no grid cells (a "
                "figures-only plan?); the service runs grids — execute "
                "figure plans offline with 'figures --plan'",
            )
        with self._lock:
            self._serial += 1
            job = Job(id=f"job-{self._serial:06d}", plan=plan, source=source)
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._counter(JOBS_SUBMITTED_TOTAL, "plans accepted into the queue").inc()
        self._queue.put(job)
        self._update_queue_gauge()
        return job

    # ------------------------------------------------------------------
    # Worker thread
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            self._run_job(item)
            self._update_queue_gauge()

    def _run_job(self, job: Job) -> None:
        # In-memory flight recorder: events reach the listeners below
        # (live counters, the /jobs/<id> progress block, /metrics
        # histograms) but nothing touches disk and the results stay
        # bit-identical to an offline, unrecorded sweep.
        tracker = SweepProgress()
        ledger = SweepLedger()
        ledger.add_listener(tracker)
        ledger.add_listener(
            lambda record: self._on_ledger_event(job, tracker, record)
        )
        with self._lock:
            job.state = protocol.STATE_RUNNING
            job.started_unix = time.time()
            job.tracker = tracker

        def progress(message: str) -> None:
            # Per-cell narration from the executor; keep the latest
            # line so the status document can say what ran last.
            with self._lock:
                job.last_message = message

        try:
            results, stats = run_grid(
                job.plan.cells,
                self.cost_model,
                jobs=self.pool_jobs,
                cache=self.cache,
                progress=progress,
                retry=self.retry,
                timeout_s=self.timeout_s,
                ledger=ledger,
            )
        except Exception as exc:  # keep the daemon alive; the job dies
            with self._lock:
                job.state = protocol.STATE_FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_unix = time.time()
            self._counter(JOBS_FAILED_TOTAL, "jobs whose executor raised").inc()
            self._observe_wall(job)
            return
        # Same artifact shape as `sweep --plan`: SweepStats plus the
        # deterministic results section (and job metadata on the side —
        # extra keys, never different ones).
        payload = stats.to_dict()
        payload["results"] = [result_to_dict(result) for result in results]
        payload["job"] = {
            "id": job.id,
            "plan": job.plan.name,
            "source": job.source,
            "submitted_unix": job.submitted_unix,
        }
        quarantined = len(stats.fault_tolerance.quarantined)
        with self._lock:
            job.artifact = payload
            job.quarantined = quarantined
            job.state = (
                protocol.STATE_PARTIAL if quarantined else protocol.STATE_COMPLETED
            )
            job.finished_unix = time.time()
        self._counter(
            JOBS_PARTIAL_TOTAL if quarantined else JOBS_COMPLETED_TOTAL,
            "jobs finishing with quarantined cells"
            if quarantined
            else "jobs finishing cleanly",
        ).inc()
        self._observe_wall(job)
        self._update_cache_gauges()

    # ------------------------------------------------------------------
    # Read side (HTTP handler threads)
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def job_ids(self) -> List[str]:
        with self._lock:
            return list(self._order)

    def status(self, job: Job) -> Dict[str, Any]:
        with self._lock:
            wall = None
            if job.started_unix is not None:
                end = job.finished_unix or time.time()
                wall = end - job.started_unix
            return {
                "schema": protocol.JOB_SCHEMA,
                "id": job.id,
                "state": job.state,
                "plan": job.plan.name,
                "source": job.source,
                "cells": len(job.plan.cells),
                "cells_total": len(job.plan.cells),
                "executed_cells": job.executed_cells,
                "cached_cells": job.cached_cells,
                "quarantined": job.quarantined,
                "progress": (
                    protocol.progress_payload(
                        job.tracker.snapshot(), job.last_message
                    )
                    if job.tracker is not None
                    else None
                ),
                "submitted_unix": job.submitted_unix,
                "started_unix": job.started_unix,
                "finished_unix": job.finished_unix,
                "wall_s": wall,
                "error": job.error,
                "links": protocol.job_links(job.id),
            }

    def cell_index(self, job: Job) -> List[Dict[str, Any]]:
        """Per-cell directory: slug per plan cell, in plan order."""
        return [
            {"index": index, "slug": cell_slug(config)}
            for index, config in enumerate(job.plan.cells)
        ]

    def health(self) -> Dict[str, Any]:
        with self._lock:
            states = {state: 0 for state in (protocol.STATE_QUEUED,
                                             protocol.STATE_RUNNING,
                                             *protocol.TERMINAL_STATES)}
            for job in self._jobs.values():
                states[job.state] += 1
            worker_alive = self._worker is not None and self._worker.is_alive()
        payload: Dict[str, Any] = {
            "schema": protocol.PROTOCOL_SCHEMA,
            "status": "ok" if worker_alive else "starting",
            "uptime_s": time.time() - self.started_unix,
            "queue": states,
            "pool": {
                "jobs": self.pool_jobs,
                "retry": protocol.describe_retry(self.retry),
                "timeout_s": self.timeout_s,
                "worker_alive": worker_alive,
            },
            "cache": (
                {"dir": str(self.cache.root), **self.cache.counters()}
                if self.cache is not None
                else None
            ),
        }
        return payload

    # ------------------------------------------------------------------
    # Metrics plumbing
    # ------------------------------------------------------------------
    def _on_ledger_event(
        self, job: Job, tracker: SweepProgress, record: Dict[str, Any]
    ) -> None:
        """Ledger listener: fold one parent-side event into counters.

        Runs on the worker thread (parent-side emits only), so the job
        fields it mirrors from ``tracker`` are guarded by the manager
        lock like every other job mutation.
        """
        ev = record.get("ev")
        wall = record.get("wall_s")
        if ev == COLLECT:
            self._counter(
                CELLS_EXECUTED_TOTAL, "uncached cells the pool executed"
            ).inc()
            if isinstance(wall, (int, float)):
                self.registry.histogram(
                    CELL_WALL_SECONDS, "wall time of one executed cell"
                ).observe(float(wall))
        elif ev == CACHE_HIT and isinstance(wall, (int, float)):
            self.registry.histogram(
                CACHE_LOOKUP_SECONDS, "wall time of one shared-cache hit"
            ).observe(float(wall))
        with self._lock:
            job.executed_cells = tracker.executed
            job.cached_cells = tracker.cached
            job.quarantined = tracker.quarantined

    def _counter(self, name: str, help_text: str):
        return self.registry.counter(name, help_text)

    def _update_queue_gauge(self) -> None:
        self.registry.gauge(
            QUEUE_DEPTH, "jobs waiting for the worker"
        ).set(self._queue.qsize())

    def _observe_wall(self, job: Job) -> None:
        if job.started_unix is not None and job.finished_unix is not None:
            self.registry.histogram(
                JOB_WALL_SECONDS, "job wall time, submission to terminal state"
            ).observe(job.finished_unix - job.started_unix)

    def _update_cache_gauges(self) -> None:
        if self.cache is None:
            return
        counters = self.cache.counters()
        self.registry.gauge(CACHE_HITS, "shared-cache hits").set(counters["hits"])
        self.registry.gauge(CACHE_MISSES, "shared-cache misses").set(
            counters["misses"]
        )
        self.registry.gauge(CACHE_STORES, "shared-cache stores").set(
            counters["stores"]
        )
