"""Wire protocol of the ``repro serve`` experiment service.

One place defines what travels over HTTP — schema tags, job states,
status/problem envelopes — so the server, the client, and the tests
never drift apart. Everything is plain JSON over stdlib HTTP; the
documents clients POST are ordinary ``repro.plan/1`` plans (the same
files ``sweep --plan`` executes), and the artifact a finished job
serves is shaped exactly like ``BENCH_sweep.json``.

Exit-code mapping
-----------------
The CLI's exit conventions translate onto HTTP status codes:

=====================  ==========================================
CLI                    service
=====================  ==========================================
exit 0 (clean sweep)   job state ``completed``, artifact HTTP 200
exit 2 (usage error)   HTTP 422 at submission, with the full
                       precheck problem list (never just the first)
exit 3 (partial)       job state ``partial``: quarantined cells are
                       absent from the artifact, which still serves
                       with HTTP 200
=====================  ==========================================

Worker-side failures that would crash an offline sweep put the job in
state ``failed`` (its ``error`` field carries the reason); the service
itself stays up.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Version tag on every status / problem envelope the service emits.
PROTOCOL_SCHEMA = "repro.serve/1"

#: Envelope of one job's status document.
JOB_SCHEMA = "repro.serve-job/1"

#: Envelope of a rejection (the precheck problem list).
PROBLEMS_SCHEMA = "repro.serve-problems/1"

# Job lifecycle: queued -> running -> one terminal state.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"  # exit-0 analog
STATE_PARTIAL = "partial"      # exit-3 analog: quarantined cells missing
STATE_FAILED = "failed"        # executor blew up; error says why

TERMINAL_STATES = (STATE_COMPLETED, STATE_PARTIAL, STATE_FAILED)

#: Content types the service emits.
CONTENT_JSON = "application/json"
CONTENT_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"


class PlanRejected(Exception):
    """A submitted plan failed its precheck (the HTTP 422 path).

    ``problems`` is a list of ``{"where", "message"}`` dicts — the same
    shape :class:`~repro.errors.PlanError` renders on the CLI, every
    problem at once.
    """

    def __init__(self, problems: List[Dict[str, str]]) -> None:
        super().__init__(f"{len(problems)} plan problem(s)")
        self.problems = problems

    @classmethod
    def single(cls, where: str, message: str) -> "PlanRejected":
        return cls([{"where": where, "message": message}])


def problems_payload(problems: List[Dict[str, str]]) -> Dict[str, Any]:
    """The HTTP 422 response body."""
    return {"schema": PROBLEMS_SCHEMA, "problems": list(problems)}


def error_payload(message: str) -> Dict[str, Any]:
    """Body of a non-422 error response (400/404/405/409)."""
    return {"schema": PROTOCOL_SCHEMA, "error": message}


def progress_payload(
    snapshot: Dict[str, Any], message: Optional[str] = None
) -> Dict[str, Any]:
    """The ``progress`` block of a job status document.

    ``snapshot`` is a :meth:`repro.obs.ledger.SweepProgress.snapshot`
    dict (cells_total / executed / cached / quarantined / running /
    hit_rate / eta_s); ``message`` is the executor's latest per-cell
    narration line, or None before the first cell completes. The block
    is None until the job leaves ``queued``.
    """
    payload = dict(snapshot)
    payload["message"] = message
    return payload


def job_links(job_id: str) -> Dict[str, str]:
    """Hyperlinks a status document advertises for follow-up requests."""
    return {
        "self": f"/jobs/{job_id}",
        "artifact": f"/jobs/{job_id}/artifact",
        "cells": f"/jobs/{job_id}/cells",
    }


def validate_submission(document: Any) -> None:
    """Structural gate before the plan precheck proper.

    The precheck validates plan *content*; this rejects bodies the
    server cannot even hand to it — non-mapping documents and plans
    still carrying an ``include`` key (the server has no filesystem
    context to resolve includes against; :func:`repro.sim.plan.load_plan`
    merges and strips them client-side, which is what
    :meth:`repro.serve.client.ServeClient.submit_file` does).
    """
    if not isinstance(document, dict):
        raise PlanRejected.single(
            "<body>",
            f"plan must be a JSON mapping, got {type(document).__name__}",
        )
    if "include" in document:
        raise PlanRejected.single(
            "include",
            "the service cannot resolve file includes; merge them "
            "client-side (load_plan strips the key) and submit the "
            "flattened document",
        )


def describe_retry(policy: Optional[Any]) -> Optional[Dict[str, Any]]:
    """JSON view of a RetryPolicy for /healthz (None = plain pool)."""
    if policy is None:
        return None
    return {
        "max_attempts": policy.max_attempts,
        "base_delay_s": policy.base_delay_s,
        "max_delay_s": policy.max_delay_s,
        "jitter": policy.jitter,
    }
