"""HTTP surface of the experiment service (stdlib ``http.server``).

Endpoints
---------
``POST /jobs``                 submit a ``repro.plan/1`` document (JSON
                               body) — 201 with the job status, 422
                               with the full precheck problem list
``GET  /jobs``                 list every job's status
``GET  /jobs/<id>``            one job's status (poll this)
``GET  /jobs/<id>/artifact``   finished job's ``BENCH_sweep.json``-shaped
                               artifact (409 while queued/running)
``GET  /jobs/<id>/cells``      per-cell directory (index -> slug)
``GET  /jobs/<id>/cells/<n>``  one cell's RunResult document
``GET  /healthz``              pool / queue / cache state
``GET  /metrics``              Prometheus text exposition

The server is a ``ThreadingHTTPServer``: every request gets a thread,
so scrapes and submissions proceed while a job runs. All of them talk
to the single :class:`~repro.serve.jobs.JobManager` worker, the single
shared :class:`~repro.sim.cache.ResultCache`, and the single (lock-
protected) :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..obs import log as obslog
from ..obs.metrics import MetricsRegistry
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from ..sim.cache import ResultCache
from ..sim.ftexec import RetryPolicy
from . import protocol
from .jobs import JobManager

#: Largest accepted POST body; a plan document is a few KB, so this is
#: generous while still bounding a hostile or confused client.
MAX_BODY_BYTES = 4 * 1024 * 1024

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)$")
_ARTIFACT_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)/artifact$")
_CELLS_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)/cells$")
_CELL_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)/cells/(\d+)$")


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        obslog.debug(f"serve: {self.address_string()} {format % args}")

    @property
    def manager(self) -> JobManager:
        return self.server.service.manager  # type: ignore[attr-defined]

    @property
    def registry(self) -> MetricsRegistry:
        return self.server.service.registry  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def _send_payload(
        self, code: int, body: bytes, content_type: str
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8") + b"\n"
        self._send_payload(code, body, protocol.CONTENT_JSON)

    def _send_error_json(self, code: int, message: str) -> None:
        self._send_json(code, protocol.error_payload(message))

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send_error_json(400, "malformed Content-Length")
            return None
        if length <= 0:
            self._send_error_json(400, "empty body; POST a repro.plan/1 document")
            return None
        if length > MAX_BODY_BYTES:
            self._send_error_json(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server convention)
        if self.path.rstrip("/") != "/jobs":
            self._send_error_json(404, f"no POST route {self.path!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            document = json.loads(body)
        except ValueError as exc:
            self._send_error_json(400, f"body is not valid JSON: {exc}")
            return
        try:
            job = self.manager.submit(
                document, source=f"<POST /jobs from {self.address_string()}>"
            )
        except protocol.PlanRejected as exc:
            # The CLI's exit-2 precheck semantics, as a 422 with every
            # problem at once.
            self._send_json(422, protocol.problems_payload(exc.problems))
            return
        self._send_json(201, self.manager.status(job))

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, self.manager.health())
            return
        if path == "/metrics":
            body = self.registry.render_prometheus().encode("utf-8")
            self._send_payload(200, body, protocol.CONTENT_PROMETHEUS)
            return
        if path.rstrip("/") == "/jobs":
            manager = self.manager
            statuses = []
            for job_id in manager.job_ids():
                job = manager.get(job_id)
                if job is not None:
                    statuses.append(manager.status(job))
            self._send_json(
                200, {"schema": protocol.PROTOCOL_SCHEMA, "jobs": statuses}
            )
            return
        match = _JOB_PATH.match(path)
        if match:
            job = self.manager.get(match.group(1))
            if job is None:
                self._send_error_json(404, f"no job {match.group(1)!r}")
                return
            self._send_json(200, self.manager.status(job))
            return
        match = _ARTIFACT_PATH.match(path)
        if match:
            self._serve_artifact(match.group(1))
            return
        match = _CELLS_PATH.match(path)
        if match:
            job = self.manager.get(match.group(1))
            if job is None:
                self._send_error_json(404, f"no job {match.group(1)!r}")
                return
            self._send_json(
                200,
                {
                    "schema": protocol.PROTOCOL_SCHEMA,
                    "job": job.id,
                    "cells": self.manager.cell_index(job),
                },
            )
            return
        match = _CELL_PATH.match(path)
        if match:
            self._serve_cell(match.group(1), int(match.group(2)))
            return
        self._send_error_json(404, f"no route {path!r}")

    def _finished_artifact(
        self, job_id: str
    ) -> Tuple[Optional[Dict[str, Any]], Optional[Tuple[int, str]]]:
        job = self.manager.get(job_id)
        if job is None:
            return None, (404, f"no job {job_id!r}")
        if job.state == protocol.STATE_FAILED:
            return None, (409, f"job {job_id} failed: {job.error}")
        if not job.terminal:
            return None, (
                409,
                f"job {job_id} is {job.state}; poll /jobs/{job_id} until a "
                f"terminal state ({', '.join(protocol.TERMINAL_STATES)})",
            )
        assert job.artifact is not None
        return job.artifact, None

    def _serve_artifact(self, job_id: str) -> None:
        artifact, problem = self._finished_artifact(job_id)
        if problem is not None:
            self._send_error_json(*problem)
            return
        self._send_json(200, artifact)

    def _serve_cell(self, job_id: str, index: int) -> None:
        artifact, problem = self._finished_artifact(job_id)
        if problem is not None:
            self._send_error_json(*problem)
            return
        results = artifact["results"]
        if not 0 <= index < len(results):
            self._send_error_json(
                404,
                f"cell index {index} out of range: job {job_id} holds "
                f"{len(results)} result(s) (quarantined cells are absent)",
            )
            return
        self._send_json(
            200,
            {
                "schema": protocol.PROTOCOL_SCHEMA,
                "job": job_id,
                "index": index,
                "result": results[index],
            },
        )


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, handler, service: "ExperimentService") -> None:
        self.service = service
        super().__init__(address, handler)


class ExperimentService:
    """The assembled daemon: job manager + threaded HTTP server.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)``. :meth:`start` runs the server in a
    background thread and returns (tests, embedding); the CLI calls
    :meth:`serve_forever` instead and blocks until interrupted.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8321,
        cache: Optional[ResultCache] = None,
        jobs: int = 1,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        registry: Optional[MetricsRegistry] = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.manager = JobManager(
            cache=cache,
            jobs=jobs,
            retry=retry,
            timeout_s=timeout_s,
            registry=self.registry,
            cost_model=cost_model,
        )
        self._httpd = _Server((host, port), _Handler, service=self)
        self._thread: Optional[threading.Thread] = None

    @property
    def cache(self) -> Optional[ResultCache]:
        return self.manager.cache

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self, worker: bool = True) -> None:
        """Serve in a background thread.

        ``worker=False`` brings up only the HTTP surface with the job
        worker parked — tests use it to observe pre-terminal states
        deterministically; call ``manager.start()`` later to drain.
        """
        if worker:
            self.manager.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serve-http",
                daemon=True,
            )
            self._thread.start()

    def serve_forever(self) -> None:
        self.manager.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(5.0)
            self._thread = None
        self.manager.stop()

    def __enter__(self) -> "ExperimentService":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
