"""Experiment harness: per-run machinery, aggregation, figure harnesses,
and the lifetime / binning / swap studies from the paper's discussion."""

from .binning import evaluate_bins, render_binning_report, sample_population
from .cache import ResultCache, cache_key, code_fingerprint
from .experiment import BenchmarkMeasurement, ExperimentRunner, geomean
from .lifetime import (
    LifetimeResult,
    retire_on_first_failure_lifetime,
    run_lifetime,
    write_heavy,
)
from .machine import RunConfig, RunResult, min_heap_bytes, run_benchmark
from .parallel import SweepStats, default_jobs, run_grid
from .plan import ExpandedPlan, PlanProblem, cell_slug, load_and_expand, precheck
from .report import render_bars, render_series, render_table
from .swap_study import SwapStudyResult, render_swap_study, run_swap_study

__all__ = [
    "evaluate_bins",
    "render_binning_report",
    "sample_population",
    "ResultCache",
    "cache_key",
    "code_fingerprint",
    "SweepStats",
    "default_jobs",
    "run_grid",
    "ExpandedPlan",
    "PlanProblem",
    "cell_slug",
    "load_and_expand",
    "precheck",
    "BenchmarkMeasurement",
    "ExperimentRunner",
    "geomean",
    "LifetimeResult",
    "retire_on_first_failure_lifetime",
    "run_lifetime",
    "write_heavy",
    "RunConfig",
    "RunResult",
    "min_heap_bytes",
    "run_benchmark",
    "render_bars",
    "render_series",
    "render_table",
    "SwapStudyResult",
    "render_swap_study",
    "run_swap_study",
]
