"""Chip binning under fabrication defects (paper section 7.4).

The paper's closing argument: as cells approach atomic scale, some are
*born dead*, and discarding every chip with more than a handful of
defects wrecks yield. With a failure-aware stack, chips with arbitrary
defect counts remain sellable — manufacturers can bin them by defect
density and price them accordingly, like CPU frequency binning.

:func:`bin_chips` samples a population of chips with log-normally
distributed born-dead densities, assigns each to a bin, and
:func:`evaluate_bins` measures what a failure-aware runtime gets out of
a representative chip of each bin: usable capacity and performance
overhead. Together they quantify the yield the paper's design recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.generator import FailureModel
from .machine import RunConfig, run_benchmark

#: Default bins: (name, max born-dead line fraction). Chips above the
#: last bin are true scrap even for a failure-aware stack.
DEFAULT_BINS: Tuple[Tuple[str, float], ...] = (
    ("premium", 0.001),
    ("standard", 0.01),
    ("value", 0.10),
    ("salvage", 0.35),
)


@dataclass
class ChipPopulation:
    """Sampled fabrication outcomes for one production run."""

    densities: List[float]
    bins: Dict[str, List[float]] = field(default_factory=dict)
    scrap: List[float] = field(default_factory=list)

    def yield_fraction(self, include_scrap: bool = False) -> float:
        sellable = sum(len(chips) for chips in self.bins.values())
        total = len(self.densities)
        if total == 0:
            return 0.0
        return (sellable + (len(self.scrap) if include_scrap else 0)) / total

    def traditional_yield(self, max_defect_fraction: float = 0.001) -> float:
        """Yield under discard-all-but-nearly-perfect policy."""
        if not self.densities:
            return 0.0
        good = sum(1 for d in self.densities if d <= max_defect_fraction)
        return good / len(self.densities)


def sample_population(
    n_chips: int = 1000,
    median_density: float = 0.004,
    sigma: float = 1.6,
    bins: Sequence[Tuple[str, float]] = DEFAULT_BINS,
    seed: int = 0,
) -> ChipPopulation:
    """Sample chips with log-normal born-dead line densities and bin them."""
    if n_chips < 0:
        raise ValueError("n_chips must be >= 0")
    rng = random.Random(seed)
    import math

    mu = math.log(median_density)
    densities = [
        min(1.0, rng.lognormvariate(mu, sigma)) for _ in range(n_chips)
    ]
    population = ChipPopulation(densities=densities)
    ordered = sorted(bins, key=lambda item: item[1])
    population.bins = {name: [] for name, _ in ordered}
    for density in densities:
        for name, ceiling in ordered:
            if density <= ceiling:
                population.bins[name].append(density)
                break
        else:
            population.scrap.append(density)
    return population


@dataclass
class BinReport:
    """Measured behaviour of a representative chip from one bin."""

    name: str
    ceiling: float
    chips: int
    representative_density: float
    usable_fraction: float
    overhead: Optional[float]


def evaluate_bins(
    population: ChipPopulation,
    bins: Sequence[Tuple[str, float]] = DEFAULT_BINS,
    workload: str = "antlr",
    scale: float = 0.35,
    clustering_pages: int = 2,
    seed: int = 0,
) -> List[BinReport]:
    """Run the failure-aware stack on a representative chip per bin."""
    baseline = run_benchmark(
        RunConfig(workload=workload, heap_multiplier=2.0, scale=scale, seed=seed)
    )
    reports: List[BinReport] = []
    for name, ceiling in bins:
        chips = population.bins.get(name, [])
        if not chips:
            reports.append(BinReport(name, ceiling, 0, 0.0, 1.0, None))
            continue
        # The worst chip of the bin bounds the bin's guarantee.
        density = max(chips)
        config = RunConfig(
            workload=workload,
            heap_multiplier=2.0,
            failure_model=FailureModel(
                rate=density, hw_region_pages=clustering_pages
            ),
            scale=scale,
            seed=seed,
        )
        result = run_benchmark(config)
        overhead = (
            result.time_units / baseline.time_units if result.completed else None
        )
        reports.append(
            BinReport(
                name=name,
                ceiling=ceiling,
                chips=len(chips),
                representative_density=density,
                usable_fraction=1.0 - density,
                overhead=overhead,
            )
        )
    return reports


def render_binning_report(
    population: ChipPopulation, reports: Sequence[BinReport]
) -> str:
    lines = [
        "Chip binning with a failure-aware runtime (paper section 7.4)",
        "=" * 61,
        f"chips fabricated: {len(population.densities)}",
        f"traditional yield (discard beyond 0.1% defects): "
        f"{population.traditional_yield():.1%}",
        f"failure-aware sellable yield: {population.yield_fraction():.1%}",
        "",
        f"{'bin':10s} {'defects <=':>11s} {'chips':>7s} {'usable':>8s} {'overhead':>9s}",
        "-" * 50,
    ]
    for report in reports:
        overhead = f"{report.overhead:.3f}x" if report.overhead else "DNF"
        lines.append(
            f"{report.name:10s} {report.ceiling:>10.1%} {report.chips:>7d} "
            f"{report.usable_fraction:>7.1%} {overhead:>9s}"
        )
    if population.scrap:
        lines.append(f"{'scrap':10s} {'beyond':>11s} {len(population.scrap):>7d}")
    return "\n".join(lines)
