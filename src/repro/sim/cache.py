"""Persistent, content-addressed result cache for experiment runs.

Every figure and sweep executes cells of the same (workload x config x
seed) grid; this module lets completed cells survive the process so
repeated invocations — and concurrent workers — skip them.

Keys are a SHA-256 over three ingredients:

* the full :class:`~repro.sim.machine.RunConfig` (including the failure
  model),
* the :class:`~repro.runtime.time_model.CostModel` constants — two
  runners with different cost models must never share results,
* a code-version fingerprint (hash of the ``repro`` package sources),
  so editing the simulator invalidates stale entries automatically.

Entries are one JSON file each, sharded by key prefix, written with a
temp-file + rename so concurrent processes never observe a torn entry.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Optional, Union

from ..faults.generator import FailureModel
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from .machine import RunConfig, RunResult

#: Bump manually on cache-format (not simulator) changes.
SCHEMA_VERSION = 1

#: Temp files younger than this survive :meth:`ResultCache.sweep_orphans`.
#: A live ``put`` holds its temp file for milliseconds (one JSON dump
#: plus a rename), so anything this old was abandoned by a killed
#: writer; sweeping younger files would race writers in other
#: processes — the daemon and a sweep sharing one cache directory.
ORPHAN_MIN_AGE_S = 60.0


# ----------------------------------------------------------------------
# Serialization: RunConfig / RunResult <-> plain JSON dicts
# ----------------------------------------------------------------------
#: Policy fields are serialized only when non-default, so artifacts and
#: cache keys of default-policy runs stay byte-identical to those the
#: pre-policy code produced (the CI golden-artifact diff relies on it).
_POLICY_DEFAULTS = {
    "wear_policy": "none",
    "pool_policy": "paper",
    "placement_policy": "paper",
}


def config_to_dict(config: RunConfig) -> dict:
    data = dataclasses.asdict(config)
    # asdict already recursed into the frozen FailureModel dataclass.
    for name, default in _POLICY_DEFAULTS.items():
        if data.get(name) == default:
            del data[name]
    return data


def config_from_dict(data: dict) -> RunConfig:
    data = dict(data)
    data["failure_model"] = FailureModel(**data["failure_model"])
    # Policy fields absent at defaults (see _POLICY_DEFAULTS); the
    # dataclass defaults reconstruct them.
    return RunConfig(**data)


def result_to_dict(result: RunResult) -> dict:
    data = dataclasses.asdict(result)
    data["config"] = config_to_dict(result.config)
    return data


def result_from_dict(data: dict) -> RunResult:
    data = dict(data)
    data["config"] = config_from_dict(data["config"])
    return RunResult(**data)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (order-independent).

    Any edit to the simulator invalidates previously cached results;
    the hash is computed once per process. The hot-path kernels
    (``repro/heap/line_table.py``, ``repro/heap/block.py``, the OS
    failure table) are ordinary package sources, so editing a kernel
    rolls every key — no stale cross-version hits. The *runtime*
    ``REPRO_KERNELS`` fast/reference switch deliberately does NOT enter
    the key: both paths are property-tested and CI-enforced to produce
    bit-identical ``RunResult`` payloads, so sharing entries between
    them is correct.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def cache_key(
    config: RunConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    fingerprint: Optional[str] = None,
) -> str:
    """Content address of one grid cell."""
    payload = {
        "schema": SCHEMA_VERSION,
        "config": config_to_dict(config),
        "cost_model": dataclasses.asdict(cost_model),
        "code": fingerprint if fingerprint is not None else code_fingerprint(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
class ResultCache:
    """On-disk RunResult store shared safely between processes.

    Parameters
    ----------
    root:
        Cache directory (created on first store).
    cost_model:
        Model baked into every key issued by this cache instance.
    fingerprint:
        Override for the code-version fingerprint (tests use this to
        exercise invalidation without editing source files).
    """

    def __init__(
        self,
        root: Union[str, Path],
        cost_model: CostModel = DEFAULT_COST_MODEL,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root)
        self.cost_model = cost_model
        self.fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def key(self, config: RunConfig) -> str:
        return cache_key(config, self.cost_model, self.fingerprint)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    def get(self, config: RunConfig) -> Optional[RunResult]:
        path = self._path(self.key(config))
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        # An entry from a different cache-format version is a miss even
        # if its fields happen to align with today's RunResult — the
        # key rolls with SCHEMA_VERSION, but a directory shared with a
        # newer writer can still hold foreign-schema files.
        if not isinstance(data, dict) or data.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            result = result_from_dict(data["result"])
        except (KeyError, TypeError):
            # Corrupt or written by an incompatible version: treat as miss.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def contains(self, config: RunConfig) -> bool:
        """Whether :meth:`get` would hit, without deserializing.

        The probe for dry runs estimating cache hits: it parses the
        entry and checks the schema tag (so corrupt, truncated, or
        foreign-schema files report as misses, matching :meth:`get`)
        but skips the RunResult reconstruction and never touches the
        hit/miss counters (an estimate must not skew the statistics of
        the real run that follows).
        """
        try:
            data = json.loads(self._path(self.key(config)).read_text())
        except (OSError, ValueError):
            return False
        return (
            isinstance(data, dict)
            and data.get("schema") == SCHEMA_VERSION
            and "result" in data
        )

    def put(self, config: RunConfig, result: RunResult) -> None:
        path = self._path(self.key(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": SCHEMA_VERSION, "result": result_to_dict(result)}
        # Atomic publish: a concurrent reader sees the old state or the
        # new one, never a partial file. A concurrent sweep_orphans may
        # unlink the temp file between the dump and the rename (the age
        # threshold makes that vanishingly rare, not impossible); the
        # write retries once through a fresh temp file.
        for attempt in range(2):
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, path)
            except FileNotFoundError:
                if attempt == 0:
                    continue
                raise
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            break
        self.stores += 1

    def sweep_orphans(self, min_age_s: float = ORPHAN_MIN_AGE_S) -> int:
        """Delete temp files abandoned by killed writers; returns the count.

        :meth:`put` publishes atomically, so a worker killed mid-write
        can only ever leak its unrenamed ``*.tmp`` file — harmless to
        correctness but accumulating forever. Long-lived entry points
        call this on startup. Only temp files older than ``min_age_s``
        are swept: a younger one may belong to a *live* writer in
        another process, and unlinking it would make that writer's
        ``os.replace`` fail (``put`` retries once, but the sweep should
        not be the thing forcing retries). Pass ``min_age_s=0`` to
        reclaim everything, e.g. when no writer can possibly be alive.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - min_age_s
        for orphan in self.root.glob("*/*.tmp"):
            try:
                if orphan.stat().st_mtime > cutoff:
                    continue
                orphan.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    # ------------------------------------------------------------------
    def counters(self) -> dict:
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def entries(self) -> Iterable[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())
