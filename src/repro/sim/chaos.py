"""Deterministic fault injection for sweep workers (the chaos harness).

The fault-tolerant executor (:mod:`repro.sim.ftexec`) promises that a
sweep survives worker deaths; this module manufactures those deaths on
demand so the promise is testable — in unit tests and in the CI
chaos-smoke job — without ever touching production code paths.

Injection is **deterministic**: whether attempt ``a`` of cell ``i``
dies is a pure function of (seed, i, a). Retried attempts therefore
see independent draws and a sweep with injection probability < 1
always terminates the same way for the same seed, which is what lets
the chaos tests assert *bit-identical results* rather than "usually
works".

Activation is explicit only: either a :class:`ChaosConfig` handed to
the executor, or the ``REPRO_CHAOS`` environment variable (read in the
worker process), formatted ``mode:probability[:seed]`` — e.g.
``kill:0.4`` or ``raise:0.25:7``. Unset means fully disabled.
"""

from __future__ import annotations

import os
import random
import signal
from dataclasses import dataclass
from typing import Mapping, Optional

from ..errors import ChaosError, ConfigError

#: Environment variable that arms the harness in worker processes.
CHAOS_ENV = "REPRO_CHAOS"

#: Supported failure modes: die without a word, or die loudly.
CHAOS_MODES = ("kill", "raise")


@dataclass(frozen=True)
class ChaosConfig:
    """One armed failure mode.

    ``kill`` sends the worker SIGKILL — the harshest death, no cleanup,
    no traceback, exactly what an OOM-killer or a yanked node does.
    ``raise`` throws :class:`~repro.errors.ChaosError` inside the cell,
    modelling a crashing (but still talkative) worker.
    """

    mode: str
    probability: float
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in CHAOS_MODES:
            raise ConfigError(
                f"unknown chaos mode {self.mode!r}; choose from {CHAOS_MODES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("chaos probability must be in [0, 1]")

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse ``mode:probability[:seed]`` (the ``REPRO_CHAOS`` format)."""
        parts = spec.split(":")
        if len(parts) not in (2, 3):
            raise ConfigError(
                f"bad chaos spec {spec!r}; expected mode:probability[:seed]"
            )
        try:
            probability = float(parts[1])
            seed = int(parts[2]) if len(parts) == 3 else 0
        except ValueError as exc:
            raise ConfigError(f"bad chaos spec {spec!r}: {exc}") from exc
        return cls(mode=parts[0], probability=probability, seed=seed)

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None
    ) -> Optional["ChaosConfig"]:
        """The armed config, or None when ``REPRO_CHAOS`` is unset/empty."""
        spec = (environ if environ is not None else os.environ).get(CHAOS_ENV, "")
        return cls.parse(spec) if spec else None

    # ------------------------------------------------------------------
    def should_injure(self, cell_index: int, attempt: int) -> bool:
        """Deterministic per-(cell, attempt) draw against ``probability``."""
        rng = random.Random((self.seed << 24) ^ (cell_index << 8) ^ attempt)
        return rng.random() < self.probability

    def injure(self, cell_index: int, attempt: int) -> None:
        """Die now, in the configured mode. Only call from a worker."""
        if self.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        raise ChaosError(
            f"injected failure in cell {cell_index} attempt {attempt} "
            f"(mode={self.mode}, p={self.probability}, seed={self.seed})"
        )


def maybe_injure(
    chaos: Optional[ChaosConfig], cell_index: int, attempt: int
) -> None:
    """Worker-side hook: die iff the harness is armed and the draw says so."""
    if chaos is not None and chaos.should_injure(cell_index, attempt):
        chaos.injure(cell_index, attempt)
