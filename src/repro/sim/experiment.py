"""Experiment aggregation: seeds, normalization, geometric means.

The paper's methodology (section 5): multiple invocations per
configuration, geometric means across benchmarks, normalization to
unmodified Sticky Immix, and truncated curves when a configuration
cannot run every benchmark. These helpers implement exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from .machine import RunConfig, RunResult, run_benchmark


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; empty input returns nan."""
    if not values:
        return float("nan")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class BenchmarkMeasurement:
    """Aggregated result of one benchmark at one configuration."""

    workload: str
    completed: bool
    mean_time: float
    mean_ms: float
    mean_perfect_demand: float
    results: List[RunResult]


class ExperimentRunner:
    """Runs (workloads x configs x seeds) grids with caching."""

    def __init__(
        self,
        seeds: Sequence[int] = (0, 1),
        cost_model: CostModel = DEFAULT_COST_MODEL,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.seeds = tuple(seeds)
        self.cost_model = cost_model
        self.progress = progress or (lambda message: None)
        self._cache: Dict[RunConfig, RunResult] = {}

    # ------------------------------------------------------------------
    def run_one(self, config: RunConfig) -> RunResult:
        cached = self._cache.get(config)
        if cached is None:
            cached = run_benchmark(config, self.cost_model)
            self._cache[config] = cached
        return cached

    def measure(self, config: RunConfig) -> BenchmarkMeasurement:
        """Run all seeds of one (workload, configuration) pair."""
        results = [self.run_one(replace(config, seed=seed)) for seed in self.seeds]
        completed = [r for r in results if r.completed]
        self.progress(
            f"{config.workload} {config.failure_model.describe()} "
            f"L{config.immix_line} h{config.heap_multiplier:g}: "
            f"{'ok' if completed else 'DNF'}"
        )
        if not completed:
            return BenchmarkMeasurement(config.workload, False, float("nan"),
                                        float("nan"), float("nan"), results)
        return BenchmarkMeasurement(
            workload=config.workload,
            completed=True,
            mean_time=sum(r.time_units for r in completed) / len(completed),
            mean_ms=sum(r.time_ms for r in completed) / len(completed),
            mean_perfect_demand=sum(r.perfect_page_demand for r in completed)
            / len(completed),
            results=results,
        )

    # ------------------------------------------------------------------
    def normalized_geomean(
        self,
        workloads: Sequence[str],
        config: RunConfig,
        baseline: RunConfig,
    ) -> Optional[float]:
        """Geomean over benchmarks of time(config)/time(baseline).

        Returns None when any benchmark fails to complete — the paper
        discards aggregate points where some benchmark cannot run,
        which is what truncates its curves.
        """
        ratios = []
        for name in workloads:
            measured = self.measure(replace(config, workload=name))
            base = self.measure(replace(baseline, workload=name))
            if not measured.completed or not base.completed:
                return None
            ratios.append(measured.mean_time / base.mean_time)
        return geomean(ratios)

    def per_benchmark_overheads(
        self,
        workloads: Sequence[str],
        config: RunConfig,
        baseline: RunConfig,
    ) -> Dict[str, Optional[float]]:
        """time(config)/time(baseline) per benchmark; None marks DNF."""
        overheads: Dict[str, Optional[float]] = {}
        for name in workloads:
            measured = self.measure(replace(config, workload=name))
            base = self.measure(replace(baseline, workload=name))
            if not measured.completed or not base.completed:
                overheads[name] = None
            else:
                overheads[name] = measured.mean_time / base.mean_time
        return overheads

    def geomean_demand(
        self, workloads: Sequence[str], config: RunConfig
    ) -> Optional[float]:
        """Geomean perfect-page demand (figure 9b's metric)."""
        demands = []
        for name in workloads:
            measured = self.measure(replace(config, workload=name))
            if not measured.completed:
                return None
            demands.append(max(1.0, measured.mean_perfect_demand))
        return geomean(demands)
