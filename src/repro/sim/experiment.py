"""Experiment aggregation: seeds, normalization, geometric means.

The paper's methodology (section 5): multiple invocations per
configuration, geometric means across benchmarks, normalization to
unmodified Sticky Immix, and truncated curves when a configuration
cannot run every benchmark. These helpers implement exactly that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..obs.ledger import SweepLedger
from ..obs.trace import Tracer
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from .cache import ResultCache
from .ftexec import RetryPolicy
from .machine import RunConfig, RunResult, run_benchmark
from .parallel import SweepStats, run_grid


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; empty or degenerate input returns nan.

    A zero or negative value (a degenerate zero-time run) poisons the
    aggregate rather than crashing whole-figure aggregation; callers
    render nan as DNF via :func:`repro.sim.report.format_value`.
    """
    if not values or any(v <= 0 for v in values):
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class BenchmarkMeasurement:
    """Aggregated result of one benchmark at one configuration."""

    workload: str
    completed: bool
    mean_time: float
    mean_ms: float
    mean_perfect_demand: float
    results: List[RunResult]
    #: Seeds that completed / seeds attempted. Partial completion
    #: (``0 < seeds_completed < seeds_total``) means the means above
    #: average over a smaller sample than a fully-completed cell.
    seeds_completed: int = 0
    seeds_total: int = 0

    @property
    def partial(self) -> bool:
        return 0 < self.seeds_completed < self.seeds_total


class ExperimentRunner:
    """Runs (workloads x configs x seeds) grids with caching.

    Results are memoized per (config, cost model) in memory, and — when
    ``cache`` is supplied — persisted to disk so later processes skip
    completed cells. ``jobs > 1`` lets :meth:`prefetch` fan uncached
    cells out over worker processes; parallel execution is bit-identical
    to serial because each cell is deterministic and ordering is
    restored by the grid index.

    ``tracer_factory`` (config -> Tracer) threads a fresh tracer through
    every cell actually executed; ``trace_sink`` (config, tracer) is
    called right after each traced run so the caller can export the
    trace. Tracing composes badly with both worker processes (tracers
    do not cross process boundaries) and the disk cache (cached results
    carry no events), so a traced runner skips the disk-cache read and
    callers should keep ``jobs=1``; the in-memory memo still guarantees
    each unique cell is traced exactly once.

    ``retry``/``timeout_s`` route prefetch fan-outs through the
    fault-tolerant executor (:mod:`repro.sim.ftexec`). Cells it
    quarantines simply stay unmemoized; aggregation then re-runs them
    inline via :meth:`run_one` — a serial in-process last resort, so a
    figure still completes after persistent worker trouble.
    """

    def __init__(
        self,
        seeds: Sequence[int] = (0, 1),
        cost_model: CostModel = DEFAULT_COST_MODEL,
        progress: Optional[Callable[[str], None]] = None,
        cache: Optional[ResultCache] = None,
        jobs: int = 1,
        tracer_factory: Optional[Callable[[RunConfig], Tracer]] = None,
        trace_sink: Optional[Callable[[RunConfig, Tracer], None]] = None,
        retry: Optional[RetryPolicy] = None,
        timeout_s: Optional[float] = None,
        ledger: Optional[SweepLedger] = None,
        profile_dir: Optional[str] = None,
    ) -> None:
        self.seeds = tuple(seeds)
        self.cost_model = cost_model
        self.progress = progress or (lambda message: None)
        self.cache = cache
        self.jobs = jobs
        self.tracer_factory = tracer_factory
        self.trace_sink = trace_sink
        self.retry = retry
        self.timeout_s = timeout_s
        #: Flight recorder threaded through every prefetch fan-out
        #: (observational only — see :mod:`repro.obs.ledger`).
        self.ledger = ledger
        self.profile_dir = profile_dir
        # Keyed on (config, cost model): two runners (or one runner
        # whose model is swapped) must never share timings computed
        # under different constants.
        self._cache: Dict[Tuple[RunConfig, CostModel], RunResult] = {}
        #: One entry per prefetch fan-out, for BENCH_sweep.json.
        self.sweeps: List[SweepStats] = []

    # ------------------------------------------------------------------
    def run_one(self, config: RunConfig) -> RunResult:
        key = (config, self.cost_model)
        cached = self._cache.get(key)
        if cached is None and self.cache is not None and self.tracer_factory is None:
            cached = self.cache.get(config)
        if cached is None:
            tracer = (
                self.tracer_factory(config)
                if self.tracer_factory is not None
                else None
            )
            cached = run_benchmark(config, self.cost_model, tracer=tracer)
            if tracer is not None and self.trace_sink is not None:
                self.trace_sink(config, tracer)
            if self.cache is not None:
                self.cache.put(config, cached)
        self._cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    def prefetch(self, configs: Iterable[RunConfig]) -> Optional[SweepStats]:
        """Execute every (config x seed) cell ahead of aggregation.

        Expands seeds, dedups, and fans uncached cells out over
        ``self.jobs`` workers, so the serial aggregation logic that
        follows is all cache hits. A no-op when running serially with
        no persistent cache — the lazy path is then strictly cheaper
        (aggregation may early-exit and skip cells).
        """
        if self.tracer_factory is not None:
            # Traced cells must run through run_one (the pool and the
            # disk cache would both lose the events).
            return None
        if self.jobs <= 1 and self.cache is None:
            return None
        expanded: List[RunConfig] = []
        seen = set()
        for config in configs:
            for seed in self.seeds:
                cell = replace(config, seed=seed)
                key = (cell, self.cost_model)
                if key in seen or key in self._cache:
                    continue
                seen.add(key)
                expanded.append(cell)
        if not expanded:
            return None
        results, stats = run_grid(
            expanded,
            cost_model=self.cost_model,
            jobs=self.jobs,
            cache=self.cache,
            progress=None,
            retry=self.retry,
            timeout_s=self.timeout_s,
            ledger=self.ledger,
            profile_dir=self.profile_dir,
        )
        # Key by the result's own config, not by zipping against
        # `expanded`: the fault-tolerant path may quarantine cells, and
        # a positional zip would then memoize results under the wrong
        # configs.
        for result in results:
            self._cache[(result.config, self.cost_model)] = result
        self.sweeps.append(stats)
        return stats

    def sweep_summary(self) -> Optional[SweepStats]:
        """All prefetch fan-outs of this runner merged into one record."""
        if not self.sweeps:
            return None
        merged = SweepStats(jobs=max(s.jobs for s in self.sweeps))
        for stats in self.sweeps:
            merged.merge(stats)
        return merged

    # ------------------------------------------------------------------
    def measure(self, config: RunConfig) -> BenchmarkMeasurement:
        """Run all seeds of one (workload, configuration) pair."""
        results = [self.run_one(replace(config, seed=seed)) for seed in self.seeds]
        completed = [r for r in results if r.completed]
        if not completed:
            status = "DNF"
        elif len(completed) < len(results):
            # Partial completion changes the sample size; say so rather
            # than reporting a clean "ok".
            status = f"ok {len(completed)}/{len(results)}"
        else:
            status = "ok"
        self.progress(
            f"{config.workload} {config.failure_model.describe()} "
            f"L{config.immix_line} h{config.heap_multiplier:g}: {status}"
        )
        if not completed:
            return BenchmarkMeasurement(
                config.workload, False, float("nan"), float("nan"), float("nan"),
                results, seeds_completed=0, seeds_total=len(results),
            )
        return BenchmarkMeasurement(
            workload=config.workload,
            completed=True,
            mean_time=sum(r.time_units for r in completed) / len(completed),
            mean_ms=sum(r.time_ms for r in completed) / len(completed),
            mean_perfect_demand=sum(r.perfect_page_demand for r in completed)
            / len(completed),
            results=results,
            seeds_completed=len(completed),
            seeds_total=len(results),
        )

    # ------------------------------------------------------------------
    def normalized_geomean(
        self,
        workloads: Sequence[str],
        config: RunConfig,
        baseline: RunConfig,
    ) -> Optional[float]:
        """Geomean over benchmarks of time(config)/time(baseline).

        Returns None when any benchmark fails to complete — the paper
        discards aggregate points where some benchmark cannot run,
        which is what truncates its curves.
        """
        ratios = []
        for name in workloads:
            measured = self.measure(replace(config, workload=name))
            base = self.measure(replace(baseline, workload=name))
            if not measured.completed or not base.completed:
                return None
            ratios.append(measured.mean_time / base.mean_time)
        return geomean(ratios)

    def per_benchmark_overheads(
        self,
        workloads: Sequence[str],
        config: RunConfig,
        baseline: RunConfig,
    ) -> Dict[str, Optional[float]]:
        """time(config)/time(baseline) per benchmark; None marks DNF."""
        overheads: Dict[str, Optional[float]] = {}
        for name in workloads:
            measured = self.measure(replace(config, workload=name))
            base = self.measure(replace(baseline, workload=name))
            if not measured.completed or not base.completed:
                overheads[name] = None
            else:
                overheads[name] = measured.mean_time / base.mean_time
        return overheads

    def geomean_demand(
        self, workloads: Sequence[str], config: RunConfig
    ) -> Optional[float]:
        """Geomean perfect-page demand (figure 9b's metric)."""
        demands = []
        for name in workloads:
            measured = self.measure(replace(config, workload=name))
            if not measured.completed:
                return None
            demands.append(max(1.0, measured.mean_perfect_demand))
        return geomean(demands)
