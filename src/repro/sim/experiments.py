"""One harness per paper figure (see DESIGN.md's experiment index).

Each function sweeps the same workloads, parameters, and baselines as
the corresponding figure in the paper's evaluation (section 6), returns
the raw data points, and renders them with :mod:`repro.sim.report`.
Benchmarks in ``benchmarks/`` call these with reduced grids by default
and the full grids under ``REPRO_FULL=1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults.generator import PAPER_FAILURE_RATES, FailureModel
from ..workloads.dacapo import analysis_suite, full_suite
from .experiment import ExperimentRunner, geomean
from .machine import RunConfig
from .report import render_bars, render_series, render_table

#: Heap sizes the paper sweeps (multiples of each benchmark's minimum).
HEAP_SWEEP = (1.25, 1.5, 2.0, 3.0, 4.0, 6.0)

#: Immix line sizes evaluated (figure 6/7/9).
LINE_SIZES = (64, 128, 256)


def suite_names(include_buggy_lusearch: bool = False) -> List[str]:
    suite = full_suite() if include_buggy_lusearch else analysis_suite()
    return [spec.name for spec in suite]


def _baseline(scale: float) -> RunConfig:
    """Unmodified Sticky Immix: no failures, 2x heap, 256 B lines."""
    return RunConfig(workload="antlr", heap_multiplier=2.0, scale=scale)


def _prefetch(
    runner: ExperimentRunner,
    names: Sequence[str],
    configs: Sequence[RunConfig],
) -> None:
    """Warm the runner's caches for a (workloads x configs) grid.

    Each figure enumerates its full grid up front so uncached cells can
    fan out over ``runner.jobs`` workers; the serial aggregation below
    then reads memoized results. A no-op for a serial, cache-less
    runner (see :meth:`ExperimentRunner.prefetch`), keeping the default
    path's lazy early-exit behaviour.
    """
    runner.prefetch(
        replace(config, workload=name) for config in configs for name in names
    )


@dataclass
class FigureResult:
    """Uniform result container for all harnesses."""

    figure: str
    title: str
    #: Named series of (x, value-or-None) points, or table rows.
    series: Dict[str, List[Tuple[float, Optional[float]]]] = field(default_factory=dict)
    rows: List[Tuple[str, List[Optional[float]]]] = field(default_factory=list)
    columns: List[str] = field(default_factory=list)
    x_label: str = ""
    y_label: str = "normalized time"
    notes: str = ""

    def render(self) -> str:
        parts = []
        if self.series:
            parts.append(
                render_series(
                    f"{self.figure}: {self.title}",
                    self.series,
                    self.x_label,
                    self.y_label,
                )
            )
        if self.rows:
            parts.append(
                render_table(
                    f"{self.figure}: {self.title}", self.columns, self.rows
                )
            )
        if self.notes:
            parts.append(self.notes)
        return "\n\n".join(parts)

    def to_dict(self) -> dict:
        """JSON-serializable form (None marks DNF points)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": {
                name: [[x, value] for x, value in points]
                for name, points in self.series.items()
            },
            "rows": [[label, list(values)] for label, values in self.rows],
            "columns": list(self.columns),
            "notes": self.notes,
        }


# ======================================================================
# Figure 3: collector comparison without failures
# ======================================================================
def figure3(
    runner: ExperimentRunner,
    heap_multipliers: Sequence[float] = HEAP_SWEEP,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    """MS vs Immix vs the Sticky variants across heap sizes."""
    names = list(workloads or suite_names())
    reference = replace(
        _baseline(scale), heap_multiplier=max(heap_multipliers), collector="sticky-immix"
    )
    collectors = ("marksweep", "immix", "sticky-marksweep", "sticky-immix")
    _prefetch(
        runner,
        names,
        [
            replace(_baseline(scale), collector=collector, heap_multiplier=multiplier)
            for collector in collectors
            for multiplier in heap_multipliers
        ]
        + [reference],
    )
    series: Dict[str, list] = {}
    for collector, label in (
        ("marksweep", "MS"),
        ("immix", "IX"),
        ("sticky-marksweep", "S-MS"),
        ("sticky-immix", "S-IX"),
    ):
        points = []
        for multiplier in heap_multipliers:
            config = replace(
                _baseline(scale), collector=collector, heap_multiplier=multiplier
            )
            points.append(
                (multiplier, runner.normalized_geomean(names, config, reference))
            )
        series[label] = points
    return FigureResult(
        figure="Figure 3",
        title="collector performance vs heap size (no failures)",
        series=series,
        x_label="heap (x min)",
        y_label="time / S-IX at largest heap (geomean)",
    )


# ======================================================================
# Figure 4: failure-aware S-IX with 2-page clustering, per benchmark
# ======================================================================
def figure4(
    runner: ExperimentRunner,
    rates: Sequence[float] = PAPER_FAILURE_RATES,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names(include_buggy_lusearch=True))
    baseline = _baseline(scale)
    _prefetch(
        runner,
        names,
        [
            replace(baseline, failure_model=FailureModel(rate=rate, hw_region_pages=2))
            for rate in rates
        ]
        + [baseline],
    )
    rows: List[Tuple[str, List[Optional[float]]]] = []
    per_rate: Dict[float, List[float]] = {rate: [] for rate in rates}
    for name in names:
        values: List[Optional[float]] = []
        for rate in rates:
            config = replace(
                baseline,
                workload=name,
                failure_model=FailureModel(rate=rate, hw_region_pages=2),
            )
            overhead = runner.per_benchmark_overheads([name], config, baseline)[name]
            values.append(overhead)
            if overhead is not None and name != "lusearch":
                per_rate[rate].append(overhead)
        rows.append((name, values))
    rows.append(
        ("geomean*", [geomean(per_rate[rate]) if per_rate[rate] else None for rate in rates])
    )
    return FigureResult(
        figure="Figure 4",
        title="failure-aware S-IX + 2-page clustering vs unmodified S-IX (2x heap)",
        rows=rows,
        columns=[f"{rate:.0%}" for rate in rates],
        notes="* geomean excludes buggy lusearch, as in the paper.",
    )


# ======================================================================
# Figure 5: compensation and clustering across heap sizes at 10%
# ======================================================================
def figure5(
    runner: ExperimentRunner,
    heap_multipliers: Sequence[float] = HEAP_SWEEP,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names())
    reference = replace(_baseline(scale), heap_multiplier=max(heap_multipliers))
    variants = {
        "S-IXPCM (no failures)": (FailureModel(), True),
        "S-IXPCM 10% NoComp": (FailureModel(rate=0.10), False),
        "S-IXPCM 10%": (FailureModel(rate=0.10), True),
        "S-IXPCM 10% 2CL": (FailureModel(rate=0.10, hw_region_pages=2), True),
    }
    _prefetch(
        runner,
        names,
        [
            replace(
                _baseline(scale),
                heap_multiplier=multiplier,
                failure_model=model,
                compensate=compensate,
            )
            for model, compensate in variants.values()
            for multiplier in heap_multipliers
        ]
        + [reference],
    )
    series: Dict[str, list] = {}
    for label, (model, compensate) in variants.items():
        points = []
        for multiplier in heap_multipliers:
            config = replace(
                _baseline(scale),
                heap_multiplier=multiplier,
                failure_model=model,
                compensate=compensate,
            )
            points.append(
                (multiplier, runner.normalized_geomean(names, config, reference))
            )
        series[label] = points
    return FigureResult(
        figure="Figure 5",
        title="memory compensation vs fragmentation at 10% failures",
        series=series,
        x_label="heap (x min)",
        y_label="time / no-failure S-IX at largest heap (geomean)",
    )


# ======================================================================
# Figure 6: Immix line size, without (a) and with (b) failures
# ======================================================================
def figure6(
    runner: ExperimentRunner,
    heap_multipliers: Sequence[float] = HEAP_SWEEP,
    line_sizes: Sequence[int] = LINE_SIZES,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Tuple[FigureResult, FigureResult]:
    names = list(workloads or suite_names())
    reference = replace(
        _baseline(scale), heap_multiplier=max(heap_multipliers), immix_line=256
    )
    _prefetch(
        runner,
        names,
        [
            replace(
                _baseline(scale),
                immix_line=line,
                heap_multiplier=multiplier,
                failure_model=model,
            )
            for line in line_sizes
            for multiplier in heap_multipliers
            for model in (FailureModel(), FailureModel(rate=0.10))
        ]
        + [reference],
    )
    no_failure: Dict[str, list] = {}
    with_failure: Dict[str, list] = {}
    for line in line_sizes:
        clean_points, faulty_points = [], []
        for multiplier in heap_multipliers:
            clean = replace(
                _baseline(scale), immix_line=line, heap_multiplier=multiplier
            )
            clean_points.append(
                (multiplier, runner.normalized_geomean(names, clean, reference))
            )
            faulty = replace(clean, failure_model=FailureModel(rate=0.10))
            faulty_points.append(
                (multiplier, runner.normalized_geomean(names, faulty, reference))
            )
        no_failure[f"S-IX L{line}"] = clean_points
        with_failure[f"S-IXPCM L{line} 10%"] = faulty_points
    fig_a = FigureResult(
        figure="Figure 6a",
        title="Immix line size without failures",
        series=no_failure,
        x_label="heap (x min)",
        y_label="time / S-IX L256 at largest heap (geomean)",
    )
    fig_b = FigureResult(
        figure="Figure 6b",
        title="Immix line size with 10% failures, no clustering",
        series=with_failure,
        x_label="heap (x min)",
        y_label="time / S-IX L256 at largest heap (geomean)",
    )
    return fig_a, fig_b


# ======================================================================
# Figure 7: failure-rate sweep at fixed 2x heap
# ======================================================================
def figure7(
    runner: ExperimentRunner,
    rates: Sequence[float] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50),
    line_sizes: Sequence[int] = LINE_SIZES,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names())
    baseline = _baseline(scale)  # S-IX L256, no failures, 2x heap
    _prefetch(
        runner,
        names,
        [
            replace(baseline, immix_line=line, failure_model=FailureModel(rate=rate))
            for line in line_sizes
            for rate in rates
        ]
        + [baseline],
    )
    series: Dict[str, list] = {}
    for line in line_sizes:
        points = []
        for rate in rates:
            config = replace(
                baseline, immix_line=line, failure_model=FailureModel(rate=rate)
            )
            points.append(
                (rate, runner.normalized_geomean(names, config, baseline))
            )
        series[f"S-IXPCM L{line}"] = points
    return FigureResult(
        figure="Figure 7",
        title="failure-rate sweep per line size, no clustering (2x heap)",
        series=series,
        x_label="failure rate",
        y_label="time / S-IX L256 no failures (geomean)",
    )


# ======================================================================
# Figure 8: clustering-granularity limit study
# ======================================================================
def figure8(
    runner: ExperimentRunner,
    granularities: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384),
    rates: Sequence[float] = (0.10, 0.25, 0.50),
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names())
    baseline = _baseline(scale)
    _prefetch(
        runner,
        names,
        [
            replace(
                baseline,
                failure_model=FailureModel(rate=rate, cluster_bytes=granularity),
            )
            for rate in rates
            for granularity in granularities
        ]
        + [baseline],
    )
    series: Dict[str, list] = {}
    for rate in rates:
        points = []
        for granularity in granularities:
            config = replace(
                baseline,
                failure_model=FailureModel(rate=rate, cluster_bytes=granularity),
            )
            points.append(
                (granularity, runner.normalized_geomean(names, config, baseline))
            )
        series[f"{rate:.0%} failed"] = points
    return FigureResult(
        figure="Figure 8",
        title="failure clustering granularity limit study (S-IXPCM L256, 2x heap)",
        series=series,
        x_label="cluster bytes",
        y_label="time / unmodified S-IX (geomean)",
    )


# ======================================================================
# Figure 9: proposed clustering hardware — performance and page demand
# ======================================================================
def figure9(
    runner: ExperimentRunner,
    rates: Sequence[float] = PAPER_FAILURE_RATES,
    line_sizes: Sequence[int] = LINE_SIZES,
    clusterings: Sequence[int] = (0, 1, 2),
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> Tuple[FigureResult, FigureResult]:
    names = list(workloads or suite_names())
    baseline = _baseline(scale)
    _prefetch(
        runner,
        names,
        [
            replace(
                baseline,
                immix_line=line,
                failure_model=FailureModel(rate=rate, hw_region_pages=clustering),
            )
            for clustering in clusterings
            for line in line_sizes
            for rate in rates
        ]
        + [baseline],
    )
    perf: Dict[str, list] = {}
    demand: Dict[str, list] = {}
    for clustering in clusterings:
        suffix = {0: "", 1: " 1CL", 2: " 2CL"}.get(clustering, f" {clustering}CL")
        for line in line_sizes:
            label = f"L{line}{suffix}"
            perf_points, demand_points = [], []
            for rate in rates:
                config = replace(
                    baseline,
                    immix_line=line,
                    failure_model=FailureModel(rate=rate, hw_region_pages=clustering),
                )
                perf_points.append(
                    (rate, runner.normalized_geomean(names, config, baseline))
                )
                demand_points.append((rate, runner.geomean_demand(names, config)))
            perf[label] = perf_points
            demand[label] = demand_points
    fig_a = FigureResult(
        figure="Figure 9a",
        title="hardware failure clustering: performance (2x heap)",
        series=perf,
        x_label="failure rate",
        y_label="time / unmodified S-IX (geomean)",
    )
    fig_b = FigureResult(
        figure="Figure 9b",
        title="hardware failure clustering: perfect-page demand",
        series=demand,
        x_label="failure rate",
        y_label="perfect-page requests (geomean)",
    )
    return fig_a, fig_b


# ======================================================================
# Figure 10: per-benchmark, 1- vs 2-page clustering
# ======================================================================
def figure10(
    runner: ExperimentRunner,
    rates: Sequence[float] = (0.10, 0.25, 0.50),
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names())
    baseline = _baseline(scale)
    _prefetch(
        runner,
        names,
        [
            replace(
                baseline,
                failure_model=FailureModel(rate=rate, hw_region_pages=clustering),
            )
            for clustering in (1, 2)
            for rate in rates
        ]
        + [baseline],
    )
    rows = []
    columns = []
    for name in names:
        values: List[Optional[float]] = []
        for clustering in (1, 2):
            for rate in rates:
                config = replace(
                    baseline,
                    workload=name,
                    failure_model=FailureModel(rate=rate, hw_region_pages=clustering),
                )
                values.append(
                    runner.per_benchmark_overheads([name], config, baseline)[name]
                )
        rows.append((name, values))
    columns = [f"1CL {r:.0%}" for r in rates] + [f"2CL {r:.0%}" for r in rates]
    return FigureResult(
        figure="Figure 10",
        title="per-benchmark overhead under 1- and 2-page clustering",
        rows=rows,
        columns=columns,
    )


# ======================================================================
# Policies: wear-management baselines on one failure-sweep axis
# ======================================================================
#: (label, RunConfig overrides) for every comparative baseline. The
#: first entry is the paper's default triple; the rest swap exactly one
#: policy seam so the figure isolates each axis (see repro.policies).
POLICY_VARIANTS: Tuple[Tuple[str, Dict[str, str]], ...] = (
    ("paper (none/paper/paper)", {}),
    ("wolfram remap WL", {"wear_policy": "wolfram"}),
    ("softwear rotation WL", {"wear_policy": "softwear"}),
    ("migrant page pool", {"pool_policy": "migrant"}),
    ("HRM placement", {"placement_policy": "hrm"}),
)


def policy_comparison(
    runner: ExperimentRunner,
    rates: Sequence[float] = (0.0, 0.10, 0.25, 0.50),
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    """All wear-management policies on one failure-rate sweep (2x heap).

    Every series normalizes against the same no-failure default-policy
    baseline, so the default series reproduces figure 7's L256 curve and
    the baselines read directly as relative overhead or benefit.
    """
    names = list(workloads or suite_names())
    baseline = _baseline(scale)
    _prefetch(
        runner,
        names,
        [
            replace(
                baseline,
                failure_model=FailureModel(rate=rate),
                **overrides,
            )
            for _, overrides in POLICY_VARIANTS
            for rate in rates
        ]
        + [baseline],
    )
    series: Dict[str, list] = {}
    for label, overrides in POLICY_VARIANTS:
        points = []
        for rate in rates:
            config = replace(
                baseline, failure_model=FailureModel(rate=rate), **overrides
            )
            points.append(
                (rate, runner.normalized_geomean(names, config, baseline))
            )
        series[label] = points
    return FigureResult(
        figure="Policies",
        title="wear-management policy comparison, no clustering (2x heap)",
        series=series,
        x_label="failure rate",
        y_label="time / default policies, no failures (geomean)",
        notes=(
            "each baseline swaps one policy seam vs the paper default: "
            "wolfram = programmable-decoder line remap; softwear = "
            "software region rotation; migrant = hot/cold whole-page "
            "migration pool; HRM = error-tolerance placement split."
        ),
    )


# ======================================================================
# Section 4.2: full-heap collection pauses
# ======================================================================
def section42_pauses(
    runner: ExperimentRunner,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names())
    _prefetch(runner, names, [_baseline(scale)])
    rows = []
    pauses: Dict[str, float] = {}
    for name in names:
        config = replace(_baseline(scale), workload=name)
        measurement = runner.measure(config)
        pause = (
            sum(r.full_gc_pause_ms for r in measurement.results if r.completed)
            / max(1, sum(1 for r in measurement.results if r.completed))
        )
        pauses[name] = pause
        rows.append((name, [pause]))
    mean_pause = sum(pauses.values()) / len(pauses)
    rows.append(("mean", [mean_pause]))
    worst = max(pauses, key=pauses.get)
    return FigureResult(
        figure="Section 4.2",
        title="estimated full-heap collection pauses (2x heap)",
        rows=rows,
        columns=["pause (ms)"],
        notes=(
            f"worst: {worst} at {pauses[worst]:.1f} ms; paper reports a 7 ms "
            "mean with hsqldb worst at 44 ms."
        ),
    )


# ======================================================================
# Headline numbers (abstract / section 8)
# ======================================================================
def headline(
    runner: ExperimentRunner,
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
) -> FigureResult:
    names = list(workloads or suite_names())
    baseline = _baseline(scale)
    headline_models = (
        ("no failures, failure-aware", FailureModel()),
        ("10% unclustered", FailureModel(rate=0.10)),
        ("50% unclustered", FailureModel(rate=0.50)),
        ("10% + 2-page clustering", FailureModel(rate=0.10, hw_region_pages=2)),
        ("50% + 2-page clustering", FailureModel(rate=0.50, hw_region_pages=2)),
    )
    _prefetch(
        runner,
        names,
        [replace(baseline, failure_model=model) for _, model in headline_models]
        + [baseline],
    )
    rows = []
    for label, model in headline_models:
        config = replace(baseline, failure_model=model)
        value = runner.normalized_geomean(names, config, baseline)
        rows.append((label, [value]))
    return FigureResult(
        figure="Headline",
        title="geomean overhead vs unmodified Sticky Immix (2x heap)",
        rows=rows,
        columns=["time ratio"],
        notes=(
            "paper: 1.00 with no failures; ~1.17/1.33 at 10%/50% without "
            "clustering; 1.039/1.124 at 10%/50% with clustering."
        ),
    )
