"""Fault-tolerant execution of grid cells: retry, backoff, quarantine.

The plain pool in :mod:`repro.sim.parallel` is fast but brittle — one
worker death (OOM-killer, preempted node, plain SIGKILL) aborts the
whole sweep and discards every in-flight cell. This module trades a
little overhead for survival, using one **process per attempt**:

* each attempt writes its result to a private spool file (atomically),
  so the parent can always tell "finished" from "died mid-cell";
* a missing or torn spool plus a nonzero exit code is a *crash*
  (``-SIGKILL`` is detected specifically), an in-worker exception is an
  *error*, and an attempt exceeding the per-cell budget is a *timeout*
  (the parent terminates, then kills, the straggler);
* every failure is retried with exponential backoff and deterministic
  jitter — :meth:`RetryPolicy.delay` is a pure function of (seed, cell,
  attempt), so scheduling is reproducible and unit-testable;
* a cell that fails ``max_attempts`` times is **quarantined**: the
  sweep completes without it and reports the partial result instead of
  aborting (the Heterogeneous-Reliability stance — degrade, don't die).

Time is injectable: the executor only ever reads the clock through a
:class:`Clock`, so the retry/backoff/timeout policy is tested against
:class:`FakeClock` with zero wall-clock sleeps in CI.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import signal
import struct
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..obs.ledger import (
    ATTEMPT_END,
    ATTEMPT_START,
    COLLECT,
    CRASH,
    DISPATCH,
    PROFILE,
    QUARANTINE,
    RETRY,
    TIMEOUT,
    SweepLedger,
    worker_emit,
)
from ..obs.profile import profile_call
from ..obs.profile import spool_path as _profile_spool_path
from ..runtime.time_model import CostModel
from .chaos import ChaosConfig, maybe_injure
from .machine import RunConfig, RunResult, run_benchmark
from .transport import decode_attempt, encode_attempt, is_frame, use_spool_transport

#: Parent poll granularity while attempts are in flight (real seconds).
POLL_INTERVAL_S = 0.02


# ----------------------------------------------------------------------
# Injectable time
# ----------------------------------------------------------------------
class MonotonicClock:
    """Wall time for production: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """Deterministic time for tests: sleeping *is* advancing.

    Records every sleep so tests can assert the executor's pacing
    (backoff waits, poll cadence) without a single wall-clock stall.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = start
        self.sleeps: List[float] = []

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self._now += max(0.0, seconds)

    def advance(self, seconds: float) -> None:
        self._now += seconds


# ----------------------------------------------------------------------
# Policy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    Attempt numbering starts at 1; the delay *before* attempt ``n`` is
    ``base * 2**(n-2)`` capped at ``max_delay_s``, then jittered by a
    factor drawn from ``[1 - jitter, 1 + jitter]``. The draw is a pure
    function of (seed, cell index, attempt) — two runs of the same
    sweep back off identically, and no two cells thundering-herd on the
    same schedule.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.5
    max_delay_s: float = 8.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ConfigError("delays must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")

    def delay(self, cell_index: int, attempt: int) -> float:
        """Backoff before retry ``attempt`` (>= 2) of ``cell_index``."""
        if attempt < 2:
            return 0.0
        base = min(self.max_delay_s, self.base_delay_s * 2 ** (attempt - 2))
        rng = random.Random((self.seed << 32) ^ (cell_index << 8) ^ attempt)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class QuarantinedCell:
    """A cell the sweep gave up on, with its full failure history."""

    index: int
    workload: str
    description: str
    attempts: int
    failures: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "workload": self.workload,
            "config": self.description,
            "attempts": self.attempts,
            "failures": list(self.failures),
        }


@dataclass
class FaultToleranceReport:
    """What the executor survived during one sweep."""

    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    worker_errors: int = 0
    quarantined: List[QuarantinedCell] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (
            self.retries == 0
            and self.timeouts == 0
            and self.worker_crashes == 0
            and self.worker_errors == 0
            and not self.quarantined
        )

    def merge(self, other: "FaultToleranceReport") -> None:
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.worker_crashes += other.worker_crashes
        self.worker_errors += other.worker_errors
        self.quarantined.extend(other.quarantined)

    def to_dict(self) -> dict:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "worker_errors": self.worker_errors,
            "quarantined": [cell.to_dict() for cell in self.quarantined],
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _attempt_worker(
    config: RunConfig,
    cost_model: CostModel,
    spool_path: str,
    cell_index: int,
    attempt: int,
    chaos: Optional[ChaosConfig],
    ledger_path: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> None:
    """One attempt at one cell, result spooled atomically.

    The chaos hook fires after dispatch, so from the parent's view the
    worker dies mid-cell; an exception (chaos or real) is spooled as an
    error record so the parent can distinguish it from a silent crash.

    With a ``ledger_path``, the attempt brackets itself with
    ``attempt_start``/``attempt_end`` flight-recorder events (a killed
    worker leaves only the start — the parent's ``crash`` event closes
    the story). ``profile_dir`` arms cProfile around the benchmark.
    """
    from .cache import result_to_dict  # local: avoids import cycle at fork

    if chaos is None:
        chaos = ChaosConfig.from_env()
    worker_emit(
        ledger_path,
        ATTEMPT_START,
        cell=cell_index,
        attempt=attempt,
        workload=config.workload,
    )
    started = time.perf_counter()
    try:
        maybe_injure(chaos, cell_index, attempt)
        if profile_dir is not None:
            prof = _profile_spool_path(profile_dir, cell_index, attempt)
            result = profile_call(prof, run_benchmark, config, cost_model)
            worker_emit(
                ledger_path, PROFILE, cell=cell_index, attempt=attempt, spool=prof
            )
        else:
            result = run_benchmark(config, cost_model)
        wall_s = time.perf_counter() - started
        if use_spool_transport():
            # Successful attempts spool the compact binary frame; the
            # parent sniffs the magic. Failure records stay JSON — they
            # carry free-form error text, not a RunResult.
            spooled = encode_attempt(result, wall_s)
        else:
            spooled = json.dumps(
                {"ok": True, "result": result_to_dict(result), "wall_s": wall_s}
            ).encode()
        ok = True
    except BaseException as exc:  # spooled, classified by the parent
        wall_s = time.perf_counter() - started
        spooled = json.dumps(
            {"ok": False, "error": f"{type(exc).__name__}: {exc}", "wall_s": wall_s}
        ).encode()
        ok = False
    worker_emit(
        ledger_path,
        ATTEMPT_END,
        cell=cell_index,
        attempt=attempt,
        ok=ok,
        wall_s=wall_s,
        workload=config.workload,
    )
    directory = os.path.dirname(spool_path)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(spooled)
        os.replace(tmp, spool_path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Attempt:
    __slots__ = ("process", "spool", "index", "config", "attempt", "started")

    def __init__(self, process, spool, index, config, attempt, started) -> None:
        self.process = process
        self.spool = spool
        self.index = index
        self.config = config
        self.attempt = attempt
        self.started = started


def run_cells_fault_tolerant(
    pending: Sequence[Tuple[int, RunConfig]],
    cost_model: CostModel,
    jobs: int,
    policy: RetryPolicy,
    timeout_s: Optional[float] = None,
    clock: Optional["MonotonicClock"] = None,
    progress: Optional[Callable[[str], None]] = None,
    chaos: Optional[ChaosConfig] = None,
    describe: Optional[Callable[[RunConfig], str]] = None,
    ledger: Optional[SweepLedger] = None,
    profile_dir: Optional[str] = None,
) -> Tuple[List[Tuple[int, RunResult, float]], FaultToleranceReport]:
    """Run every cell to completion or quarantine; never aborts the sweep.

    Returns completions as ``(index, result, wall_s)`` in arbitrary
    order (the caller re-sorts by index) plus the survival report.
    ``chaos`` is only ever armed by tests and the CI chaos-smoke job.

    With a ``ledger``, the parent records dispatch/collect plus every
    retry, timeout, crash and quarantine as flight-recorder events;
    attempt processes append their own start/end records to the
    ledger's file. ``profile_dir`` arms per-attempt cProfile spools.
    """
    clock = clock or MonotonicClock()
    describe = describe or (lambda config: repr(config))
    report = FaultToleranceReport()
    completions: List[Tuple[int, RunResult, float]] = []
    jobs = max(1, jobs)
    ledger_path = ledger.path if ledger is not None else None

    def _emit(ev: str, **fields) -> None:
        if ledger is not None:
            ledger.emit(ev, **fields)

    ready: List[Tuple[int, RunConfig, int]] = [
        (index, config, 1) for index, config in pending
    ]
    ready.reverse()  # pop() serves cells in input order
    delayed: List[Tuple[float, int, RunConfig, int]] = []
    failures: Dict[int, List[str]] = {}
    running: List[_Attempt] = []
    context = multiprocessing.get_context()

    def fail(attempt: _Attempt, kind: str, detail: str) -> None:
        history = failures.setdefault(attempt.index, [])
        history.append(f"attempt {attempt.attempt}: {kind}: {detail}")
        if attempt.attempt >= policy.max_attempts:
            report.quarantined.append(
                QuarantinedCell(
                    index=attempt.index,
                    workload=attempt.config.workload,
                    description=describe(attempt.config),
                    attempts=attempt.attempt,
                    failures=list(history),
                )
            )
            _emit(
                QUARANTINE,
                cell=attempt.index,
                workload=attempt.config.workload,
                attempts=attempt.attempt,
                kind=kind,
            )
            if progress is not None:
                progress(
                    f"QUARANTINED {attempt.config.workload} "
                    f"{describe(attempt.config)} after "
                    f"{attempt.attempt} attempts ({kind})"
                )
            return
        report.retries += 1
        next_attempt = attempt.attempt + 1
        wait = policy.delay(attempt.index, next_attempt)
        delayed.append(
            (clock.now() + wait, attempt.index, attempt.config, next_attempt)
        )
        _emit(
            RETRY,
            cell=attempt.index,
            workload=attempt.config.workload,
            attempt=next_attempt,
            wait_s=wait,
            kind=kind,
        )
        if progress is not None:
            progress(
                f"retrying {attempt.config.workload} "
                f"{describe(attempt.config)} ({kind}; "
                f"attempt {next_attempt}/{policy.max_attempts} "
                f"in {wait:.2f}s)"
            )

    def reap(attempt: _Attempt) -> None:
        """Attempt's process has exited; classify the outcome."""
        exitcode = attempt.process.exitcode
        payload = None
        frame = None
        result_bytes = 0
        try:
            with open(attempt.spool, "rb") as handle:
                data = handle.read()
            result_bytes = len(data)
            if is_frame(data):
                frame = decode_attempt(data)
            else:
                payload = json.loads(data.decode())
        except (OSError, ValueError, struct.error):
            payload = frame = None  # died before (or while) spooling
        finally:
            try:
                os.unlink(attempt.spool)
            except OSError:
                pass
        if frame is not None:
            result, wall = frame
            completions.append((attempt.index, result, wall))
            _emit(
                COLLECT,
                cell=attempt.index,
                workload=attempt.config.workload,
                wall_s=wall,
                result_bytes=result_bytes,
            )
            return
        if payload is not None and payload.get("ok"):
            from .cache import result_from_dict

            wall = float(payload.get("wall_s", 0.0))
            completions.append(
                (attempt.index, result_from_dict(payload["result"]), wall)
            )
            _emit(
                COLLECT,
                cell=attempt.index,
                workload=attempt.config.workload,
                wall_s=wall,
                result_bytes=result_bytes,
            )
            return
        if payload is not None:
            report.worker_errors += 1
            fail(attempt, "error", payload.get("error", "unknown error"))
            return
        report.worker_crashes += 1
        if exitcode == -signal.SIGKILL:
            detail = "killed (SIGKILL)"
        elif exitcode is not None and exitcode < 0:
            detail = f"terminated by signal {-exitcode}"
        else:
            detail = f"exit code {exitcode}, no result spooled"
        _emit(
            CRASH,
            cell=attempt.index,
            attempt=attempt.attempt,
            wall_s=max(0.0, clock.now() - attempt.started),
            detail=detail,
        )
        fail(attempt, "crash", detail)

    with tempfile.TemporaryDirectory(prefix="repro-ftexec-") as spool_dir:
        serial = 0
        while ready or delayed or running:
            now = clock.now()
            # Promote delayed retries whose backoff has elapsed.
            if delayed:
                due = [item for item in delayed if item[0] <= now]
                if due:
                    delayed[:] = [item for item in delayed if item[0] > now]
                    for _, index, config, attempt_no in sorted(due):
                        ready.append((index, config, attempt_no))
            # Fill free worker slots.
            while ready and len(running) < jobs:
                index, config, attempt_no = ready.pop()
                spool = os.path.join(spool_dir, f"cell-{index}-{serial}.json")
                serial += 1
                if attempt_no == 1:
                    _emit(DISPATCH, cell=index, workload=config.workload)
                process = context.Process(
                    target=_attempt_worker,
                    args=(
                        config,
                        cost_model,
                        spool,
                        index,
                        attempt_no,
                        chaos,
                        ledger_path,
                        profile_dir,
                    ),
                    daemon=True,
                )
                process.start()
                running.append(
                    _Attempt(process, spool, index, config, attempt_no, now)
                )
            if not running:
                # Everything is waiting out a backoff: jump to the next
                # due time instead of spinning.
                clock.sleep(max(0.0, min(item[0] for item in delayed) - now))
                continue
            # Reap exits and enforce timeouts.
            still_running: List[_Attempt] = []
            reaped = False
            for attempt in running:
                if attempt.process.exitcode is not None:
                    attempt.process.join()
                    reap(attempt)
                    reaped = True
                elif (
                    timeout_s is not None
                    and clock.now() - attempt.started > timeout_s
                ):
                    attempt.process.terminate()
                    attempt.process.join(1.0)
                    if attempt.process.exitcode is None:
                        attempt.process.kill()
                        attempt.process.join()
                    report.timeouts += 1
                    try:
                        os.unlink(attempt.spool)
                    except OSError:
                        pass
                    _emit(
                        TIMEOUT,
                        cell=attempt.index,
                        attempt=attempt.attempt,
                        wall_s=max(0.0, clock.now() - attempt.started),
                    )
                    fail(
                        attempt,
                        "timeout",
                        f"exceeded {timeout_s:.1f}s cell budget",
                    )
                    reaped = True
                else:
                    still_running.append(attempt)
            running = still_running
            if not reaped:
                clock.sleep(POLL_INTERVAL_S)

    return completions, report
