"""Memory-lifetime experiments (paper sections 2.2, 7.2).

The static-failure experiments measure performance at fixed failure
levels; these experiments instead *age* a single PCM module by running
a workload on it over and over with real write traffic, exercising the
full dynamic-failure path: wear -> ECC exhaustion -> failure buffer ->
OS interrupt -> runtime up-call -> evacuation.

They answer the paper's discussion-section questions:

* how much longer does a failure-aware runtime keep a module useful,
  compared with the retire-the-page-on-first-failure baseline?
* is wear leveling helpful or harmful once failures start
  ("Wear Leveling Considered Harmful", section 7.2)?
* how does failure clustering hardware change the end of life?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import OutOfMemoryError, ReproError, SnapshotError
from ..faults.generator import FailureModel
from ..faults.injector import FaultInjector
from ..hardware.geometry import Geometry
from ..hardware.pcm import EnduranceModel, PcmModule
from ..hardware.wear_leveling import NoWearLeveling, StartGapWearLeveler, WearLeveler
from ..runtime.vm import VirtualMachine, VmConfig
from ..workloads.driver import TraceDriver, estimate_min_heap
from ..workloads.spec import WorkloadSpec
from .snapshot import CheckpointPolicy, MachineSnapshot


@dataclass
class IterationRecord:
    """One workload iteration on the aging module."""

    iteration: int
    completed: bool
    failed_fraction: float
    dynamic_failures: int
    simulated_ms: float


@dataclass
class LifetimeResult:
    """Outcome of aging one module to death (or to the iteration cap)."""

    label: str
    iterations_completed: int = 0
    records: List[IterationRecord] = field(default_factory=list)
    final_failed_fraction: float = 0.0
    wear_spread_cv: float = 0.0

    def describe(self) -> str:
        return (
            f"{self.label}: {self.iterations_completed} iterations, "
            f"{self.final_failed_fraction:.1%} of lines failed at the end"
        )


def write_heavy(spec: WorkloadSpec, mutations_per_object: float = 4.0) -> WorkloadSpec:
    """A copy of ``spec`` with application stores enabled (wear traffic)."""
    from dataclasses import replace

    return replace(spec, mutations_per_object=mutations_per_object)


def run_lifetime(
    spec: WorkloadSpec,
    heap_multiplier: float = 2.0,
    geometry: Optional[Geometry] = None,
    wear_leveler: Optional[WearLeveler] = None,
    clustering: bool = True,
    endurance_mean_writes: float = 60.0,
    endurance_cv: float = 0.35,
    max_iterations: int = 40,
    seed: int = 0,
    label: str = "",
    page_retirement: bool = False,
    checkpoint: Optional[CheckpointPolicy] = None,
    resume_from: "Optional[MachineSnapshot | str]" = None,
) -> LifetimeResult:
    """Age one module by repeatedly running ``spec`` on it.

    ``endurance_mean_writes`` is deliberately tiny (a real cell endures
    ~1e8 writes) so modules die within a handful of iterations; the
    comparative behaviour between configurations is the result.

    ``checkpoint`` snapshots the aging module (and the records so far)
    every N completed iterations — the natural suspension points, since
    each iteration rebuilds its VM from the module's wear state.
    ``resume_from`` continues a checkpointed study; the caller must
    pass the same spec and parameters, and the completed study is then
    bit-identical to an uninterrupted one.
    """
    geometry = geometry or Geometry()
    if spec.mutations_per_object <= 0:
        raise ReproError(
            "lifetime experiments need a write-heavy workload; set "
            "mutations_per_object on the spec"
        )
    min_heap = estimate_min_heap(spec, seed=seed, geometry=geometry)
    heap = int(min_heap * heap_multiplier)
    block = geometry.block
    heap = (heap + block - 1) // block * block
    region = geometry.region
    pcm_bytes = (heap + region - 1) // region * region + region
    if resume_from is not None:
        snapshot = (
            MachineSnapshot.load(resume_from)
            if isinstance(resume_from, str)
            else resume_from
        )
        if snapshot.kind != "lifetime":
            raise SnapshotError(
                f"expected a 'lifetime' snapshot, found {snapshot.kind!r}"
            )
        pcm, result, start_iteration = snapshot.restore()
    else:
        pcm = PcmModule(
            size_bytes=pcm_bytes,
            geometry=geometry,
            endurance=EnduranceModel(
                mean_writes=endurance_mean_writes, cv=endurance_cv, seed=seed
            ),
            clustering_enabled=clustering,
            wear_leveler=wear_leveler or NoWearLeveling(),
            failure_buffer_capacity=128,
            seed=seed,
        )
        result = LifetimeResult(
            label=label or _default_label(wear_leveler, clustering)
        )
        start_iteration = 0
    for iteration in range(start_iteration, max_iterations):
        injector = FaultInjector(FailureModel(), geometry=geometry, seed=seed, pcm=pcm)
        config = VmConfig(
            heap_bytes=heap,
            geometry=geometry,
            collector="sticky-immix",
            compensate=False,
            seed=seed,
            wear_writes=True,
            page_retirement=page_retirement,
        )
        vm = VirtualMachine(config, injector=injector)
        completed = True
        try:
            TraceDriver(spec, seed + iteration).run(vm)
        except OutOfMemoryError:
            completed = False
        result.records.append(
            IterationRecord(
                iteration=iteration,
                completed=completed,
                failed_fraction=pcm.failed_fraction(),
                dynamic_failures=vm.stats.dynamic_failure_collections,
                simulated_ms=vm.simulated_ms(),
            )
        )
        if not completed:
            break
        result.iterations_completed += 1
        if checkpoint is not None and checkpoint.due(iteration + 1):
            checkpoint.checkpoint(
                (pcm, result, iteration + 1),
                kind="lifetime",
                meta={"label": result.label, "iteration": iteration + 1},
            )
    result.final_failed_fraction = pcm.failed_fraction()
    from ..hardware.wear_leveling import spread_statistics

    result.wear_spread_cv = spread_statistics(pcm.write_count_histogram())["cv"]
    return result


def _default_label(wear_leveler: Optional[WearLeveler], clustering: bool) -> str:
    leveling = (
        "start-gap" if isinstance(wear_leveler, StartGapWearLeveler) else "no leveling"
    )
    return f"{leveling}, {'2CL' if clustering else 'no clustering'}"


def retire_on_first_failure_lifetime(
    spec: WorkloadSpec,
    heap_multiplier: float = 2.0,
    geometry: Optional[Geometry] = None,
    endurance_mean_writes: float = 60.0,
    max_iterations: int = 40,
    seed: int = 0,
) -> LifetimeResult:
    """The DRAM-era baseline: a page dies with its first failed line.

    The runtime treats every line of a failing page as failed — the
    paper's '98 % of working memory wasted' strawman. Used as the
    comparison point for how much life failure awareness buys.
    """
    return run_lifetime(
        spec,
        heap_multiplier=heap_multiplier,
        geometry=geometry,
        clustering=False,
        endurance_mean_writes=endurance_mean_writes,
        max_iterations=max_iterations,
        seed=seed,
        label="retire page on first failure",
        page_retirement=True,
    )
