"""One benchmark run: workload x heap x collector x failure model.

This is the reproduction's unit of measurement, equivalent to one
invocation of a DaCapo benchmark in the paper's harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Optional

from ..errors import OutOfMemoryError
from ..faults.generator import FailureModel
from ..hardware.geometry import Geometry
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from ..runtime.vm import VirtualMachine, VmConfig
from ..workloads.dacapo import workload
from ..workloads.driver import TraceDriver, estimate_min_heap
from ..workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class RunConfig:
    """Everything defining one run, hashable for caching/reporting."""

    workload: str
    heap_multiplier: float = 2.0
    collector: str = "sticky-immix"
    failure_model: FailureModel = field(default_factory=FailureModel)
    immix_line: int = 256
    region_pages: int = 2
    compensate: bool = True
    #: Discontiguous arrays instead of the page-grained LOS.
    arraylets: bool = False
    seed: int = 0
    #: Scale factor on total allocation (quick benchmark modes).
    scale: float = 1.0

    def geometry(self) -> Geometry:
        return Geometry(immix_line=self.immix_line, region_pages=self.region_pages)

    def spec(self) -> WorkloadSpec:
        spec = workload(self.workload)
        if self.scale != 1.0:
            spec = spec.scaled(self.scale)
        return spec


@dataclass
class RunResult:
    """Outcome of one run."""

    config: RunConfig
    completed: bool
    time_units: float
    time_ms: float
    stats: dict
    heap_bytes: int
    min_heap_bytes: int
    perfect_page_demand: int
    borrowed_pages: int
    full_gc_pause_ms: float
    failure_note: str = ""

    @property
    def dnf(self) -> bool:
        return not self.completed


@lru_cache(maxsize=512)
def _min_heap(workload_name: str, immix_line: int, region_pages: int, scale: float) -> int:
    geometry = Geometry(immix_line=immix_line, region_pages=region_pages)
    spec = workload(workload_name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return estimate_min_heap(spec, geometry=geometry)


def min_heap_bytes(config: RunConfig) -> int:
    return _min_heap(
        config.workload, config.immix_line, config.region_pages, config.scale
    )


def run_benchmark(
    config: RunConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    verify: Optional[str] = None,
) -> RunResult:
    """Execute one benchmark invocation; never raises on heap exhaustion.

    A workload that cannot complete in its configured heap — the paper's
    "some configurations cannot execute some of the benchmarks" — comes
    back with ``completed=False`` so aggregation can truncate curves the
    way the paper's figures do.

    ``verify`` enables the cross-layer heap auditor at the given level
    (see :data:`repro.check.VERIFY_LEVELS`); kept out of
    :class:`RunConfig` so cached results stay comparable across
    verification settings. Violations raise
    :class:`~repro.errors.HeapAuditError`.
    """
    geometry = config.geometry()
    spec = config.spec()
    min_heap = min_heap_bytes(config)
    heap = int(min_heap * config.heap_multiplier)
    vm_config = VmConfig(
        heap_bytes=heap,
        geometry=geometry,
        collector=config.collector,
        failure_model=config.failure_model,
        compensate=config.compensate,
        arraylets=config.arraylets,
        seed=config.seed,
        verify=verify,
    )
    vm = VirtualMachine(vm_config, cost_model=cost_model)
    completed = True
    note = ""
    try:
        TraceDriver(spec, config.seed).run(vm)
        vm.auditor.final()
    except OutOfMemoryError as exc:
        completed = False
        note = str(exc)
    stats = vm.stats
    # Pause estimation needs the live volume a full-heap trace would
    # visit; benchmarks that never escalated past nursery collections
    # fall back to the workload's peak live set (min heap / headroom).
    mean_live = stats.mean_full_gc_live_bytes() or min_heap / 1.3
    lines_est = heap // geometry.immix_line
    return RunResult(
        config=config,
        completed=completed,
        time_units=cost_model.total_time(stats),
        time_ms=cost_model.total_ms(stats),
        stats=stats.snapshot(),
        heap_bytes=heap,
        min_heap_bytes=min_heap,
        perfect_page_demand=vm.supply.accountant.total_perfect_demand,
        borrowed_pages=vm.supply.accountant.borrowed,
        full_gc_pause_ms=cost_model.full_gc_pause_ms(int(mean_live), lines_est),
        failure_note=note,
    )
