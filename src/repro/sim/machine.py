"""One benchmark run: workload x heap x collector x failure model.

This is the reproduction's unit of measurement, equivalent to one
invocation of a DaCapo benchmark in the paper's harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Optional

from ..errors import OutOfMemoryError, SnapshotError
from ..faults.generator import FailureModel
from ..faults.injector import FaultInjector
from ..hardware.geometry import Geometry
from ..hardware.pcm import EnduranceModel, PcmModule
from ..obs.metrics import SNAPSHOT_CHECKPOINTS_TOTAL
from ..policies import resolve_pool_policy, resolve_wear_policy
from ..obs.trace import Tracer
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from ..runtime.vm import VirtualMachine, VmConfig
from ..workloads.dacapo import workload
from ..workloads.driver import TraceDriver, estimate_min_heap
from ..workloads.spec import WorkloadSpec
from .snapshot import CheckpointPolicy, MachineSnapshot


@dataclass(frozen=True)
class RunConfig:
    """Everything defining one run, hashable for caching/reporting."""

    workload: str
    heap_multiplier: float = 2.0
    collector: str = "sticky-immix"
    failure_model: FailureModel = field(default_factory=FailureModel)
    immix_line: int = 256
    region_pages: int = 2
    compensate: bool = True
    #: Discontiguous arrays instead of the page-grained LOS.
    arraylets: bool = False
    seed: int = 0
    #: Scale factor on total allocation (quick benchmark modes).
    scale: float = 1.0
    #: Policy seams (see :mod:`repro.policies`); the defaults reproduce
    #: the paper's hard-coded design bit-identically.
    wear_policy: str = "none"
    pool_policy: str = "paper"
    placement_policy: str = "paper"

    def geometry(self) -> Geometry:
        return Geometry(immix_line=self.immix_line, region_pages=self.region_pages)

    def spec(self) -> WorkloadSpec:
        spec = workload(self.workload)
        if self.scale != 1.0:
            spec = spec.scaled(self.scale)
        return spec


@dataclass
class RunResult:
    """Outcome of one run."""

    config: RunConfig
    completed: bool
    time_units: float
    time_ms: float
    stats: dict
    heap_bytes: int
    min_heap_bytes: int
    perfect_page_demand: int
    borrowed_pages: int
    full_gc_pause_ms: float
    failure_note: str = ""
    #: Per-phase simulated-time breakdown (mutator, gc.mark, ...) when
    #: the run was traced; the values sum to ``time_units``.
    phase_breakdown: Optional[Dict[str, float]] = None

    @property
    def dnf(self) -> bool:
        return not self.completed


@lru_cache(maxsize=512)
def _min_heap(workload_name: str, immix_line: int, region_pages: int, scale: float) -> int:
    geometry = Geometry(immix_line=immix_line, region_pages=region_pages)
    spec = workload(workload_name)
    if scale != 1.0:
        spec = spec.scaled(scale)
    return estimate_min_heap(spec, geometry=geometry)


def min_heap_bytes(config: RunConfig) -> int:
    return _min_heap(
        config.workload, config.immix_line, config.region_pages, config.scale
    )


def run_benchmark(
    config: RunConfig,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    verify: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> RunResult:
    """Execute one benchmark invocation; never raises on heap exhaustion.

    A workload that cannot complete in its configured heap — the paper's
    "some configurations cannot execute some of the benchmarks" — comes
    back with ``completed=False`` so aggregation can truncate curves the
    way the paper's figures do.

    ``verify`` enables the cross-layer heap auditor at the given level
    (see :data:`repro.check.VERIFY_LEVELS`); kept out of
    :class:`RunConfig` so cached results stay comparable across
    verification settings. Violations raise
    :class:`~repro.errors.HeapAuditError`.

    ``tracer`` threads a :class:`repro.obs.Tracer` through all three
    layers; the result then carries a per-phase time breakdown. Also
    kept out of :class:`RunConfig`: tracing never changes behaviour, so
    traced and untraced results are interchangeable.

    ``checkpoint`` emits a :class:`~repro.sim.snapshot.MachineSnapshot`
    of the whole stack every N driver steps; an interrupted run resumes
    from the latest one via :func:`resume_benchmark` with a result
    bit-identical to never having stopped.
    """
    geometry = config.geometry()
    spec = config.spec()
    min_heap = min_heap_bytes(config)
    heap = int(min_heap * config.heap_multiplier)
    vm_config = VmConfig(
        heap_bytes=heap,
        geometry=geometry,
        collector=config.collector,
        failure_model=config.failure_model,
        compensate=config.compensate,
        arraylets=config.arraylets,
        seed=config.seed,
        wear_policy=config.wear_policy,
        pool_policy=config.pool_policy,
        placement_policy=config.placement_policy,
        verify=verify,
        tracer=tracer,
    )
    vm = VirtualMachine(vm_config, cost_model=cost_model)
    driver = TraceDriver(spec, config.seed)
    return _drive_and_summarize(
        vm, driver, config, cost_model, min_heap, heap, tracer, checkpoint
    )


def resume_benchmark(
    snapshot: "MachineSnapshot | str",
    tracer: Optional[Tracer] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
    check_fingerprint: bool = True,
) -> RunResult:
    """Continue an interrupted benchmark from a checkpoint snapshot.

    The snapshot carries the machine, the driver, and the run's
    :class:`RunConfig` (cost model included, pickled inside the VM), so
    the continuation needs no caller-supplied configuration — and
    cannot accidentally diverge from the original. The returned
    :class:`RunResult` is bit-identical to an uninterrupted run's.
    """
    if isinstance(snapshot, str):
        snapshot = MachineSnapshot.load(snapshot)
    if snapshot.kind != "bench":
        raise SnapshotError(
            f"expected a 'bench' snapshot, found {snapshot.kind!r}"
        )
    vm, driver, config = snapshot.restore(check_fingerprint=check_fingerprint)
    if tracer is not None:
        vm.attach_tracer(tracer)
    min_heap = min_heap_bytes(config)
    return _drive_and_summarize(
        vm,
        driver,
        config,
        vm.cost_model,
        min_heap,
        vm.config.heap_bytes,
        tracer,
        checkpoint,
    )


def _drive_and_summarize(
    vm: VirtualMachine,
    driver: TraceDriver,
    config: RunConfig,
    cost_model: CostModel,
    min_heap: int,
    heap: int,
    tracer: Optional[Tracer],
    checkpoint: Optional[CheckpointPolicy] = None,
) -> RunResult:
    """Drive the workload over a built VM and summarize the outcome.

    The driver may arrive mid-trace (a snapshot restore); a fresh one
    is started here. Checkpoints land only between steps, where the
    event stream is deterministic across save/restore.
    """
    completed = True
    note = ""
    try:
        if driver.state is None:
            driver.begin()
        while driver.step(vm):
            if checkpoint is not None and checkpoint.due(driver.state.steps):
                _emit_checkpoint(vm, driver, config, checkpoint)
        vm.auditor.final()
    except OutOfMemoryError as exc:
        completed = False
        note = str(exc)
    stats = vm.stats
    geometry = vm.geometry
    # Pause estimation needs the live volume a full-heap trace would
    # visit; benchmarks that never escalated past nursery collections
    # fall back to the workload's peak live set (min heap / headroom).
    mean_live = stats.mean_full_gc_live_bytes() or min_heap / 1.3
    lines_est = heap // geometry.immix_line
    return RunResult(
        config=config,
        completed=completed,
        time_units=cost_model.total_time(stats),
        time_ms=cost_model.total_ms(stats),
        stats=stats.snapshot(),
        heap_bytes=heap,
        min_heap_bytes=min_heap,
        perfect_page_demand=vm.supply.accountant.total_perfect_demand,
        borrowed_pages=vm.supply.accountant.borrowed,
        full_gc_pause_ms=cost_model.full_gc_pause_ms(int(mean_live), lines_est),
        failure_note=note,
        phase_breakdown=tracer.phase_breakdown() if tracer is not None else None,
    )


def _emit_checkpoint(
    vm: VirtualMachine,
    driver: TraceDriver,
    config: RunConfig,
    checkpoint: CheckpointPolicy,
) -> None:
    steps = driver.state.steps
    checkpoint.checkpoint(
        (vm, driver, config),
        kind="bench",
        meta={
            "workload": config.workload,
            "seed": config.seed,
            "step": steps,
            "wear_policy": config.wear_policy,
            "pool_policy": config.pool_policy,
            "placement_policy": config.placement_policy,
        },
    )
    tr = vm.tracer
    if tr is not None:
        tr.instant(
            "snapshot.checkpoint",
            cat="sim",
            args={"step": steps, "path": checkpoint.path},
        )
        tr.metrics.counter(
            SNAPSHOT_CHECKPOINTS_TOTAL, "machine snapshots written"
        ).inc()


def run_wearing_benchmark(
    config: RunConfig,
    mean_writes: float = 25.0,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    verify: Optional[str] = None,
    tracer: Optional[Tracer] = None,
    checkpoint: Optional[CheckpointPolicy] = None,
) -> RunResult:
    """One run on a *wearing* module, so dynamic failures arrive mid-run.

    :func:`run_benchmark` models an aged module whose failures are all
    static; its writes never wear lines, so the dynamic path (failure
    buffer → OS upcall → evacuation collection) stays cold. This
    variant — the same recipe as the audit campaigns — gives every
    line a low sampled endurance (``mean_writes``), enables
    write-through wear, and forces enough mutation that application
    stores actually kill lines. It is the backing for ``repro trace``,
    where a trace without hardware-layer events would be useless.
    """
    import dataclasses as _dc

    geometry = config.geometry()
    spec = config.spec()
    # Campaign recipe: mutation forced on so stores wear lines; pinning
    # left alone (tracing tolerates degradations, unlike audits).
    spec = _dc.replace(
        spec, mutations_per_object=max(spec.mutations_per_object, 0.6)
    )
    min_heap = min_heap_bytes(config)
    heap = int(min_heap * config.heap_multiplier)
    block = geometry.block
    raw = (heap + block - 1) // block * block
    region = geometry.region
    pcm_bytes = (raw + region - 1) // region * region + 4 * region
    wear = resolve_wear_policy(config.wear_policy)
    pcm = PcmModule(
        size_bytes=pcm_bytes,
        geometry=geometry,
        endurance=EnduranceModel(mean_writes=mean_writes, cv=0.3, seed=config.seed),
        clustering_enabled=config.region_pages > 0,
        wear_leveler=wear.build_leveler(geometry, config.seed),
        failure_buffer_capacity=128,
        seed=config.seed,
    )
    if config.failure_model.rate > 0.0:
        static_map = config.failure_model.build(pcm.n_lines, geometry, config.seed)
        static_map = wear.transform_static_map(static_map, geometry, config.seed)
        pcm.inject_static_failures(static_map.failed_lines)
    injector = FaultInjector(
        FailureModel(),
        geometry=geometry,
        pcm=pcm,
        pool_policy=resolve_pool_policy(config.pool_policy),
    )
    vm_config = VmConfig(
        heap_bytes=heap,
        geometry=geometry,
        collector=config.collector,
        wear_writes=True,
        compensate=False,
        arraylets=config.arraylets,
        seed=config.seed,
        wear_policy=config.wear_policy,
        pool_policy=config.pool_policy,
        placement_policy=config.placement_policy,
        verify=verify,
        tracer=tracer,
    )
    vm = VirtualMachine(vm_config, injector=injector, cost_model=cost_model)
    driver = TraceDriver(spec, config.seed)
    return _drive_and_summarize(
        vm, driver, config, cost_model, min_heap, heap, tracer, checkpoint
    )
