"""Hot-path kernel microbenchmarks and fast-vs-reference identity proof.

Backs the ``repro microbench`` subcommand. Two halves:

* **Kernel benchmarks** time each vectorized kernel against the
  retained pure-Python reference implementation on deterministic
  synthetic inputs (a populated Immix block, line tables across
  occupancy profiles, a randomly worn OS failure table), and verify on
  the same inputs that both implementations produce identical output.
* **End-to-end comparison** runs a small seed-0 grid twice — once with
  the fast kernels, once under ``REPRO_KERNELS=reference`` — and
  compares wall clock plus the *full serialized RunResult payloads*,
  which must match bit-for-bit. This is the PR-3 bit-identity test
  style extended to cached vs. uncached execution.

The collected payload is written as ``BENCH_kernels.json`` (schema
``repro-kernel-bench/v1``); CI's perf-smoke job fails the build on any
divergence.
"""

from __future__ import annotations

import pickle
import random
import sys
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.generator import FailureModel
from ..hardware.geometry import Geometry
from ..heap import line_table
from ..heap.block import Block, sorted_defrag_candidates
from ..heap.heap_table import HeapTable
from ..heap.line_table import FAILED, FREE, LIVE, LIVE_PINNED
from ..heap.object_model import ObjectFactory
from ..heap.page_supply import HeapPage
from ..osim.failure_table import FailureTable
from .cache import result_to_dict
from .machine import RunConfig, min_heap_bytes, run_benchmark
from .transport import decode_result, encode_result

SCHEMA = "repro-kernel-bench/v1"

#: Sweep epoch used for all synthetic blocks (any non-zero value).
_EPOCH = 1


# ----------------------------------------------------------------------
# Deterministic synthetic inputs
# ----------------------------------------------------------------------
def synthetic_line_tables(n_lines: int, seed: int = 0) -> Dict[str, bytearray]:
    """Named line-table profiles spanning the interesting occupancies.

    ``fragmented`` is the production shape — a post-sweep block whose
    free space sits in a handful of multi-line holes between live spans
    with occasional failed lines. ``checkerboard`` (single-line
    alternation) is the adversarial worst case for run-edge scanning;
    it cannot arise from bump allocation but keeps the kernels honest.
    """
    n = n_lines
    rng = random.Random(seed)
    fragmented = bytearray([LIVE]) * n
    cursor = 0
    while cursor < n:
        cursor += rng.randrange(6, 16)
        hole = rng.randrange(2, 7)
        for line in range(cursor, min(n, cursor + hole)):
            fragmented[line] = FREE
        cursor += hole
        if rng.random() < 0.15 and cursor < n:
            fragmented[cursor] = FAILED
    checker = bytearray(LIVE if i % 2 else FREE for i in range(n))
    edges = bytearray([LIVE]) * n
    edges[0] = FREE
    edges[n - 1] = FREE
    return {
        "all_free": bytearray(n),
        "all_failed": bytearray([FAILED]) * n,
        "edge_runs": edges,
        "fragmented": fragmented,
        "checkerboard": checker,
    }


#: Object size mixes for synthetic blocks: ``small`` objects fit inside
#: one 256 B line (the DaCapo-derived common case), ``multi_line``
#: objects span several lines each (arrays, buffers) — the population
#: where per-line sweep work dominates per-object work.
SMALL_OBJECT_SIZES = (16, 24, 48, 56, 120, 248, 504)
MULTI_LINE_OBJECT_SIZES = (1016, 2040, 4088, 8184)


def build_synthetic_block(
    geometry: Geometry,
    seed: int = 0,
    fill_fraction: float = 0.7,
    pinned_weight: float = 0.05,
    failed_pcm_lines: int = 6,
    object_sizes: Sequence[int] = SMALL_OBJECT_SIZES,
    table: Optional[HeapTable] = None,
    virtual_index: int = 0,
) -> Block:
    """A deterministic, realistically fragmented block for sweep benches.

    Pages carry a few failed PCM offsets (seeding FAILED Immix lines);
    objects bump-fill the free runs up to ``fill_fraction`` with all of
    them marked at ``_EPOCH``, so repeated ``rebuild_line_marks(_EPOCH)``
    calls are stable (every object survives every sweep).
    """
    rng = random.Random(seed)
    failed_by_page: Dict[int, set] = {}
    for _ in range(failed_pcm_lines):
        slot = rng.randrange(geometry.pages_per_block)
        failed_by_page.setdefault(slot, set()).add(
            rng.randrange(geometry.lines_per_page)
        )
    pages = [
        HeapPage(index, frozenset(failed_by_page.get(index, ())))
        for index in range(geometry.pages_per_block)
    ]
    block = Block(virtual_index, pages, geometry, table=table)
    factory = ObjectFactory()
    for start, length in list(block.free_runs()):
        cursor = start * geometry.immix_line
        limit = cursor + int(length * geometry.immix_line * fill_fraction)
        while cursor < limit:
            obj = factory.make(
                rng.choice(object_sizes),
                pinned=rng.random() < pinned_weight,
            )
            if cursor + obj.size > limit:
                break
            obj.mark = _EPOCH
            block.place(obj, cursor)
            cursor += obj.size
    block.rebuild_line_marks(_EPOCH)
    return block


def build_synthetic_failure_table(
    geometry: Geometry, n_pages: int = 256, failures: int = 600, seed: int = 0
) -> FailureTable:
    rng = random.Random(seed)
    table = FailureTable(n_pages, geometry)
    total_lines = n_pages * geometry.lines_per_page
    for line in rng.sample(range(total_lines), min(failures, total_lines)):
        table.record_global_line(line)
    return table


# ----------------------------------------------------------------------
# Timing machinery
# ----------------------------------------------------------------------
def _time(fn: Callable[[], object], iterations: int) -> float:
    start = perf_counter()
    for _ in range(iterations):
        fn()
    return perf_counter() - start


def _kernel_entry(
    name: str,
    fast: Callable[[], object],
    reference: Callable[[], object],
    iterations: int,
    identical: bool,
) -> dict:
    # Warm once (primes caches/indexes, matching steady-state use) and
    # interleave the timed halves to share any machine-state drift.
    fast()
    reference()
    fast_s = _time(fast, iterations)
    reference_s = _time(reference, iterations)
    return {
        "kernel": name,
        "iterations": iterations,
        "fast_seconds": fast_s,
        "reference_seconds": reference_s,
        "speedup": (reference_s / fast_s) if fast_s > 0 else float("inf"),
        "identical": identical,
    }


def _in_mode(mode: str, fn: Callable[[], object]) -> object:
    previous = line_table.set_kernel_mode(mode)
    try:
        return fn()
    finally:
        line_table.set_kernel_mode(previous)


# ----------------------------------------------------------------------
# Kernel benchmarks
# ----------------------------------------------------------------------
def bench_kernels(iterations: int = 2000, seed: int = 0) -> List[dict]:
    """Time every vectorized kernel against its reference twin."""
    previous_mode = line_table.set_kernel_mode("fast")
    try:
        return _bench_kernels(iterations, seed)
    finally:
        line_table.set_kernel_mode(previous_mode)


def _bench_kernels(iterations: int, seed: int) -> List[dict]:
    geometry = Geometry()
    # Every paper line size: 64/128/256 B lines -> 512/256/128-line
    # tables. Identity is checked on every profile (including the
    # adversarial checkerboard); timing uses the production-shaped
    # profiles, since single-line alternation cannot arise from
    # run-granular bump allocation.
    all_tables: List[bytearray] = []
    timed_tables: List[bytearray] = []
    for immix_line in (64, 128, 256):
        line_geometry = Geometry(immix_line=immix_line)
        profiles = synthetic_line_tables(line_geometry.immix_lines_per_block, seed)
        all_tables.extend(profiles.values())
        timed_tables.extend(
            states
            for name, states in profiles.items()
            if name != "checkerboard"
        )
    results: List[dict] = []

    def each_table(fn):
        def run():
            for states in timed_tables:
                fn(states)
        return run

    identical = all(
        line_table.free_runs(states) == line_table.free_runs_reference(states)
        for states in all_tables
    )
    results.append(
        _kernel_entry(
            "line_table.free_runs",
            each_table(line_table.free_runs),
            each_table(line_table.free_runs_reference),
            iterations,
            identical,
        )
    )

    identical = all(
        line_table.fragmentation_index(states)
        == line_table.fragmentation_index_reference(states)
        and line_table.free_run_summary(states).free_lines
        == line_table.count_state(states, FREE)
        for states in all_tables
    )
    results.append(
        _kernel_entry(
            "line_table.fragmentation_index",
            each_table(line_table.fragmentation_index),
            each_table(line_table.fragmentation_index_reference),
            iterations,
            identical,
        )
    )

    # Sweep: identical twin blocks, one rebuilt per mode, full state
    # compared (line marks, conflicts, survivor order, live count).
    # Two populations: sub-line objects (sweep cost is dominated by the
    # per-object Python loop both kernels share, so the win is modest)
    # and multi-line objects at the paper's finest 64 B line size, where
    # the per-line work the fast kernel vectorizes away dominates.
    def sweep_state(block, mode):
        counts = _in_mode(mode, lambda: block.rebuild_line_marks(_EPOCH))
        return (
            counts,
            bytes(block.line_states),
            list(block.mark_conflicts),
            [obj.oid for obj in block.objects],
        )

    sweep_iters = max(1, iterations // 4)
    for label, sweep_geometry, sizes in (
        ("small objects", geometry, SMALL_OBJECT_SIZES),
        ("multi-line objects", Geometry(immix_line=64), MULTI_LINE_OBJECT_SIZES),
    ):
        fast_block = build_synthetic_block(sweep_geometry, seed, object_sizes=sizes)
        reference_block = build_synthetic_block(
            sweep_geometry, seed, object_sizes=sizes
        )
        identical = sweep_state(fast_block, "fast") == sweep_state(
            reference_block, "reference"
        )
        results.append(
            _kernel_entry(
                f"block.rebuild_line_marks ({label})",
                lambda fb=fast_block: fb.rebuild_line_marks(_EPOCH),
                lambda rb=reference_block: _in_mode(
                    "reference", lambda: rb.rebuild_line_marks(_EPOCH)
                ),
                sweep_iters,
                identical,
            )
        )

    # Allocator probe pattern: repeated free_runs on an unchanged block
    # (the overflow searcher does exactly this across recycled blocks).
    fast_block = build_synthetic_block(geometry, seed)
    reference_block = build_synthetic_block(geometry, seed)
    identical = fast_block.free_runs() == _in_mode(
        "reference", reference_block.free_runs
    )
    results.append(
        _kernel_entry(
            "block.free_runs (cached)",
            fast_block.free_runs,
            lambda: _in_mode("reference", reference_block.free_runs),
            iterations,
            identical,
        )
    )

    # Line -> objects lookup: bump placement assigns ascending offsets,
    # so the bisect path's offset order matches the reference's
    # object-list order and the lists compare equal directly.
    lines = list(range(geometry.immix_lines_per_block))
    identical = all(
        [o.oid for o in fast_block.objects_overlapping_line(line)]
        == [
            o.oid
            for o in _in_mode(
                "reference",
                lambda: reference_block.objects_overlapping_line(line),
            )
        ]
        for line in lines
    )
    overlap_iters = max(1, iterations // 20)
    results.append(
        _kernel_entry(
            "block.objects_overlapping_line",
            lambda: [fast_block.objects_overlapping_line(line) for line in lines],
            lambda: _in_mode(
                "reference",
                lambda: [
                    reference_block.objects_overlapping_line(line) for line in lines
                ],
            ),
            overlap_iters,
            identical,
        )
    )

    table = build_synthetic_failure_table(geometry, seed=seed)
    pages = table.imperfect_pages()

    def decode_all():
        table.failed_line_count()
        table.compressed_size_bytes()
        for page in pages:
            table.failed_offsets(page)

    identical = (
        {p: set(table.failed_offsets(p)) for p in pages}
        == _in_mode(
            "reference", lambda: {p: set(table.failed_offsets(p)) for p in pages}
        )
        and table.failed_line_count()
        == _in_mode("reference", table.failed_line_count)
        and table.compressed_size_bytes()
        == _in_mode("reference", table.compressed_size_bytes)
    )
    ft_iters = max(1, iterations // 10)
    results.append(
        _kernel_entry(
            "failure_table decode",
            decode_all,
            lambda: _in_mode("reference", decode_all),
            ft_iters,
            identical,
        )
    )

    # Defrag candidate ordering over many table-backed blocks sharing
    # one heap table (key computed once per block from the bounded
    # C-speed segment counts vs. recomputed per block reference).
    defrag_table = HeapTable(geometry)
    blocks = [
        build_synthetic_block(geometry, seed + i, table=defrag_table, virtual_index=i)
        for i in range(16)
    ]
    identical = [b.virtual_index for b in sorted_defrag_candidates(blocks)] == [
        b.virtual_index
        for b in _in_mode("reference", lambda: sorted_defrag_candidates(blocks))
    ]
    results.append(
        _kernel_entry(
            "sorted_defrag_candidates",
            lambda: sorted_defrag_candidates(blocks),
            lambda: _in_mode("reference", lambda: sorted_defrag_candidates(blocks)),
            max(1, iterations // 10),
            identical,
        )
    )

    # Whole-heap scan: many blocks share one HeapTable, and a single
    # C-speed pass over the flat arrays replaces the per-slot Python
    # loops the reference twins retain. One mid-heap block is retired so
    # the scans must step over an UNMAPPED hole; touch() first so the
    # timed path is the real count, not the generation-cache hit.
    heap_table = HeapTable(geometry)
    heap_blocks = [
        build_synthetic_block(geometry, seed + i, table=heap_table, virtual_index=i)
        for i in range(16)
    ]
    heap_table.retire(heap_blocks.pop(7).slot)

    def heap_counts():
        heap_table.touch()
        return heap_table.free_line_count(), heap_table.failed_line_count()

    identical = heap_counts() == (
        heap_table.free_line_count_reference(),
        heap_table.failed_line_count_reference(),
    )
    results.append(
        _kernel_entry(
            "heap_table line counts (heap-scan)",
            heap_counts,
            lambda: _in_mode("reference", heap_counts),
            max(1, iterations // 2),
            identical,
        )
    )

    identical = (
        heap_table.slots_with_free_lines()
        == heap_table.slots_with_free_lines_reference()
    )
    results.append(
        _kernel_entry(
            "heap_table.slots_with_free_lines",
            heap_table.slots_with_free_lines,
            lambda: _in_mode("reference", heap_table.slots_with_free_lines),
            max(1, iterations // 2),
            identical,
        )
    )

    # Whole-heap sweep: rebuild every block of a shared table back to
    # back (the collector's sweep loop), fast vs reference, with the
    # final flat arrays compared across the two heaps as well.
    def build_heap(n_blocks: int) -> Tuple[HeapTable, List[Block]]:
        shared = HeapTable(geometry)
        return shared, [
            build_synthetic_block(geometry, seed + i, table=shared, virtual_index=i)
            for i in range(n_blocks)
        ]

    fast_table, fast_heap = build_heap(8)
    reference_table, reference_heap = build_heap(8)
    identical = [
        sweep_state(fb, "fast") for fb in fast_heap
    ] == [sweep_state(rb, "reference") for rb in reference_heap] and bytes(
        fast_table.lines
    ) == bytes(reference_table.lines)
    results.append(
        _kernel_entry(
            "heap sweep (shared table, 8 blocks)",
            lambda: [fb.rebuild_line_marks(_EPOCH) for fb in fast_heap],
            lambda: _in_mode(
                "reference",
                lambda: [rb.rebuild_line_marks(_EPOCH) for rb in reference_heap],
            ),
            max(1, iterations // 32),
            identical,
        )
    )

    # Result transport codec: one spool-frame round trip vs one pickle
    # round trip of the same RunResult. Identity means both transports
    # reconstruct the same serialized payload — the bit-identity the
    # regression suite holds REPRO_RESULT_TRANSPORT to.
    codec_result = run_benchmark(
        RunConfig(
            workload="luindex",
            heap_multiplier=2.0,
            failure_model=FailureModel(rate=0.25),
            seed=seed,
            scale=0.05,
        )
    )
    frame = encode_result(codec_result)
    pickled = pickle.dumps(codec_result, protocol=pickle.HIGHEST_PROTOCOL)
    identical = (
        result_to_dict(decode_result(frame))
        == result_to_dict(pickle.loads(pickled))
        == result_to_dict(codec_result)
    )
    codec_entry = _kernel_entry(
        "result codec (spool frame vs pickle)",
        lambda: decode_result(encode_result(codec_result)),
        lambda: pickle.loads(
            pickle.dumps(codec_result, protocol=pickle.HIGHEST_PROTOCOL)
        ),
        max(1, iterations // 2),
        identical,
    )
    codec_entry["frame_bytes"] = len(frame)
    codec_entry["pickle_bytes"] = len(pickled)
    results.append(codec_entry)
    return results


# ----------------------------------------------------------------------
# End-to-end fast vs reference
# ----------------------------------------------------------------------
def bench_end_to_end(
    workloads: Sequence[str] = ("luindex",),
    rates: Sequence[float] = (0.0, 0.25),
    heap_multiplier: float = 2.0,
    scale: float = 0.1,
    seed: int = 0,
    verify: Optional[str] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Run the grid under both kernel modes; compare time and payloads."""
    configs = [
        RunConfig(
            workload=workload,
            heap_multiplier=heap_multiplier,
            failure_model=FailureModel(rate=rate),
            seed=seed,
            scale=scale,
        )
        for workload in workloads
        for rate in rates
    ]
    # Prime the min-heap memo so neither timed pass pays for it alone.
    for config in configs:
        min_heap_bytes(config)

    def run_all(mode: str) -> Tuple[List[dict], float]:
        payloads: List[dict] = []
        previous = line_table.set_kernel_mode(mode)
        try:
            start = perf_counter()
            for config in configs:
                if progress is not None:
                    progress(
                        f"{mode}: {config.workload} "
                        f"rate={config.failure_model.rate:g}"
                    )
                payloads.append(result_to_dict(run_benchmark(config, verify=verify)))
            elapsed = perf_counter() - start
        finally:
            line_table.set_kernel_mode(previous)
        return payloads, elapsed

    fast_payloads, fast_s = run_all("fast")
    reference_payloads, reference_s = run_all("reference")
    divergent = [
        {
            "workload": config.workload,
            "rate": config.failure_model.rate,
            "seed": config.seed,
        }
        for config, fast, reference in zip(configs, fast_payloads, reference_payloads)
        if fast != reference
    ]
    return {
        "grid": {
            "workloads": list(workloads),
            "rates": list(rates),
            "heap_multiplier": heap_multiplier,
            "scale": scale,
            "seed": seed,
            "verify": verify,
            "cells": len(configs),
        },
        "fast_seconds": fast_s,
        "reference_seconds": reference_s,
        "speedup": (reference_s / fast_s) if fast_s > 0 else float("inf"),
        "bit_identical": not divergent,
        "divergent_cells": divergent,
    }


def run_microbench(
    iterations: int = 2000,
    seed: int = 0,
    workloads: Sequence[str] = ("luindex",),
    rates: Sequence[float] = (0.0, 0.25),
    heap_multiplier: float = 2.0,
    scale: float = 0.1,
    verify: Optional[str] = None,
    end_to_end: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> dict:
    """Full microbenchmark payload (the BENCH_kernels.json contents)."""
    geometry = Geometry()
    payload = {
        "schema": SCHEMA,
        "python": sys.version.split()[0],
        "geometry": {
            "immix_line": geometry.immix_line,
            "lines_per_block": geometry.immix_lines_per_block,
            "lines_per_page": geometry.lines_per_page,
        },
        "seed": seed,
        "kernels": bench_kernels(iterations=iterations, seed=seed),
        "end_to_end": None,
        # Context for the end_to_end block: the per-block kernel
        # generation (PR 8 tip, f75a651) measured on the same host that
        # produced the committed artifact, best of 3 on the default
        # grid. Absolute seconds are host-specific; the speedup ratios
        # are what CI holds floors on.
        "baseline": {
            "label": "per-block kernels (PR 8, f75a651)",
            "fast_seconds": 0.2163,
            "reference_seconds": 0.3152,
            "speedup": 1.457,
            "grid": {"workloads": ["luindex", "antlr"], "rates": [0.0, 0.1],
                     "scale": 0.2, "seed": 0},
        },
    }
    if end_to_end:
        payload["end_to_end"] = bench_end_to_end(
            workloads=workloads,
            rates=rates,
            heap_multiplier=heap_multiplier,
            scale=scale,
            seed=seed,
            verify=verify,
            progress=progress,
        )
    return payload


def payload_ok(payload: dict) -> bool:
    """True when every kernel and the end-to-end grid stayed identical."""
    if not all(entry["identical"] for entry in payload["kernels"]):
        return False
    end_to_end = payload.get("end_to_end")
    return end_to_end is None or bool(end_to_end["bit_identical"])
