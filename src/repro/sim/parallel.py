"""Parallel, resumable execution of experiment grids.

The unit of work is one :class:`~repro.sim.machine.RunConfig` cell.
``run_grid`` fans cells out over ``multiprocessing`` workers and
returns results **in input order**, so parallel output is bit-identical
to a serial run — ``run_benchmark`` is deterministic in (config, cost
model), and ordering is restored by index regardless of completion
order.

When a :class:`~repro.sim.cache.ResultCache` is supplied, cells already
on disk are served without touching the pool, and fresh results are
published for the next invocation — repeated figure/sweep runs only pay
for cells they have never seen.

Every call also produces a :class:`SweepStats` record (per-cell wall
time, cache hit/miss counts, worker utilization) so the performance of
the harness itself stays observable; the CLI serializes it as
``BENCH_sweep.json``.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..obs.ledger import (
    ATTEMPT_END,
    ATTEMPT_START,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_STORE,
    CHECKPOINT,
    CHECKPOINT_EVERY,
    COLLECT,
    DISPATCH,
    LEDGER_SCHEMA,
    PROFILE,
    SWEEP_BEGIN,
    SWEEP_END,
    SweepLedger,
    worker_emit,
)
from ..obs.profile import profile_call
from ..obs.profile import spool_path as _profile_spool_path
from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from .cache import ResultCache
from .chaos import ChaosConfig
from .ftexec import FaultToleranceReport, RetryPolicy, run_cells_fault_tolerant
from .machine import RunConfig, RunResult, run_benchmark
from .transport import Handle, SpoolReader, SpoolWriter, pickled_size, use_spool_transport

#: Sweep-artifact schema identifier (see EXPERIMENTS.md). Version 2
#: added the fault-tolerance block and the deterministic ``results``
#: section the chaos-smoke CI job compares across runs.
SWEEP_SCHEMA = "repro.sweep/2"


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` (auto): one per CPU, capped."""
    return max(1, min(os.cpu_count() or 1, 16))


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
@dataclass
class CellTiming:
    """Wall-clock record of one grid cell."""

    index: int
    workload: str
    description: str
    wall_s: float
    cached: bool
    completed: bool

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "workload": self.workload,
            "config": self.description,
            "wall_s": self.wall_s,
            "cached": self.cached,
            "completed": self.completed,
        }


@dataclass
class SweepStats:
    """Aggregate accounting of one ``run_grid`` call."""

    jobs: int
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    #: Sum of per-cell execution time (the work the pool actually did).
    busy_s: float = 0.0
    #: Bytes that actually crossed the worker boundary for results
    #: (spool frames or pickles; 0 for inline and cached cells).
    result_bytes: int = 0
    #: What the pickle transport would have moved for the same results
    #: (accumulated only when the spool transport is active).
    pickle_bytes: int = 0
    timings: List[CellTiming] = field(default_factory=list)
    #: What the fault-tolerant executor survived (zeros on the plain
    #: pool path, which aborts on the first worker death instead).
    fault_tolerance: FaultToleranceReport = field(
        default_factory=FaultToleranceReport
    )

    @property
    def utilization(self) -> float:
        """busy / (jobs x wall): 1.0 means every worker was saturated."""
        if self.wall_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.jobs * self.wall_s))

    def merge(self, other: "SweepStats") -> None:
        base = len(self.timings)
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.wall_s += other.wall_s
        self.busy_s += other.busy_s
        self.result_bytes += other.result_bytes
        self.pickle_bytes += other.pickle_bytes
        self.fault_tolerance.merge(other.fault_tolerance)
        for timing in other.timings:
            self.timings.append(
                CellTiming(
                    index=base + timing.index,
                    workload=timing.workload,
                    description=timing.description,
                    wall_s=timing.wall_s,
                    cached=timing.cached,
                    completed=timing.completed,
                )
            )

    def to_dict(self) -> dict:
        return {
            "schema": SWEEP_SCHEMA,
            "jobs": self.jobs,
            "cells": self.cells,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "transport": {
                "result_bytes": self.result_bytes,
                "pickle_bytes": self.pickle_bytes,
            },
            "fault_tolerance": self.fault_tolerance.to_dict(),
            "cell_timings": [timing.to_dict() for timing in self.timings],
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_WORKER_COST_MODEL: CostModel = DEFAULT_COST_MODEL
_WORKER_LEDGER_PATH: Optional[str] = None
_WORKER_PROFILE_DIR: Optional[str] = None
_WORKER_SPOOL: Optional[SpoolWriter] = None


def _init_worker(
    cost_model: CostModel,
    ledger_path: Optional[str] = None,
    profile_dir: Optional[str] = None,
    spool_dir: Optional[str] = None,
) -> None:
    global _WORKER_COST_MODEL, _WORKER_LEDGER_PATH, _WORKER_PROFILE_DIR
    global _WORKER_SPOOL
    _WORKER_COST_MODEL = cost_model
    _WORKER_LEDGER_PATH = ledger_path
    _WORKER_PROFILE_DIR = profile_dir
    if _WORKER_SPOOL is not None:
        _WORKER_SPOOL.close()
    _WORKER_SPOOL = SpoolWriter(spool_dir) if spool_dir is not None else None


def _run_cell(
    item: Tuple[int, RunConfig]
) -> Tuple[int, Union[RunResult, Handle], float]:
    index, config = item
    path = _WORKER_LEDGER_PATH
    worker_emit(
        path, ATTEMPT_START, cell=index, attempt=1, workload=config.workload
    )
    start = time.perf_counter()
    if _WORKER_PROFILE_DIR is not None:
        spool = _profile_spool_path(_WORKER_PROFILE_DIR, index, 1)
        result = profile_call(spool, run_benchmark, config, _WORKER_COST_MODEL)
        worker_emit(path, PROFILE, cell=index, attempt=1, spool=spool)
    else:
        result = run_benchmark(config, _WORKER_COST_MODEL)
    wall = time.perf_counter() - start
    worker_emit(
        path,
        ATTEMPT_END,
        cell=index,
        attempt=1,
        ok=True,
        wall_s=wall,
        workload=config.workload,
    )
    if _WORKER_SPOOL is not None:
        # Zero-pickle transport: the frame goes to this worker's spool
        # file; only the (pid, offset, length) handle rides the pipe.
        return index, _WORKER_SPOOL.append(result), wall
    return index, result, wall


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def run_grid(
    configs: Sequence[RunConfig],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    chaos: Optional[ChaosConfig] = None,
    ledger: Optional[SweepLedger] = None,
    profile_dir: Optional[str] = None,
) -> Tuple[List[RunResult], SweepStats]:
    """Execute every cell; results come back in input order.

    ``jobs <= 1`` runs inline (no pool); ``jobs == 0`` means auto
    (:func:`default_jobs`). Cached cells never reach the pool.

    Passing ``retry`` and/or ``timeout_s`` routes uncached cells
    through the fault-tolerant executor (:mod:`repro.sim.ftexec`):
    crashed, erroring, or overrunning workers are retried with backoff,
    and cells failing persistently are quarantined — the returned list
    then contains only the surviving results (still input-ordered) and
    ``stats.fault_tolerance`` reports the casualties. ``chaos`` is the
    test/CI hook that injects worker failures.

    ``ledger`` is the flight recorder (:mod:`repro.obs.ledger`):
    parent-side events go through it (and its listeners — live
    progress, serve job counters); workers append straight to its
    ``path``, if any. ``profile_dir`` arms per-attempt cProfile
    spooling in workers. Both are strictly observational — they never
    change the returned results.
    """
    if jobs == 0:
        jobs = default_jobs()
    configs = list(configs)
    stats = SweepStats(jobs=max(1, jobs), cells=len(configs))
    results: List[Optional[RunResult]] = [None] * len(configs)
    recorder = ledger if ledger is not None else SweepLedger()
    if profile_dir is not None:
        os.makedirs(profile_dir, exist_ok=True)
    started = time.perf_counter()
    recorder.emit(
        SWEEP_BEGIN, schema=LEDGER_SCHEMA, cells=len(configs), jobs=max(1, jobs)
    )

    pending: List[Tuple[int, RunConfig]] = []
    for index, config in enumerate(configs):
        if cache is not None:
            lookup_start = time.perf_counter()
            hit = cache.get(config)
            lookup_wall = time.perf_counter() - lookup_start
            if hit is not None:
                results[index] = hit
                stats.cache_hits += 1
                stats.timings.append(
                    CellTiming(
                        index=index,
                        workload=config.workload,
                        description=_describe(config),
                        wall_s=lookup_wall,
                        cached=True,
                        completed=hit.completed,
                    )
                )
                recorder.emit(
                    CACHE_HIT,
                    cell=index,
                    workload=config.workload,
                    wall_s=lookup_wall,
                )
                continue
            stats.cache_misses += 1
            recorder.emit(
                CACHE_MISS,
                cell=index,
                workload=config.workload,
                wall_s=lookup_wall,
            )
        pending.append((index, config))

    completed = 0

    def _complete(
        index: int,
        result: RunResult,
        wall: float,
        collect: bool = True,
        result_bytes: int = 0,
        pickle_bytes: Optional[int] = None,
    ) -> None:
        nonlocal completed
        results[index] = result
        stats.busy_s += wall
        stats.result_bytes += result_bytes
        if pickle_bytes is not None:
            stats.pickle_bytes += pickle_bytes
        stats.timings.append(
            CellTiming(
                index=index,
                workload=result.config.workload,
                description=_describe(result.config),
                wall_s=wall,
                cached=False,
                completed=result.completed,
            )
        )
        if collect:
            extra = {} if pickle_bytes is None else {"pickle_bytes": pickle_bytes}
            recorder.emit(
                COLLECT,
                cell=index,
                workload=result.config.workload,
                wall_s=wall,
                result_bytes=result_bytes,
                **extra,
            )
        if cache is not None:
            store_start = time.perf_counter()
            cache.put(result.config, result)
            recorder.emit(
                CACHE_STORE,
                cell=index,
                workload=result.config.workload,
                wall_s=time.perf_counter() - store_start,
            )
        completed += 1
        if completed % CHECKPOINT_EVERY == 0:
            recorder.emit(CHECKPOINT, done=completed, total=len(pending))
        if progress is not None:
            progress(
                f"{result.config.workload} {_describe(result.config)}: "
                f"{'ok' if result.completed else 'DNF'} ({wall:.2f}s)"
            )

    teardown_s = 0.0
    if pending:
        if retry is not None or timeout_s is not None or chaos is not None:
            # The executor emits dispatch/collect itself (it learns of
            # completions at reap time, not in bulk afterwards).
            completions, ft_report = run_cells_fault_tolerant(
                pending,
                cost_model,
                jobs,
                retry or RetryPolicy(),
                timeout_s=timeout_s,
                progress=progress,
                chaos=chaos,
                describe=_describe,
                ledger=recorder,
                profile_dir=profile_dir,
            )
            stats.fault_tolerance.merge(ft_report)
            for index, result, wall in completions:
                _complete(index, result, wall, collect=False)
        elif jobs <= 1:
            _init_worker(cost_model, recorder.path, profile_dir)
            try:
                for item in pending:
                    recorder.emit(
                        DISPATCH, cell=item[0], workload=item[1].workload
                    )
                    index, result, wall = _run_cell(item)
                    _complete(index, result, wall)
            finally:
                _init_worker(DEFAULT_COST_MODEL)
        else:
            workers = min(jobs, len(pending))
            context = multiprocessing.get_context()
            # Dispatch means "queued on the pool": the gap to each
            # cell's attempt_start is time spent waiting for a slot —
            # including the pool's own startup, hence before Pool().
            for index, config in pending:
                recorder.emit(DISPATCH, cell=index, workload=config.workload)
            spooling = use_spool_transport()
            spool_tmp = (
                tempfile.TemporaryDirectory(prefix="repro-spool-")
                if spooling
                else None
            )
            spool_dir = spool_tmp.name if spool_tmp is not None else None
            reader = SpoolReader(spool_dir) if spool_dir is not None else None
            pool = context.Pool(
                workers,
                initializer=_init_worker,
                initargs=(cost_model, recorder.path, profile_dir, spool_dir),
            )
            try:
                for index, payload, wall in pool.imap_unordered(
                    _run_cell, pending
                ):
                    if reader is not None:
                        # payload is a (pid, offset, length) handle: the
                        # frame crossed via the spool file, the pipe
                        # carried only the handle tuple.
                        result = reader.read(payload)
                        _complete(
                            index,
                            result,
                            wall,
                            result_bytes=payload[2],
                            pickle_bytes=pickled_size(result),
                        )
                    else:
                        _complete(
                            index, payload, wall, result_bytes=pickled_size(payload)
                        )
            finally:
                # Same semantics as `with Pool(...)` (__exit__ calls
                # terminate), but timed: winding the pool down is real
                # wall time the ledger must account for.
                teardown_start = time.perf_counter()
                pool.terminate()
                pool.join()
                if reader is not None:
                    reader.close()
                if spool_tmp is not None:
                    spool_tmp.cleanup()
                teardown_s = time.perf_counter() - teardown_start

    stats.timings.sort(key=lambda timing: timing.index)
    stats.wall_s = time.perf_counter() - started
    recorder.emit(
        SWEEP_END,
        cells=len(configs),
        executed=completed,
        cached=stats.cache_hits,
        quarantined=len(stats.fault_tolerance.quarantined),
        wall_s=stats.wall_s,
        teardown_s=teardown_s,
    )
    final = [result for result in results if result is not None]
    # Quarantined cells are the only legitimate gaps (partial results
    # instead of an aborted sweep); anything else missing is a bug.
    assert len(final) == len(configs) - len(stats.fault_tolerance.quarantined)
    return final, stats


def _describe(config: RunConfig) -> str:
    return (
        f"{config.failure_model.describe()} L{config.immix_line} "
        f"h{config.heap_multiplier:g} {config.collector} seed{config.seed}"
    )
