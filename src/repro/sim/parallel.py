"""Parallel, resumable execution of experiment grids.

The unit of work is one :class:`~repro.sim.machine.RunConfig` cell.
``run_grid`` fans cells out over ``multiprocessing`` workers and
returns results **in input order**, so parallel output is bit-identical
to a serial run — ``run_benchmark`` is deterministic in (config, cost
model), and ordering is restored by index regardless of completion
order.

When a :class:`~repro.sim.cache.ResultCache` is supplied, cells already
on disk are served without touching the pool, and fresh results are
published for the next invocation — repeated figure/sweep runs only pay
for cells they have never seen.

Every call also produces a :class:`SweepStats` record (per-cell wall
time, cache hit/miss counts, worker utilization) so the performance of
the harness itself stays observable; the CLI serializes it as
``BENCH_sweep.json``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..runtime.time_model import DEFAULT_COST_MODEL, CostModel
from .cache import ResultCache
from .chaos import ChaosConfig
from .ftexec import FaultToleranceReport, RetryPolicy, run_cells_fault_tolerant
from .machine import RunConfig, RunResult, run_benchmark

#: Sweep-artifact schema identifier (see EXPERIMENTS.md). Version 2
#: added the fault-tolerance block and the deterministic ``results``
#: section the chaos-smoke CI job compares across runs.
SWEEP_SCHEMA = "repro.sweep/2"


def default_jobs() -> int:
    """Worker count used for ``--jobs 0`` (auto): one per CPU, capped."""
    return max(1, min(os.cpu_count() or 1, 16))


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
@dataclass
class CellTiming:
    """Wall-clock record of one grid cell."""

    index: int
    workload: str
    description: str
    wall_s: float
    cached: bool
    completed: bool

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "workload": self.workload,
            "config": self.description,
            "wall_s": self.wall_s,
            "cached": self.cached,
            "completed": self.completed,
        }


@dataclass
class SweepStats:
    """Aggregate accounting of one ``run_grid`` call."""

    jobs: int
    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_s: float = 0.0
    #: Sum of per-cell execution time (the work the pool actually did).
    busy_s: float = 0.0
    timings: List[CellTiming] = field(default_factory=list)
    #: What the fault-tolerant executor survived (zeros on the plain
    #: pool path, which aborts on the first worker death instead).
    fault_tolerance: FaultToleranceReport = field(
        default_factory=FaultToleranceReport
    )

    @property
    def utilization(self) -> float:
        """busy / (jobs x wall): 1.0 means every worker was saturated."""
        if self.wall_s <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(1.0, self.busy_s / (self.jobs * self.wall_s))

    def merge(self, other: "SweepStats") -> None:
        base = len(self.timings)
        self.cells += other.cells
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.wall_s += other.wall_s
        self.busy_s += other.busy_s
        self.fault_tolerance.merge(other.fault_tolerance)
        for timing in other.timings:
            self.timings.append(
                CellTiming(
                    index=base + timing.index,
                    workload=timing.workload,
                    description=timing.description,
                    wall_s=timing.wall_s,
                    cached=timing.cached,
                    completed=timing.completed,
                )
            )

    def to_dict(self) -> dict:
        return {
            "schema": SWEEP_SCHEMA,
            "jobs": self.jobs,
            "cells": self.cells,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
            "wall_s": self.wall_s,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
            "fault_tolerance": self.fault_tolerance.to_dict(),
            "cell_timings": [timing.to_dict() for timing in self.timings],
        }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
_WORKER_COST_MODEL: CostModel = DEFAULT_COST_MODEL


def _init_worker(cost_model: CostModel) -> None:
    global _WORKER_COST_MODEL
    _WORKER_COST_MODEL = cost_model


def _run_cell(item: Tuple[int, RunConfig]) -> Tuple[int, RunResult, float]:
    index, config = item
    start = time.perf_counter()
    result = run_benchmark(config, _WORKER_COST_MODEL)
    return index, result, time.perf_counter() - start


# ----------------------------------------------------------------------
# Driver side
# ----------------------------------------------------------------------
def run_grid(
    configs: Sequence[RunConfig],
    cost_model: CostModel = DEFAULT_COST_MODEL,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    progress: Optional[Callable[[str], None]] = None,
    retry: Optional[RetryPolicy] = None,
    timeout_s: Optional[float] = None,
    chaos: Optional[ChaosConfig] = None,
) -> Tuple[List[RunResult], SweepStats]:
    """Execute every cell; results come back in input order.

    ``jobs <= 1`` runs inline (no pool); ``jobs == 0`` means auto
    (:func:`default_jobs`). Cached cells never reach the pool.

    Passing ``retry`` and/or ``timeout_s`` routes uncached cells
    through the fault-tolerant executor (:mod:`repro.sim.ftexec`):
    crashed, erroring, or overrunning workers are retried with backoff,
    and cells failing persistently are quarantined — the returned list
    then contains only the surviving results (still input-ordered) and
    ``stats.fault_tolerance`` reports the casualties. ``chaos`` is the
    test/CI hook that injects worker failures.
    """
    if jobs == 0:
        jobs = default_jobs()
    configs = list(configs)
    stats = SweepStats(jobs=max(1, jobs), cells=len(configs))
    results: List[Optional[RunResult]] = [None] * len(configs)
    started = time.perf_counter()

    pending: List[Tuple[int, RunConfig]] = []
    for index, config in enumerate(configs):
        if cache is not None:
            lookup_start = time.perf_counter()
            hit = cache.get(config)
            if hit is not None:
                results[index] = hit
                stats.cache_hits += 1
                stats.timings.append(
                    CellTiming(
                        index=index,
                        workload=config.workload,
                        description=_describe(config),
                        wall_s=time.perf_counter() - lookup_start,
                        cached=True,
                        completed=hit.completed,
                    )
                )
                continue
            stats.cache_misses += 1
        pending.append((index, config))

    if pending:
        if retry is not None or timeout_s is not None or chaos is not None:
            completions, ft_report = run_cells_fault_tolerant(
                pending,
                cost_model,
                jobs,
                retry or RetryPolicy(),
                timeout_s=timeout_s,
                progress=progress,
                chaos=chaos,
                describe=_describe,
            )
            stats.fault_tolerance.merge(ft_report)
        elif jobs <= 1:
            _init_worker(cost_model)
            try:
                completions = [_run_cell(item) for item in pending]
            finally:
                _init_worker(DEFAULT_COST_MODEL)
        else:
            workers = min(jobs, len(pending))
            context = multiprocessing.get_context()
            with context.Pool(
                workers, initializer=_init_worker, initargs=(cost_model,)
            ) as pool:
                completions = list(pool.imap_unordered(_run_cell, pending))
        for index, result, wall in completions:
            results[index] = result
            stats.busy_s += wall
            stats.timings.append(
                CellTiming(
                    index=index,
                    workload=result.config.workload,
                    description=_describe(result.config),
                    wall_s=wall,
                    cached=False,
                    completed=result.completed,
                )
            )
            if cache is not None:
                cache.put(result.config, result)
            if progress is not None:
                progress(
                    f"{result.config.workload} {_describe(result.config)}: "
                    f"{'ok' if result.completed else 'DNF'} ({wall:.2f}s)"
                )

    stats.timings.sort(key=lambda timing: timing.index)
    stats.wall_s = time.perf_counter() - started
    final = [result for result in results if result is not None]
    # Quarantined cells are the only legitimate gaps (partial results
    # instead of an aborted sweep); anything else missing is a bug.
    assert len(final) == len(configs) - len(stats.fault_tolerance.quarantined)
    return final, stats


def _describe(config: RunConfig) -> str:
    return (
        f"{config.failure_model.describe()} L{config.immix_line} "
        f"h{config.heap_multiplier:g} {config.collector} seed{config.seed}"
    )
