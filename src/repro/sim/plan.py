"""Declarative experiment plans: studies as data, not code.

Every study in this reproduction is a (workload x configuration x seed)
grid. This module gives those grids a declarative file format — YAML or
JSON — with Cartesian sweep expansion, so new studies are plan files
instead of hand-enumerated loops in :mod:`repro.sim.experiments` or
walls of CLI flags. The shipped plans live under ``plans/``.

A plan document::

    plan: repro.plan/1
    name: failure-sweep
    description: figure-7-style failure-rate sweep
    include: [include/defaults.yaml]    # optional, merged first
    defaults:                           # the cell template
      scale: 0.35
      rate: "{r}"                       # {placeholder} -> axis value
    axes:                               # Cartesian product, in order
      workload: [pmd, xalan]
      line: [64, 256]
      r: [0.0, 0.1, 0.5]
    figures: [fig7]                     # optional, for `figures --plan`

Expansion rules
---------------
* ``axes`` maps axis names to non-empty value lists. The Cartesian
  product is taken **in declaration order, first axis outermost** —
  the same order the ``sweep`` CLI uses for ``workloads x rates x
  heaps x seeds`` — so a plan spelling the same grid produces the same
  cell order and a bit-identical ``BENCH_sweep.json`` results section.
* An axis named after a cell field (``workload``, ``rate``, ``heap``,
  ``line``, ``collector``, ``clustering``, ``cluster_bytes``,
  ``compensate``, ``arraylets``, ``seed``, ``scale``, ``wear_policy``,
  ``pool_policy``, ``placement_policy``) sets that field directly in
  every cell.
* Any other axis is a *free placeholder* and must be referenced from
  ``defaults`` as ``"{name}"`` (exact match substitutes the typed
  value; embedded in a longer string it substitutes as text). A free
  axis nothing references, or a placeholder naming no axis, is a
  precheck error — typos die before any cell runs.
* An axis value may also be a mapping of cell fields, which merges
  into the cell — this expresses "variants" that change several
  fields together (see ``plans/heap_size_study.yaml``).
* ``defaults`` seeds every cell; built-in defaults (matching the
  ``sweep`` subcommand) fill whatever the plan leaves unset.
* ``include`` merges other documents first (paths relative to the
  including file, cycles rejected): scalar keys are replaced,
  ``defaults``/``axes`` merge key-wise, with the including document
  winning. Included fragments may omit ``plan``/``name``.

The precheck (:func:`precheck`) validates the whole document — unknown
keys, unknown workloads/collectors/figures, type and range violations,
empty axes, placeholder typos, duplicate cells — and reports **every**
problem, not just the first. :func:`expand` compiles a clean document
into :class:`ExpandedPlan`, whose ``cells`` are ordinary
:class:`~repro.sim.machine.RunConfig` objects ready for
:func:`~repro.sim.parallel.run_grid`; execution therefore reuses the
cache/retry/quarantine machinery unchanged.
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import PlanError
from ..faults.generator import FailureModel
from ..policies import PLACEMENT_POLICIES, POOL_POLICIES, WEAR_POLICIES
from ..workloads.dacapo import BY_NAME
from .cache import ResultCache
from .machine import RunConfig

#: Plan-format schema identifier (the required ``plan:`` key).
PLAN_SCHEMA = "repro.plan/1"

#: Keys allowed at the top level of a plan document.
TOP_LEVEL_KEYS = ("plan", "name", "description", "include", "defaults", "axes", "figures")

#: Collectors a cell may select (mirrors the ``bench`` CLI choices).
COLLECTORS = ("immix", "sticky-immix", "marksweep", "sticky-marksweep")

#: Figure ids `figures --plan` may name (mirrors the CLI registry;
#: ``tests/sim/test_plan.py`` asserts the two stay in sync).
KNOWN_FIGURES = (
    "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "pauses", "headline", "policies",
)

#: Maximum include nesting (cycles are detected separately; this bounds
#: honest-but-deep chains).
MAX_INCLUDE_DEPTH = 8

_PLACEHOLDER = re.compile(r"\{([A-Za-z_][A-Za-z0-9_-]*)\}")


# ----------------------------------------------------------------------
# Cell fields: what a plan may set and how it compiles to RunConfig
# ----------------------------------------------------------------------
def _is_bool(value: Any) -> bool:
    return isinstance(value, bool)


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_workload(value: Any) -> Optional[str]:
    if not isinstance(value, str):
        return f"expected a workload name, got {value!r}"
    if value not in BY_NAME:
        return f"unknown workload {value!r}; available: {', '.join(sorted(BY_NAME))}"
    return None


def _check_rate(value: Any) -> Optional[str]:
    if not _is_number(value):
        return f"expected a number in [0, 1], got {value!r}"
    if not 0.0 <= value <= 1.0:
        return f"failure rate {value!r} outside [0, 1]"
    return None


def _check_heap(value: Any) -> Optional[str]:
    if not _is_number(value) or value <= 0:
        return f"expected a positive heap multiplier, got {value!r}"
    return None


def _check_line(value: Any) -> Optional[str]:
    if not _is_int(value) or value not in (64, 128, 256):
        return f"expected an Immix line size of 64, 128, or 256, got {value!r}"
    return None


def _check_collector(value: Any) -> Optional[str]:
    if value not in COLLECTORS:
        return f"unknown collector {value!r}; available: {', '.join(COLLECTORS)}"
    return None


def _check_clustering(value: Any) -> Optional[str]:
    if not _is_int(value) or value < 0:
        return f"expected a page count >= 0, got {value!r}"
    return None


def _check_cluster_bytes(value: Any) -> Optional[str]:
    if value is None:
        return None
    if not _is_int(value) or value <= 0:
        return f"expected a positive byte granularity (or null), got {value!r}"
    return None


def _check_bool(value: Any) -> Optional[str]:
    if not _is_bool(value):
        return f"expected true or false, got {value!r}"
    return None


def _check_seed(value: Any) -> Optional[str]:
    if not _is_int(value) or value < 0:
        return f"expected a seed >= 0, got {value!r}"
    return None


def _check_scale(value: Any) -> Optional[str]:
    if not _is_number(value) or not 0 < value <= 1.0:
        return f"expected a scale in (0, 1], got {value!r}"
    return None


def _policy_checker(registry: Dict[str, Any], axis: str):
    def check(value: Any) -> Optional[str]:
        if not isinstance(value, str) or value not in registry:
            return (
                f"unknown {axis} {value!r}; "
                f"available: {', '.join(sorted(registry))}"
            )
        return None

    return check


_check_wear_policy = _policy_checker(WEAR_POLICIES, "wear_policy")
_check_pool_policy = _policy_checker(POOL_POLICIES, "pool_policy")
_check_placement_policy = _policy_checker(PLACEMENT_POLICIES, "placement_policy")


#: field name -> (validator, built-in default). The defaults mirror the
#: ``sweep`` subcommand's flag defaults so a plan spelling that grid is
#: cell-for-cell identical to the flag spelling.
CELL_FIELDS: Dict[str, Tuple[Any, Any]] = {
    "workload": (_check_workload, None),  # required: no usable default
    "rate": (_check_rate, 0.0),
    "heap": (_check_heap, 2.0),
    "line": (_check_line, 256),
    "collector": (_check_collector, "sticky-immix"),
    "clustering": (_check_clustering, 0),
    "cluster_bytes": (_check_cluster_bytes, None),
    "compensate": (_check_bool, True),
    "arraylets": (_check_bool, False),
    "seed": (_check_seed, 0),
    "scale": (_check_scale, 0.35),
    "wear_policy": (_check_wear_policy, "none"),
    "pool_policy": (_check_pool_policy, "paper"),
    "placement_policy": (_check_placement_policy, "paper"),
}


def cell_to_config(cell: Dict[str, Any]) -> RunConfig:
    """Compile one fully-populated cell mapping into a RunConfig."""
    return RunConfig(
        workload=cell["workload"],
        heap_multiplier=float(cell["heap"]),
        collector=cell["collector"],
        failure_model=FailureModel(
            rate=float(cell["rate"]),
            cluster_bytes=cell["cluster_bytes"],
            hw_region_pages=cell["clustering"],
        ),
        immix_line=cell["line"],
        compensate=cell["compensate"],
        arraylets=cell["arraylets"],
        seed=cell["seed"],
        scale=float(cell["scale"]),
        wear_policy=cell["wear_policy"],
        pool_policy=cell["pool_policy"],
        placement_policy=cell["placement_policy"],
    )


def cell_slug(config: RunConfig) -> str:
    """Filesystem-safe cell identifier, unique across every sweepable
    dimension.

    Earlier revisions omitted clustering and scale, so traced cells
    differing only there silently overwrote each other's files; every
    RunConfig field a grid can vary now appears (conditionally for the
    off-by-default ones).
    """

    def num(value: float) -> str:
        return f"{value:g}".replace(".", "p").replace("-", "m")

    parts = [
        config.workload,
        f"r{num(config.failure_model.rate)}",
        f"h{num(config.heap_multiplier)}",
        f"L{config.immix_line}",
        f"c{config.failure_model.hw_region_pages}",
        config.collector,
        f"s{config.seed}",
        f"x{num(config.scale)}",
    ]
    if config.failure_model.cluster_bytes:
        parts.append(f"cb{config.failure_model.cluster_bytes}")
    if not config.compensate:
        parts.append("nocomp")
    if config.arraylets:
        parts.append("al")
    # Policy parts are conditional like the other off-by-default
    # dimensions: default-policy slugs stay byte-identical to the
    # pre-policy spellings (resume/trace paths key files on them).
    if config.wear_policy != "none":
        parts.append(f"wl-{config.wear_policy}")
    if config.pool_policy != "paper":
        parts.append(f"pp-{config.pool_policy}")
    if config.placement_policy != "paper":
        parts.append(f"pl-{config.placement_policy}")
    return "_".join(parts)


# ----------------------------------------------------------------------
# Problems and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanProblem:
    """One precheck finding, located within the document."""

    where: str  #: dotted location, e.g. ``axes.rate[2]`` or ``defaults.heap``
    message: str

    def __str__(self) -> str:
        return f"{self.where}: {self.message}"


@dataclass
class ExpandedPlan:
    """A compiled plan: the grid plus everything the CLI renders."""

    name: str
    description: str
    source: str
    cells: List[RunConfig]
    #: Axis name -> value count, in declaration order (for rendering).
    axes: Dict[str, int] = field(default_factory=dict)
    figures: List[str] = field(default_factory=list)
    #: Convenience knobs for `figures --plan`.
    scale: float = 0.35
    seeds: Tuple[int, ...] = (0,)

    def slugs(self) -> List[str]:
        return [cell_slug(config) for config in self.cells]

    def cached_flags(self, cache: Optional[ResultCache]) -> List[bool]:
        """Which cells a dry run estimates as cache hits (all False
        without a cache)."""
        if cache is None:
            return [False] * len(self.cells)
        return [cache.contains(config) for config in self.cells]


# ----------------------------------------------------------------------
# Loading (JSON / YAML, includes)
# ----------------------------------------------------------------------
def _parse_file(path: Path) -> Any:
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() == ".json":
        return json.loads(text)
    try:
        import yaml
    except ImportError as exc:  # pragma: no cover - PyYAML ships in CI
        raise PlanError(
            [PlanProblem(str(path), "PyYAML is unavailable; use a .json plan")]
        ) from exc
    return yaml.safe_load(text)


def load_plan(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a plan file and resolve its ``include`` chain.

    Returns the merged raw document (a plain dict); includes merge
    first so the including document wins. Raises :class:`PlanError`
    for unreadable/unparsable files, include cycles, or documents that
    are not mappings — everything else is left to :func:`precheck`.
    """
    return _load_merged(Path(path), stack=())


def _load_merged(path: Path, stack: Tuple[Path, ...]) -> Dict[str, Any]:
    resolved = path.resolve()
    if resolved in stack:
        chain = " -> ".join(p.name for p in stack + (resolved,))
        raise PlanError([PlanProblem(str(path), f"include cycle: {chain}")])
    if len(stack) >= MAX_INCLUDE_DEPTH:
        raise PlanError(
            [PlanProblem(str(path), f"includes nested deeper than {MAX_INCLUDE_DEPTH}")]
        )
    try:
        doc = _parse_file(resolved)
    except OSError as exc:
        raise PlanError([PlanProblem(str(path), f"cannot read plan: {exc}")]) from exc
    except ValueError as exc:
        raise PlanError([PlanProblem(str(path), f"cannot parse plan: {exc}")]) from exc
    if not isinstance(doc, dict):
        raise PlanError(
            [PlanProblem(str(path), f"plan must be a mapping, got {type(doc).__name__}")]
        )
    includes = doc.get("include", [])
    if isinstance(includes, str):
        includes = [includes]
    if not isinstance(includes, list) or not all(isinstance(i, str) for i in includes):
        raise PlanError(
            [PlanProblem(f"{path}:include", "expected a path or list of paths")]
        )
    merged: Dict[str, Any] = {}
    for item in includes:
        fragment = _load_merged(resolved.parent / item, stack + (resolved,))
        merged = _merge_documents(merged, fragment)
    doc = {key: value for key, value in doc.items() if key != "include"}
    return _merge_documents(merged, doc)


def _merge_documents(base: Dict[str, Any], overlay: Dict[str, Any]) -> Dict[str, Any]:
    """Overlay wins; ``defaults``/``axes`` merge key-wise."""
    merged = dict(base)
    for key, value in overlay.items():
        if key in ("defaults", "axes") and isinstance(value, dict) and isinstance(
            merged.get(key), dict
        ):
            inner = dict(merged[key])
            inner.update(value)
            merged[key] = inner
        else:
            merged[key] = value
    return merged


# ----------------------------------------------------------------------
# Precheck + expansion
# ----------------------------------------------------------------------
def _looks_like_unquoted_placeholder(value: Any) -> Optional[str]:
    """YAML parses an unquoted ``{rate}`` as ``{"rate": None}``."""
    if isinstance(value, dict) and len(value) == 1:
        key, inner = next(iter(value.items()))
        if inner is None and isinstance(key, str):
            return key
    return None


def _placeholders_in(value: Any) -> List[str]:
    if isinstance(value, str):
        return _PLACEHOLDER.findall(value)
    return []


def _substitute(value: Any, bindings: Dict[str, Any]) -> Any:
    """Replace ``{axis}`` placeholders; an exact match keeps the type."""
    if not isinstance(value, str):
        return value
    exact = _PLACEHOLDER.fullmatch(value)
    if exact and exact.group(1) in bindings:
        return bindings[exact.group(1)]
    return _PLACEHOLDER.sub(
        lambda m: str(bindings.get(m.group(1), m.group(0))), value
    )


def _validate_field(name: str, value: Any, where: str, problems: List[PlanProblem]) -> None:
    unquoted = _looks_like_unquoted_placeholder(value)
    if unquoted is not None:
        problems.append(
            PlanProblem(
                where,
                f"{{{unquoted}}} parsed as a mapping — quote placeholders "
                f'in YAML: {name}: "{{{unquoted}}}"',
            )
        )
        return
    error = CELL_FIELDS[name][0](value)
    if error:
        problems.append(PlanProblem(where, error))


def precheck(
    doc: Dict[str, Any], source: str = "<plan>"
) -> Tuple[List[PlanProblem], Optional[ExpandedPlan]]:
    """Validate a raw plan document and, if clean, expand it.

    Returns ``(problems, expanded)``: every problem found (never just
    the first), and the expanded plan when there are none. Nothing is
    executed — this is the gate that runs before any cell does.
    """
    problems: List[PlanProblem] = []

    for key in doc:
        if key not in TOP_LEVEL_KEYS:
            problems.append(
                PlanProblem(
                    str(key),
                    f"unknown key; expected one of: {', '.join(TOP_LEVEL_KEYS)}",
                )
            )
    schema = doc.get("plan")
    if schema != PLAN_SCHEMA:
        problems.append(
            PlanProblem(
                "plan",
                f"missing or unsupported schema {schema!r}; "
                f"expected {PLAN_SCHEMA!r}",
            )
        )
    name = doc.get("name")
    if not isinstance(name, str) or not name:
        problems.append(PlanProblem("name", "plans need a non-empty string name"))
        name = "<unnamed>"
    description = doc.get("description", "")
    if not isinstance(description, str):
        problems.append(PlanProblem("description", "expected a string"))
        description = ""

    defaults = doc.get("defaults", {})
    if not isinstance(defaults, dict):
        problems.append(PlanProblem("defaults", "expected a mapping"))
        defaults = {}
    axes = doc.get("axes", {})
    if not isinstance(axes, dict):
        problems.append(PlanProblem("axes", "expected a mapping of axis -> values"))
        axes = {}

    figures = doc.get("figures", [])
    if not isinstance(figures, list) or not all(isinstance(f, str) for f in figures):
        problems.append(PlanProblem("figures", "expected a list of figure names"))
        figures = []
    for fig in figures:
        if fig not in KNOWN_FIGURES:
            problems.append(
                PlanProblem(
                    f"figures.{fig}",
                    f"unknown figure; available: {', '.join(KNOWN_FIGURES)}",
                )
            )

    # --- axes: shape, emptiness, per-value validation -----------------
    axis_names: List[str] = []
    field_axes: List[str] = []
    free_axes: List[str] = []
    for axis, values in axes.items():
        where = f"axes.{axis}"
        if not isinstance(axis, str) or not axis:
            problems.append(PlanProblem("axes", f"axis name {axis!r} must be a string"))
            continue
        if not isinstance(values, list):
            problems.append(PlanProblem(where, "expected a list of values"))
            continue
        if not values:
            problems.append(
                PlanProblem(where, "empty axis: the Cartesian product has zero cells")
            )
            continue
        axis_names.append(axis)
        if axis in CELL_FIELDS:
            field_axes.append(axis)
            for index, value in enumerate(values):
                if isinstance(value, dict) and _looks_like_unquoted_placeholder(value) is None:
                    problems.append(
                        PlanProblem(
                            f"{where}[{index}]",
                            "a field-named axis takes scalar values; use a "
                            "free axis for mapping-valued variants",
                        )
                    )
                else:
                    _validate_field(axis, value, f"{where}[{index}]", problems)
        else:
            free_axes.append(axis)
            for index, value in enumerate(values):
                if isinstance(value, dict):
                    for fname, fvalue in value.items():
                        if fname not in CELL_FIELDS:
                            problems.append(
                                PlanProblem(
                                    f"{where}[{index}].{fname}",
                                    f"unknown cell field; expected one of: "
                                    f"{', '.join(CELL_FIELDS)}",
                                )
                            )
                        else:
                            _validate_field(
                                fname, fvalue, f"{where}[{index}].{fname}", problems
                            )

    # --- defaults: keys, placeholder references -----------------------
    referenced: set = set()
    for fname, fvalue in defaults.items():
        where = f"defaults.{fname}"
        if fname not in CELL_FIELDS:
            problems.append(
                PlanProblem(
                    where,
                    f"unknown cell field; expected one of: {', '.join(CELL_FIELDS)}",
                )
            )
            continue
        unquoted = _looks_like_unquoted_placeholder(fvalue)
        if unquoted is not None:
            # Report as a placeholder-quoting problem (YAML artifact),
            # but still track the reference for unused-axis analysis.
            referenced.add(unquoted)
            _validate_field(fname, fvalue, where, problems)
            continue
        names = _placeholders_in(fvalue)
        referenced.update(names)
        for ref in names:
            if ref not in axes:
                problems.append(
                    PlanProblem(
                        where,
                        f"placeholder {{{ref}}} names no axis "
                        f"(axes: {', '.join(axis_names) or 'none'})",
                    )
                )
        if not names:
            _validate_field(fname, fvalue, where, problems)
        if fname in axes:
            problems.append(
                PlanProblem(
                    where,
                    f"'{fname}' is both a default and an axis; the axis "
                    "always wins — drop one",
                )
            )

    for axis in free_axes:
        values = axes[axis]
        if axis not in referenced and not any(isinstance(v, dict) for v in values):
            problems.append(
                PlanProblem(
                    f"axes.{axis}",
                    f"unused axis: not a cell field, never referenced as "
                    f"{{{axis}}}, and no mapping values",
                )
            )

    missing_workload = (
        "workload" not in axes
        and "workload" not in defaults
        and not any(
            isinstance(v, dict) and "workload" in v
            for axis in free_axes
            for v in axes.get(axis, [])
        )
    )
    if missing_workload and not figures:
        problems.append(
            PlanProblem(
                "defaults.workload",
                "no workload anywhere: add a workload axis or default",
            )
        )

    if problems:
        return problems, None

    if missing_workload:
        # A figures-only plan: no grid of its own, just the figure
        # list plus scale/seeds knobs for `figures --plan`.
        seed_values = axes.get("seed") or [defaults.get("seed", 0)]
        expanded = ExpandedPlan(
            name=name,
            description=description,
            source=source,
            cells=[],
            axes={axis: len(axes[axis]) for axis in axis_names},
            figures=list(figures),
            scale=float(defaults.get("scale", 0.35)),
            seeds=tuple(seed_values),
        )
        return [], expanded

    # --- expansion (document is structurally clean) -------------------
    cells: List[RunConfig] = []
    seen: Dict[RunConfig, int] = {}
    base = {fname: default for fname, (_, default) in CELL_FIELDS.items()}
    base.update({k: v for k, v in defaults.items() if not _placeholders_in(v)})
    combos = itertools.product(*(axes[axis] for axis in axis_names)) if axis_names else [()]
    for index, combo in enumerate(combos):
        bindings = dict(zip(axis_names, combo))
        cell = dict(base)
        for fname, fvalue in defaults.items():
            if _placeholders_in(fvalue):
                cell[fname] = _substitute(fvalue, bindings)
        for axis, value in bindings.items():
            if axis in CELL_FIELDS:
                cell[axis] = value
            elif isinstance(value, dict):
                cell.update(value)
        # Substituted placeholder values re-validate here: an axis
        # feeding {rate} may hold values that are fine as, say, seeds
        # but out of range as rates.
        cell_problems: List[PlanProblem] = []
        for fname, fvalue in cell.items():
            _validate_field(fname, fvalue, f"cells[{index}].{fname}", cell_problems)
        if not cell_problems:
            placement_cls = PLACEMENT_POLICIES.get(cell["placement_policy"])
            if (
                placement_cls is not None
                and placement_cls.needs_arraylets
                and cell["collector"] in ("marksweep", "sticky-marksweep")
            ):
                cell_problems.append(
                    PlanProblem(
                        f"cells[{index}].placement_policy",
                        f"placement_policy {cell['placement_policy']!r} needs "
                        f"the collector's arraylet path; collector "
                        f"{cell['collector']!r} has none (choose an immix "
                        f"collector)",
                    )
                )
        if cell_problems:
            problems.extend(cell_problems)
            continue
        config = cell_to_config(cell)
        if config in seen:
            problems.append(
                PlanProblem(
                    f"cells[{index}]",
                    f"duplicate of cells[{seen[config]}]: {cell_slug(config)}",
                )
            )
            continue
        seen[config] = index
        cells.append(config)

    if problems:
        return problems, None
    if not cells and not figures:
        return [PlanProblem("axes", "plan expands to zero cells")], None

    seeds = tuple(dict.fromkeys(config.seed for config in cells))
    expanded = ExpandedPlan(
        name=name,
        description=description,
        source=source,
        cells=cells,
        axes={axis: len(axes[axis]) for axis in axis_names},
        figures=list(figures),
        scale=float(cells[0].scale),
        seeds=seeds,
    )
    return [], expanded


def expand(doc: Dict[str, Any], source: str = "<plan>") -> ExpandedPlan:
    """Compile a raw document, raising :class:`PlanError` on problems."""
    problems, expanded = precheck(doc, source)
    if problems:
        raise PlanError(problems)
    assert expanded is not None
    return expanded


def load_and_expand(path: Union[str, Path]) -> ExpandedPlan:
    """Load a plan file, resolve includes, precheck, and expand."""
    return expand(load_plan(path), source=str(path))


# ----------------------------------------------------------------------
# Dry-run rendering
# ----------------------------------------------------------------------
def dry_run_payload(
    plan: ExpandedPlan, cache: Optional[ResultCache] = None
) -> Dict[str, Any]:
    """Machine-readable dry-run: the fully expanded cell list.

    Mirrors exactly what execution would run — same cells, same order —
    plus a per-cell cache estimate when a cache directory is supplied.
    """
    cached = plan.cached_flags(cache)
    return {
        "schema": "repro.plan-dry-run/1",
        "plan": plan.name,
        "source": plan.source,
        "cells": len(plan.cells),
        "axes": plan.axes,
        "figures": plan.figures,
        "cache": {
            "estimated_hits": sum(cached),
            "estimated_misses": len(cached) - sum(cached),
            "dir": str(cache.root) if cache is not None else None,
        },
        "cell_list": [
            {
                "index": index,
                "slug": cell_slug(config),
                "workload": config.workload,
                "rate": config.failure_model.rate,
                "heap": config.heap_multiplier,
                "line": config.immix_line,
                "clustering": config.failure_model.hw_region_pages,
                "cluster_bytes": config.failure_model.cluster_bytes,
                "collector": config.collector,
                "compensate": config.compensate,
                "arraylets": config.arraylets,
                "seed": config.seed,
                "scale": config.scale,
                "wear_policy": config.wear_policy,
                "pool_policy": config.pool_policy,
                "placement_policy": config.placement_policy,
                "cached": hit,
            }
            for index, (config, hit) in enumerate(zip(plan.cells, cached))
        ],
    }


def render_dry_run(plan: ExpandedPlan, cache: Optional[ResultCache] = None) -> str:
    """Human-readable dry-run table (the ``repro plan --dry-run`` body)."""
    payload = dry_run_payload(plan, cache)
    lines = [
        f"plan          {plan.name} ({plan.source})",
    ]
    if plan.description:
        lines.append(f"description   {plan.description}")
    axes = ", ".join(f"{axis}[{count}]" for axis, count in plan.axes.items())
    lines.append(f"axes          {axes or '(single cell)'}")
    if plan.figures:
        lines.append(f"figures       {', '.join(plan.figures)}")
    estimate = payload["cache"]
    if cache is not None:
        lines.append(
            f"cells         {payload['cells']} "
            f"({estimate['estimated_hits']} estimated cache hits, "
            f"{estimate['estimated_misses']} misses against {estimate['dir']})"
        )
    else:
        lines.append(f"cells         {payload['cells']}")
    lines.append("")
    lines.append(f"{'#':>4s}  {'cached':>6s}  slug")
    for entry in payload["cell_list"]:
        mark = "hit" if entry["cached"] else "-"
        lines.append(f"{entry['index']:>4d}  {mark:>6s}  {entry['slug']}")
    return "\n".join(lines)
