"""Plain-text rendering of experiment results (tables and series).

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent and diffable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

Series = List[Tuple[float, Optional[float]]]


def format_value(value: Optional[float], precision: int = 3) -> str:
    if value is None:
        return "DNF"
    if value != value:  # NaN
        return "-"
    return f"{value:.{precision}f}"


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Tuple[str, Sequence[Optional[float]]]],
    precision: int = 3,
) -> str:
    """A fixed-width table: one label column plus value columns."""
    label_width = max([len("benchmark")] + [len(label) for label, _ in rows])
    col_width = max([10] + [len(c) for c in columns]) + 2
    lines = [title, "=" * len(title)]
    header = "benchmark".ljust(label_width) + "".join(
        c.rjust(col_width) for c in columns
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, values in rows:
        cells = "".join(
            format_value(v, precision).rjust(col_width) for v in values
        )
        lines.append(label.ljust(label_width) + cells)
    return "\n".join(lines)


def render_series(
    title: str,
    series_by_name: Dict[str, Series],
    x_label: str,
    y_label: str,
    precision: int = 3,
) -> str:
    """Aligned multi-series listing: one row per x value."""
    xs: List[float] = sorted(
        {x for series in series_by_name.values() for x, _ in series}
    )
    names = list(series_by_name)
    lookup = {
        name: {x: y for x, y in series} for name, series in series_by_name.items()
    }
    label_width = max(len(x_label), 10)
    col_width = max([12] + [len(n) for n in names]) + 2
    lines = [title, "=" * len(title), f"y = {y_label}"]
    header = x_label.ljust(label_width) + "".join(n.rjust(col_width) for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        row = _format_x(x).ljust(label_width)
        for name in names:
            row += format_value(lookup[name].get(x), precision).rjust(col_width)
        lines.append(row)
    return "\n".join(lines)


def _format_x(x: float) -> str:
    if float(x).is_integer():
        return str(int(x))
    return f"{x:g}"


def render_bars(
    title: str, values: Dict[str, Optional[float]], unit: str = "x", width: int = 40
) -> str:
    """Horizontal ASCII bars, e.g. per-benchmark overheads."""
    finite = [v for v in values.values() if v is not None and v == v]
    top = max(finite) if finite else 1.0
    label_width = max(len(k) for k in values) if values else 8
    lines = [title, "=" * len(title)]
    for name, value in values.items():
        if value is None or value != value:
            lines.append(f"{name.ljust(label_width)}  DNF")
            continue
        bar = "#" * max(1, int(width * value / top))
        lines.append(f"{name.ljust(label_width)}  {value:7.3f}{unit} {bar}")
    return "\n".join(lines)
