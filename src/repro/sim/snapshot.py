"""Versioned machine snapshots: suspend and resume the whole stack.

The lifetime argument of the paper rests on very long simulated
horizons; a run that cannot survive a crash — or be suspended — caps
how far those horizons can stretch. A :class:`MachineSnapshot`
serializes the full cooperative stack at a step boundary of the trace
driver: PCM cell wear and the failure buffer, the OS failure tables,
page pools and ownership, and the collector's heap including line
states and object extents. Restoring yields a machine whose continued
run is bit-identical to one that was never interrupted (the
round-trip property tests in ``tests/sim/test_snapshot.py`` and the
``snapshot-coherence`` checker in :mod:`repro.check.invariants` both
enforce this).

Serialization piggybacks on pickle because the heap is an object
*graph*, not a tree: a single :class:`~repro.heap.page_supply.HeapPage`
is shared between a span, a block, the OS page directory and the LOS,
and the pending-death heap of the driver references live head objects
by identity. Pickle preserves that sharing natively; every layer
defines ``__getstate__`` hooks that strip process wiring (tracers,
interrupt callbacks, upcall handlers) and re-solder it on restore.

On disk a snapshot is a small versioned envelope::

    magic · header-length · JSON header · zlib-compressed pickle

The header carries the schema version, the snapshot kind, caller
metadata, a SHA-256 of the payload, and the :func:`code fingerprint
<repro.sim.cache.code_fingerprint>` of the sources that produced it.
Restores check all four: resuming across code changes would silently
void the bit-identity guarantee, so a fingerprint mismatch raises
:class:`~repro.errors.SnapshotError` unless explicitly overridden.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import tempfile
import zlib
from typing import Any, Optional

from ..errors import SnapshotError

#: First bytes of every snapshot file.
SNAPSHOT_MAGIC = b"REPROSNAP\n"
#: Envelope schema version; bump on any incompatible layout change.
SNAPSHOT_VERSION = 1

_HEADER_LEN = struct.Struct(">I")


def _code_fingerprint() -> str:
    # Imported lazily: repro.sim.cache imports repro.sim.machine, which
    # imports this module — a top-level import here would cycle.
    from .cache import code_fingerprint

    return code_fingerprint()


class MachineSnapshot:
    """An immutable, restorable image of simulator state.

    ``capture`` serializes immediately — a snapshot holds bytes, not
    live references, so the captured machine can keep running without
    perturbing the image. ``state`` is whatever object graph the caller
    wants back (the bench path uses ``(vm, driver)``; the lifetime path
    uses the aging PCM module plus its records).
    """

    __slots__ = ("kind", "meta", "fingerprint", "_blob")

    def __init__(
        self, kind: str, meta: dict, blob: bytes, fingerprint: Optional[str] = None
    ) -> None:
        self.kind = kind
        self.meta = meta
        self.fingerprint = fingerprint or _code_fingerprint()
        self._blob = blob

    # ------------------------------------------------------------------
    # Capture / restore
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls, state: Any, kind: str = "bench", meta: Optional[dict] = None
    ) -> "MachineSnapshot":
        """Serialize ``state`` now; the live objects are not retained."""
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return cls(kind=kind, meta=dict(meta or {}), blob=blob)

    def restore(self, check_fingerprint: bool = True) -> Any:
        """Materialize the captured state graph.

        Every restored object passes through its layer's
        ``__setstate__`` hook, so the cooperation wiring (interrupt
        line, failure-upcall handler) comes back soldered and in the
        paper's protocol order.
        """
        if check_fingerprint:
            current = _code_fingerprint()
            if self.fingerprint != current:
                raise SnapshotError(
                    f"snapshot was taken by different simulator sources "
                    f"(fingerprint {self.fingerprint[:12]}… vs running "
                    f"{current[:12]}…); resuming across code changes would "
                    f"break bit-identity. Pass check_fingerprint=False to "
                    f"override."
                )
        return pickle.loads(self._blob)

    # ------------------------------------------------------------------
    # Envelope
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        payload = zlib.compress(self._blob, 6)
        header = json.dumps(
            {
                "version": SNAPSHOT_VERSION,
                "kind": self.kind,
                "meta": self.meta,
                "fingerprint": self.fingerprint,
                "sha256": hashlib.sha256(payload).hexdigest(),
                "raw_bytes": len(self._blob),
            },
            sort_keys=True,
        ).encode("utf-8")
        return SNAPSHOT_MAGIC + _HEADER_LEN.pack(len(header)) + header + payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "MachineSnapshot":
        if not data.startswith(SNAPSHOT_MAGIC):
            raise SnapshotError("not a snapshot file (bad magic)")
        offset = len(SNAPSHOT_MAGIC)
        if len(data) < offset + _HEADER_LEN.size:
            raise SnapshotError("truncated snapshot (no header length)")
        (header_len,) = _HEADER_LEN.unpack_from(data, offset)
        offset += _HEADER_LEN.size
        if len(data) < offset + header_len:
            raise SnapshotError("truncated snapshot (incomplete header)")
        try:
            header = json.loads(data[offset : offset + header_len].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"corrupt snapshot header: {exc}") from exc
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unknown snapshot version {header.get('version')!r} "
                f"(this build reads version {SNAPSHOT_VERSION})"
            )
        payload = data[offset + header_len :]
        digest = hashlib.sha256(payload).hexdigest()
        if digest != header.get("sha256"):
            raise SnapshotError(
                "snapshot payload integrity check failed "
                f"(expected {header.get('sha256')}, got {digest})"
            )
        try:
            blob = zlib.decompress(payload)
        except zlib.error as exc:
            raise SnapshotError(f"corrupt snapshot payload: {exc}") from exc
        if len(blob) != header.get("raw_bytes"):
            raise SnapshotError("snapshot payload length mismatch")
        return cls(
            kind=header.get("kind", "bench"),
            meta=header.get("meta", {}),
            blob=blob,
            fingerprint=header.get("fingerprint", ""),
        )

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write atomically: a reader (or a crash) never sees a torn file."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=".snapshot-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(self.to_bytes())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str) -> "MachineSnapshot":
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
        return cls.from_bytes(data)


class CheckpointPolicy:
    """Emit a snapshot every N driver steps (0 disables).

    One driver step is one cohort, so checkpoints land only at the
    step boundaries where a restored run replays bit-for-bit.
    """

    def __init__(self, path: str, every_steps: int = 0) -> None:
        if every_steps < 0:
            raise ValueError("every_steps must be >= 0")
        self.path = path
        self.every_steps = every_steps
        self.emitted = 0

    def due(self, steps: int) -> bool:
        return self.every_steps > 0 and steps > 0 and steps % self.every_steps == 0

    def checkpoint(
        self, state: Any, kind: str = "bench", meta: Optional[dict] = None
    ) -> MachineSnapshot:
        snapshot = MachineSnapshot.capture(state, kind=kind, meta=meta)
        snapshot.save(self.path)
        self.emitted += 1
        return snapshot


# ----------------------------------------------------------------------
# State digest (snapshot-coherence checker support)
# ----------------------------------------------------------------------
def machine_digest(vm) -> str:
    """A stable digest of everything observable about a machine.

    Built from canonically ordered observables rather than the pickle
    bytes: the collector's remembered set is a genuine ``set`` whose
    iteration order varies between otherwise identical machines, so
    byte-level comparison of pickles would flag healthy round-trips.
    Two machines with equal digests produce the same continued run.
    """
    pcm = vm.injector.pcm
    supply = vm.supply
    table = getattr(vm.collector, "table", None)
    heap_table = None
    if table is not None:
        # The structure-of-arrays heap state, digested wholesale: the
        # flat line/failure arrays are the ground truth every kernel
        # reads, so a restore that perturbed a single byte (or the slot
        # bookkeeping around them) flips this digest.
        heap_table = {
            "lines": hashlib.sha256(bytes(table.lines)).hexdigest(),
            "fail_marks": hashlib.sha256(bytes(table.fail_marks)).hexdigest(),
            "active_slots": table.active_slots(),
            "free_slots": list(table._free_slots),
            "free_lines": table.free_line_count(),
            "failed_lines": table.failed_line_count(),
        }
    state = {
        "stats": vm.stats.snapshot(),
        "roots": sorted(vm._roots.keys()),
        "pending_failure_gc": vm._pending_failure_gc,
        "pcm": {
            "writes": pcm.total_writes,
            "reads": pcm.total_reads,
            "failed_logical": sorted(pcm._failed_logical),
            "failed_physical": sorted(pcm._failed_physical),
            "write_counts": sorted(pcm._write_counts.items()),
            "pending": list(pcm._pending_failures),
            "fbuf": [
                (entry.address, entry.synthetic)
                for entry in pcm.failure_buffer.pending()
            ],
        },
        "os": {
            "upcalls": vm.os.upcalls,
            "relocated_pages": vm.os.relocated_pages,
            "owners": sorted(vm.os._owners.items()),
            "perfect_free": sorted(vm.os.pools._perfect),
            "imperfect_free": sorted(vm.os.pools._imperfect),
            "dram_free": sorted(vm.os.pools._dram),
            "allocated": sorted(vm.os.pools._allocated),
        },
        "supply": {
            "free_perfect": supply.free_perfect,
            "relaxed_taken": supply.relaxed_pages_taken,
            "fussy_taken": supply.fussy_pages_taken,
            "los_claims": supply.los_span_claims,
            "borrowed": supply.accountant.borrowed,
            "demand": supply.accountant.total_perfect_demand,
        },
        "heap_table": heap_table,
        "census": vm.heap_census(),
    }
    rendering = json.dumps(state, sort_keys=True, default=repr)
    return hashlib.sha256(rendering.encode("utf-8")).hexdigest()
