"""Swap-destination compatibility as memory ages (paper section 3.2.3).

When the OS swaps an imperfect page back in, the cheap options are an
imperfect page whose holes are a *subset* of the source's (rarely found
— Ipek et al. observed such matching has limited efficacy) or, under
failure clustering, any page with the same number or fewer failures
(holes sit at a known end, so counting suffices). Failing both, a
scarce perfect page must be spent.

:func:`run_swap_study` ages a set of pages to a target failure level,
runs randomized swap traffic through :class:`repro.osim.swap.Swapper`,
and reports how often each destination strategy succeeded — the
quantitative form of the paper's "failure clustering helps solve this
problem".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..hardware.geometry import Geometry
from ..osim.pools import PagePools
from ..osim.swap import Swapper
from ..errors import OutOfMemoryError


@dataclass
class SwapStudyResult:
    """Outcome of one aging level x clustering configuration."""

    failure_rate: float
    clustered: bool
    swaps: int
    perfect_spent: int
    subset_hits: int
    clustered_hits: int
    failed_swap_ins: int

    @property
    def cheap_hit_rate(self) -> float:
        """Fraction of swap-ins served without spending a perfect page."""
        if self.swaps == 0:
            return 0.0
        return (self.subset_hits + self.clustered_hits) / self.swaps

    @property
    def stall_rate(self) -> float:
        """Fraction of swap-in attempts that found no destination at all
        and had to wait (the cost of incompatibility)."""
        attempts = self.swaps + self.failed_swap_ins
        if attempts == 0:
            return 0.0
        return self.failed_swap_ins / attempts


def _age_pools(
    n_pages: int,
    failure_rate: float,
    clustered: bool,
    geometry: Geometry,
    rng: random.Random,
) -> PagePools:
    """Pools whose pages carry the target per-line failure level."""
    pools = PagePools(n_pages)
    per_page = geometry.lines_per_page
    for index in range(n_pages):
        failed = [o for o in range(per_page) if rng.random() < failure_rate]
        if clustered and failed:
            # Clustering hardware packs a page's failures at one end.
            failed = list(range(len(failed)))
        for offset in failed:
            pools.page(index).record_failure(offset)
        if failed:
            pools.note_page_degraded(index)
    return pools


def run_swap_study(
    failure_rate: float,
    clustered: bool,
    n_pages: int = 256,
    swaps: int = 400,
    resident_fraction: float = 0.5,
    geometry: Optional[Geometry] = None,
    seed: int = 0,
) -> SwapStudyResult:
    """Randomized swap traffic over an aged page pool."""
    geometry = geometry or Geometry()
    rng = random.Random(seed)
    pools = _age_pools(n_pages, failure_rate, clustered, geometry, rng)
    swapper = Swapper(pools, clustering_enabled=clustered)
    # Residency: some pages are in use (candidates for swap-out).
    resident = []
    for _ in range(int(n_pages * resident_fraction)):
        page = pools.take_any_pcm()
        resident.append(page)
    slots = []
    others = []  # frames grabbed by other processes after an eviction
    failed_swap_ins = 0
    for _ in range(swaps):
        if slots and (not resident or rng.random() < 0.5):
            if others and rng.random() < 0.7:
                # Another process releases a frame eventually.
                pools.release(others.pop(rng.randrange(len(others))).index)
            slot = slots.pop(rng.randrange(len(slots)))
            try:
                resident.append(swapper.swap_in(slot))
            except OutOfMemoryError:
                failed_swap_ins += 1
                slots.append(slot)
        elif resident:
            page = resident.pop(rng.randrange(len(resident)))
            slots.append(swapper.swap_out(page, payload=None))
            # A page is evicted because memory is tight: its own frame
            # is snapped up immediately by whoever caused the pressure,
            # so a later swap-in cannot simply land back on the
            # identical hole pattern.
            taken = pools.take_page(page.index)
            if taken is not None:
                others.append(taken)
    return SwapStudyResult(
        failure_rate=failure_rate,
        clustered=clustered,
        swaps=swapper.stats.swapped_in,
        perfect_spent=swapper.stats.perfect_destinations,
        subset_hits=swapper.stats.subset_destinations,
        clustered_hits=swapper.stats.clustered_destinations,
        failed_swap_ins=failed_swap_ins,
    )


def render_swap_study(results: Dict[str, SwapStudyResult]) -> str:
    lines = [
        "Swap-in destination strategies as memory ages (section 3.2.3)",
        "=" * 62,
        f"{'configuration':26s} {'swap-ins':>9s} {'subset':>7s} "
        f"{'clustered':>10s} {'perfect':>8s} {'stalled':>8s}",
        "-" * 74,
    ]
    for label, r in results.items():
        lines.append(
            f"{label:26s} {r.swaps:>9d} {r.subset_hits:>7d} "
            f"{r.clustered_hits:>10d} {r.perfect_spent:>8d} "
            f"{r.stall_rate:>7.1%}"
        )
    return "\n".join(lines)
