"""Zero-pickle result transport between sweep workers and the parent.

``multiprocessing.Pool.imap_unordered`` pickles every return value
through a pipe. A :class:`~repro.sim.machine.RunResult` pickles to a
deep object graph — config dataclass, failure model, stats dict, phase
breakdown — and at sweep scale that serialization tax is pure harness
overhead. This module replaces it with a **spool-file transport**:

* each worker appends compact, fixed-schema frames to its own
  append-only spool file (``spool-<pid>.bin``; no locks, no renames —
  one writer per file);
* the pool then carries only ``(index, handle, wall)`` tuples, where a
  handle is three integers naming the frame (pid, offset, length);
* the parent reads frames back by ``seek``/``read`` and decodes.

The frame codec is deliberately not pickle: a magic tag, a version
byte, the fixed numeric fields packed with :mod:`struct`, then three
length-prefixed JSON sections (config, stats, extras). Decoding a
frame yields a RunResult **bit-identical** to what the pickle path
would have delivered — the regression suite and the microbench
``result_codec`` entry both enforce that, the same contract
``REPRO_KERNELS`` holds for the heap kernels.

``REPRO_RESULT_TRANSPORT`` selects the mode: ``spool`` (default) or
``pickle`` (the original pool behaviour, kept as the oracle). Like
``REPRO_KERNELS``, the value is validated lazily — the CLI turns a bad
value into exit 2 with usage instead of an import-time traceback.
"""

from __future__ import annotations

import dataclasses
import json
import os
import struct
from typing import Dict, Optional, Tuple

from .machine import RunConfig, RunResult

#: Frame tag: "Repro Result Transport", format 1.
MAGIC = b"RRT1"

#: Recognised ``REPRO_RESULT_TRANSPORT`` values.
TRANSPORT_MODES = ("spool", "pickle")

_transport_mode = os.environ.get("REPRO_RESULT_TRANSPORT", "spool")


def transport_mode() -> str:
    """The active transport mode string (unvalidated; see below)."""
    return _transport_mode


def set_transport_mode(mode: str) -> str:
    """Switch modes at runtime; returns the previous mode.

    For tests and the microbench, which compare both transports in one
    process.
    """
    global _transport_mode
    if mode not in TRANSPORT_MODES:
        raise ValueError(
            f"unknown transport mode {mode!r}; choose from {TRANSPORT_MODES}"
        )
    previous = _transport_mode
    _transport_mode = mode
    return previous


def use_spool_transport() -> bool:
    """True unless the pickle oracle was explicitly selected.

    An unrecognised environment value behaves like the default until
    :func:`validate_transport_mode` is consulted — entry points call
    that early and report usage instead of crashing mid-import.
    """
    return _transport_mode != "pickle"


def validate_transport_mode() -> str:
    """Return the active mode, or raise ``ValueError`` if unrecognised."""
    if _transport_mode not in TRANSPORT_MODES:
        raise ValueError(
            f"REPRO_RESULT_TRANSPORT={_transport_mode!r} is not one of "
            f"{TRANSPORT_MODES}"
        )
    return _transport_mode


# ----------------------------------------------------------------------
# Frame codec
# ----------------------------------------------------------------------
#: Fixed numeric fields, in schema order. ``<`` pins little-endian so a
#: spool written on one host decodes anywhere; doubles pass through
#: bit-exactly (no text round-trip).
_FIXED = struct.Struct("<BBdddqqqq")
_LEN = struct.Struct("<I")
_VERSION = 1


def _config_record(config: RunConfig) -> dict:
    data = dataclasses.asdict(config)
    return data


def encode_result(result: RunResult) -> bytes:
    """One RunResult as a self-delimiting binary frame."""
    config = json.dumps(
        _config_record(result.config), sort_keys=True, separators=(",", ":")
    ).encode()
    stats = json.dumps(
        result.stats, sort_keys=True, separators=(",", ":")
    ).encode()
    extras = json.dumps(
        {
            "failure_note": result.failure_note,
            "phase_breakdown": result.phase_breakdown,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode()
    head = _FIXED.pack(
        _VERSION,
        1 if result.completed else 0,
        result.time_units,
        result.time_ms,
        result.full_gc_pause_ms,
        result.heap_bytes,
        result.min_heap_bytes,
        result.perfect_page_demand,
        result.borrowed_pages,
    )
    return b"".join(
        (
            MAGIC,
            head,
            _LEN.pack(len(config)),
            config,
            _LEN.pack(len(stats)),
            stats,
            _LEN.pack(len(extras)),
            extras,
        )
    )


def decode_result(data: bytes) -> RunResult:
    """Inverse of :func:`encode_result`; validates magic and version."""
    if data[:4] != MAGIC:
        raise ValueError("not a result frame (bad magic)")
    (
        version,
        completed,
        time_units,
        time_ms,
        full_gc_pause_ms,
        heap_bytes,
        min_heap_bytes,
        perfect_page_demand,
        borrowed_pages,
    ) = _FIXED.unpack_from(data, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported result frame version {version}")
    cursor = 4 + _FIXED.size
    sections = []
    for _ in range(3):
        (length,) = _LEN.unpack_from(data, cursor)
        cursor += _LEN.size
        sections.append(data[cursor : cursor + length])
        if len(sections[-1]) != length:
            raise ValueError("truncated result frame")
        cursor += length
    config_data, stats_data, extras_data = sections
    from .cache import config_from_dict  # local: cache imports machine too

    config = config_from_dict(json.loads(config_data.decode()))
    extras = json.loads(extras_data.decode())
    return RunResult(
        config=config,
        completed=bool(completed),
        time_units=time_units,
        time_ms=time_ms,
        stats=json.loads(stats_data.decode()),
        heap_bytes=heap_bytes,
        min_heap_bytes=min_heap_bytes,
        perfect_page_demand=perfect_page_demand,
        borrowed_pages=borrowed_pages,
        full_gc_pause_ms=full_gc_pause_ms,
        failure_note=extras["failure_note"],
        phase_breakdown=extras["phase_breakdown"],
    )


_WALL = struct.Struct("<d")


def is_frame(data: bytes) -> bool:
    """Whether a spooled attempt payload is binary (vs legacy JSON)."""
    return data[:4] == MAGIC


def encode_attempt(result: RunResult, wall_s: float) -> bytes:
    """A fault-tolerant-executor attempt record: frame + wall clock."""
    return encode_result(result) + _WALL.pack(wall_s)


def decode_attempt(data: bytes) -> Tuple[RunResult, float]:
    """Inverse of :func:`encode_attempt`."""
    if len(data) <= _WALL.size:
        raise ValueError("attempt record too short")
    (wall_s,) = _WALL.unpack_from(data, len(data) - _WALL.size)
    return decode_result(data[: -_WALL.size]), wall_s


def pickled_size(result: RunResult) -> int:
    """Bytes the pickle transport would have moved for this result.

    The parent-side accounting hook behind the ledger's
    ``pickle_bytes`` field and ``repro report``'s transport line; the
    spool path never pickles results for *transport*, only (optionally)
    for this comparison.
    """
    import pickle

    return len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))


# ----------------------------------------------------------------------
# Spool files
# ----------------------------------------------------------------------
#: A frame's address within a spool directory: (pid, offset, length).
Handle = Tuple[int, int, int]


class SpoolWriter:
    """Append-only result spool for one worker process.

    One writer per file (the file is named for this process), so
    appends need no locking; each :meth:`append` flushes before
    returning its handle, making the frame durable-enough for the
    parent — which only ever reads a handle *after* receiving it
    through the pool, strictly ordered after the flush.
    """

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self.pid = os.getpid()
        self.path = os.path.join(directory, f"spool-{self.pid}.bin")
        self._file = None
        self.frames = 0
        self.bytes_written = 0

    def append(self, result: RunResult) -> Handle:
        if self._file is None:
            self._file = open(self.path, "ab")
        frame = encode_result(result)
        offset = self._file.tell()
        self._file.write(frame)
        self._file.flush()
        self.frames += 1
        self.bytes_written += len(frame)
        return (self.pid, offset, len(frame))

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class SpoolReader:
    """Parent-side frame reader over a spool directory."""

    def __init__(self, directory: str) -> None:
        self.directory = directory
        self._files: Dict[int, object] = {}
        self.frames = 0
        self.bytes_read = 0

    def read(self, handle: Handle) -> RunResult:
        pid, offset, length = handle
        handle_file = self._files.get(pid)
        if handle_file is None:
            handle_file = open(
                os.path.join(self.directory, f"spool-{pid}.bin"), "rb"
            )
            self._files[pid] = handle_file
        handle_file.seek(offset)
        frame = handle_file.read(length)
        if len(frame) != length:
            raise ValueError(
                f"spool frame truncated: wanted {length} bytes at "
                f"{offset} of spool-{pid}.bin, got {len(frame)}"
            )
        self.frames += 1
        self.bytes_read += length
        return decode_result(frame)

    def close(self) -> None:
        for handle_file in self._files.values():
            handle_file.close()
        self._files.clear()

    def __enter__(self) -> "SpoolReader":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
