"""Byte-size units and helpers used throughout the simulator.

All sizes in this code base are plain integers counting bytes. These
constants and helpers exist so that configuration code reads like the
paper ("4 KB pages, 64 B lines, 32 KB blocks") rather than like a wall
of zeros.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: PCM line size assumed by the paper (granularity of hardware writes
#: and of the failure map).
PCM_LINE_BYTES = 64

#: Page size assumed by the paper.
PAGE_BYTES = 4 * KiB

#: Default Immix block size (the paper uses 32 KB).
BLOCK_BYTES = 32 * KiB

#: Default Immix logical line size (the paper's best performer).
IMMIX_LINE_BYTES = 256


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment`` (a power of two)."""
    return value & ~(alignment - 1)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment`` (a power of two)."""
    return (value + alignment - 1) & ~(alignment - 1)


def format_size(num_bytes: int) -> str:
    """Render a byte count the way the paper writes sizes (``64 B``, ``4 KB``).

    >>> format_size(64)
    '64B'
    >>> format_size(4096)
    '4KB'
    >>> format_size(3 * 1024 * 1024)
    '3MB'
    """
    if num_bytes % MiB == 0 and num_bytes >= MiB:
        return f"{num_bytes // MiB}MB"
    if num_bytes % KiB == 0 and num_bytes >= KiB:
        return f"{num_bytes // KiB}KB"
    return f"{num_bytes}B"


def parse_size(text: str) -> int:
    """Parse sizes like ``"64B"``, ``"4KB"``, ``"32 KB"``, ``"2MB"``.

    Accepts an optional space between number and unit, and both ``KB``
    and ``KiB`` spellings (both mean 1024).
    """
    cleaned = text.strip().upper().replace(" ", "")
    for suffix, factor in (
        ("GIB", GiB),
        ("GB", GiB),
        ("MIB", MiB),
        ("MB", MiB),
        ("KIB", KiB),
        ("KB", KiB),
        ("B", 1),
    ):
        if cleaned.endswith(suffix):
            number = cleaned[: -len(suffix)]
            return int(number) * factor
    return int(cleaned)
