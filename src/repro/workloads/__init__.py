"""Synthetic DaCapo-style workloads and the trace driver."""

from .dacapo import ANALYSIS_EXCLUDED, BY_NAME, DACAPO, analysis_suite, full_suite, workload
from .driver import DriveResult, LivenessProbe, TraceDriver, estimate_min_heap
from .spec import LARGE, MEDIUM, SMALL, SizeBand, WorkloadSpec

__all__ = [
    "ANALYSIS_EXCLUDED",
    "BY_NAME",
    "DACAPO",
    "analysis_suite",
    "full_suite",
    "workload",
    "DriveResult",
    "LivenessProbe",
    "TraceDriver",
    "estimate_min_heap",
    "LARGE",
    "MEDIUM",
    "SMALL",
    "SizeBand",
    "WorkloadSpec",
]
