"""Synthetic stand-ins for the paper's DaCapo benchmarks (section 5).

The paper runs the superset of DaCapo 9.12-bach and DaCapo-2006-10 that
works on Jikes RVM. Each entry below is a :class:`WorkloadSpec` tuned to
that benchmark's role in the paper's narrative:

* **pmd, jython** — allocate many *medium* objects, which makes finding
  contiguous free memory hard under failures; the paper reports them as
  the workloads with the highest overheads (pmd peaks at 40 % at 50 %
  failures) and as very sensitive to the two-page clustering threshold.
* **xalan** — predominantly allocates very large objects, so it leans
  on the perfect pages two-page clustering manufactures and is "quite
  resilient to failures"; it makes very heavy use of perfect pages.
* **hsqldb** — the largest live set (the paper's worst full-heap pause,
  44 ms vs the 7 ms average); **fop** next (22 ms).
* **lusearch** — the buggy version allocates a large data structure in
  a hot loop, driving an allocation rate 3x any other benchmark; the
  patched **lusearch-fix** removes the pathology. The paper reports the
  buggy version only for completeness and excludes it from analysis.

Absolute volumes are scaled down ~50x from the real suite so that a
full experiment grid runs in minutes of simulation; the *ratios* that
drive the paper's effects (live/heap, medium fraction, large fraction,
relative allocation rates) are preserved.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..units import KiB, MiB
from .spec import LARGE, MEDIUM, SMALL, SizeBand, WorkloadSpec

DACAPO: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        name="antlr",
        description="parser generator: small-object heavy, modest live set",
        total_alloc_bytes=int(12 * MiB),
        immortal_bytes=280 * KiB,
        short_lifetime_bytes=130 * KiB,
        long_lifetime_bytes=int(1.2 * MiB),
        long_fraction=0.06,
        size_weights=(0.952, 0.044, 0.004),
    ),
    WorkloadSpec(
        name="avrora",
        description="AVR microcontroller simulator: tiny objects, low rate",
        total_alloc_bytes=int(7 * MiB),
        immortal_bytes=200 * KiB,
        short_lifetime_bytes=100 * KiB,
        long_lifetime_bytes=1 * MiB,
        long_fraction=0.05,
        size_weights=(0.96, 0.037, 0.003),
    ),
    WorkloadSpec(
        name="bloat",
        description="bytecode optimizer: high churn of small objects",
        total_alloc_bytes=int(15 * MiB),
        immortal_bytes=240 * KiB,
        short_lifetime_bytes=110 * KiB,
        long_lifetime_bytes=int(1.1 * MiB),
        long_fraction=0.05,
        size_weights=(0.955, 0.042, 0.003),
        cohort_size=32,
    ),
    WorkloadSpec(
        name="eclipse",
        description="IDE workload: large live set, mixed sizes",
        total_alloc_bytes=int(16 * MiB),
        immortal_bytes=850 * KiB,
        short_lifetime_bytes=180 * KiB,
        long_lifetime_bytes=int(2.2 * MiB),
        long_fraction=0.08,
        size_weights=(0.948, 0.048, 0.004),
    ),
    WorkloadSpec(
        name="fop",
        description="XSL-FO to PDF: big live document tree, wide medium "
        "objects",
        total_alloc_bytes=int(9 * MiB),
        immortal_bytes=780 * KiB,
        short_lifetime_bytes=220 * KiB,
        long_lifetime_bytes=int(1.9 * MiB),
        long_fraction=0.10,
        size_weights=(0.954, 0.0414, 0.0044),
        medium=SizeBand(400, 6 * KiB),
        cohort_size=16,
    ),
    WorkloadSpec(
        name="hsqldb",
        description="in-memory SQL database: the largest live set",
        total_alloc_bytes=int(10 * MiB),
        immortal_bytes=int(1.4 * MiB),
        short_lifetime_bytes=260 * KiB,
        long_lifetime_bytes=int(2.8 * MiB),
        long_fraction=0.12,
        size_weights=(0.94, 0.056, 0.004),
    ),
    WorkloadSpec(
        name="jython",
        description="Python on the JVM: many medium objects (frames, "
        "dicts, call structures) ranging up to the LOS threshold",
        total_alloc_bytes=int(14 * MiB),
        immortal_bytes=380 * KiB,
        short_lifetime_bytes=140 * KiB,
        long_lifetime_bytes=int(1.4 * MiB),
        long_fraction=0.06,
        size_weights=(0.960, 0.037, 0.0032),
        medium=SizeBand(400, 7 * KiB),
    ),
    WorkloadSpec(
        name="luindex",
        description="lucene indexing: small objects, low allocation",
        total_alloc_bytes=int(6 * MiB),
        immortal_bytes=230 * KiB,
        short_lifetime_bytes=110 * KiB,
        long_lifetime_bytes=1 * MiB,
        long_fraction=0.05,
        size_weights=(0.958, 0.039, 0.003),
    ),
    WorkloadSpec(
        name="lusearch",
        description="lucene search, BUGGY: large temporary arrays in a "
        "hot loop, ~3x the allocation rate of any other benchmark",
        total_alloc_bytes=int(27 * MiB),
        immortal_bytes=280 * KiB,
        short_lifetime_bytes=90 * KiB,
        long_lifetime_bytes=800 * KiB,
        long_fraction=0.03,
        size_weights=(0.94, 0.048, 0.012),
        cohort_size=16,
    ),
    WorkloadSpec(
        name="lusearch-fix",
        description="lucene search with the allocation bug patched",
        total_alloc_bytes=int(9 * MiB),
        immortal_bytes=280 * KiB,
        short_lifetime_bytes=90 * KiB,
        long_lifetime_bytes=800 * KiB,
        long_fraction=0.03,
        size_weights=(0.948, 0.047, 0.005),
        cohort_size=16,
    ),
    WorkloadSpec(
        name="pmd",
        description="source analyzer: medium-object heavy AST churn, "
        "with medium sizes ranging up to the LOS threshold",
        total_alloc_bytes=int(12 * MiB),
        immortal_bytes=680 * KiB,
        short_lifetime_bytes=190 * KiB,
        long_lifetime_bytes=int(1.9 * MiB),
        long_fraction=0.10,
        size_weights=(0.956, 0.039, 0.0044),
        medium=SizeBand(400, 7 * KiB),
    ),
    WorkloadSpec(
        name="sunflow",
        description="ray tracer: torrent of tiny short-lived objects",
        total_alloc_bytes=int(16 * MiB),
        immortal_bytes=240 * KiB,
        short_lifetime_bytes=70 * KiB,
        long_lifetime_bytes=700 * KiB,
        long_fraction=0.04,
        size_weights=(0.965, 0.032, 0.003),
        cohort_size=32,
    ),
    WorkloadSpec(
        name="xalan",
        description="XSLT processor: very large objects dominate bytes",
        total_alloc_bytes=int(14 * MiB),
        immortal_bytes=480 * KiB,
        short_lifetime_bytes=140 * KiB,
        long_lifetime_bytes=int(1.4 * MiB),
        long_fraction=0.06,
        size_weights=(0.938, 0.05, 0.012),
        cohort_size=12,
    ),
)

#: The paper grays out buggy lusearch and excludes it from analysis.
ANALYSIS_EXCLUDED = ("lusearch",)

BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in DACAPO}


def workload(name: str) -> WorkloadSpec:
    """Look up a benchmark by name."""
    try:
        return BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {', '.join(sorted(BY_NAME))}"
        ) from None


def analysis_suite() -> List[WorkloadSpec]:
    """The benchmarks the paper aggregates over (buggy lusearch excluded)."""
    return [spec for spec in DACAPO if spec.name not in ANALYSIS_EXCLUDED]


def full_suite() -> List[WorkloadSpec]:
    return list(DACAPO)
