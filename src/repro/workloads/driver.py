"""The trace driver: turns a :class:`WorkloadSpec` into allocations.

One driver, two sinks:

* a :class:`VirtualMachine` — the real run;
* :class:`LivenessProbe` — a VM-free dry run that tracks live bytes, used
  to determine each benchmark's *minimum heap* (the paper sizes every
  experiment as a multiple of the per-benchmark minimum).

Because lifetimes are measured in allocated bytes, the driver advances
its own clock (in aligned object footprints), and all randomness comes
from the seeded generator, the event stream is identical for every
sink, collector, and failure configuration: only the memory manager's
reaction differs, exactly like replay methodology in the paper.
"""

from __future__ import annotations

import heapq
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from ..hardware.geometry import Geometry
from ..heap.object_model import aligned_size
from ..units import KiB
from .spec import WorkloadSpec


class LivenessProbe:
    """A sink that only tracks liveness (for min-heap estimation)."""

    def __init__(self, geometry: Optional[Geometry] = None) -> None:
        self.geometry = geometry or Geometry()
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self._cohort_bytes: dict = {}
        self._next_id = 0
        self.objects_allocated = 0

    class _Stub:
        __slots__ = ("oid", "size")

        def __init__(self, oid: int, size: int) -> None:
            self.oid = oid
            self.size = size

    def _footprint(self, size: int) -> int:
        total = aligned_size(size)
        if total > 8 * KiB:  # large objects occupy whole pages
            page = self.geometry.page
            total = (total + page - 1) // page * page
        return total

    def alloc(self, size: int, pinned: bool = False):
        stub = self._Stub(self._next_id, self._footprint(size))
        self._next_id += 1
        self.objects_allocated += 1
        self.live_bytes += stub.size
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return stub

    def add_root(self, obj) -> None:
        self._cohort_bytes[obj.oid] = obj.size

    def remove_root(self, obj) -> None:
        self.live_bytes -= self._cohort_bytes.pop(obj.oid)

    def add_ref(self, parent, child) -> None:
        # Cohort members live and die with their head.
        self._cohort_bytes[parent.oid] += child.size

    def mutate(self, obj) -> None:
        return None


@dataclass
class DriveResult:
    """Summary of one driven run."""

    allocated_objects: int
    allocated_bytes: int
    cohorts: int
    expired_cohorts: int


class DriverState:
    """The full resumable state of one driven workload iteration.

    Everything the trace driver knows between cohorts lives here, so a
    snapshot taken at a step boundary (one cohort = one step) restores
    to the exact event stream an uninterrupted run would produce: the
    seeded generator, the allocation clock, and the pending-death heap
    (which references live head objects by identity) all round-trip
    through pickle.
    """

    __slots__ = (
        "rng",
        "phase",
        "clock",
        "immortal",
        "cohorts",
        "expired",
        "objects",
        "pending",
        "sequence",
        "mutation_budget",
        "steps",
    )

    #: Phases of a run, in order.
    IMMORTAL = "immortal"
    CHURN = "churn"
    DONE = "done"

    def __init__(self, rng: random.Random) -> None:
        self.rng = rng
        self.phase = self.IMMORTAL
        self.clock = 0
        self.immortal = 0
        self.cohorts = 0
        self.expired = 0
        self.objects = 0
        # (death_clock, sequence, head) — sequence breaks ties.
        self.pending: List[tuple] = []
        self.sequence = 0
        self.mutation_budget = 0.0
        #: Completed step() calls; checkpoint policies key off this.
        self.steps = 0


class TraceDriver:
    """Drives a sink through one iteration of a workload.

    The driver is a resumable state machine: :meth:`begin` initializes
    a :class:`DriverState`, each :meth:`step` emits one cohort of
    allocations (returning False once the trace is exhausted), and
    :meth:`result` summarizes. :meth:`run` is the one-shot convenience
    wrapper and produces an event stream identical to stepping manually,
    so a run checkpointed between steps and resumed elsewhere replays
    bit-for-bit.
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self.state: Optional[DriverState] = None

    # ------------------------------------------------------------------
    def begin(self) -> DriverState:
        """Start (or restart) the trace; returns the fresh state."""
        # crc32, not hash(): str hashes are randomized per process
        # (PYTHONHASHSEED), which made traces — and thus every result —
        # irreproducible across processes, workers, and cache entries.
        rng = random.Random(
            (self.seed << 16) ^ (zlib.crc32(self.spec.name.encode()) & 0xFFFF)
        )
        self.state = DriverState(rng)
        return self.state

    @property
    def done(self) -> bool:
        return self.state is not None and self.state.phase == DriverState.DONE

    def step(self, sink) -> bool:
        """Advance by one cohort; False when the trace is exhausted."""
        state = self.state
        if state is None:
            raise RuntimeError("call begin() before step()")
        if state.phase == DriverState.IMMORTAL:
            self._step_immortal(state, sink)
        elif state.phase == DriverState.CHURN:
            if state.clock >= self.spec.total_alloc_bytes:
                state.phase = DriverState.DONE
            else:
                self._step_churn(state, sink)
        if state.phase == DriverState.DONE:
            return False
        state.steps += 1
        return True

    def _step_immortal(self, state: DriverState, sink) -> None:
        """One immortal cohort: rooted once, never removed."""
        spec = self.spec
        if state.immortal >= spec.immortal_bytes:
            state.clock += state.immortal
            state.phase = DriverState.CHURN
            return
        rng = state.rng
        head_size = spec.small.sample(rng)
        head = sink.alloc(head_size)
        sink.add_root(head)
        state.immortal += aligned_size(head_size)
        state.objects += 1
        for _ in range(spec.cohort_size - 1):
            if state.immortal >= spec.immortal_bytes:
                break
            child_size = spec.sample_size(rng)
            child = sink.alloc(child_size)
            sink.add_ref(head, child)
            state.immortal += aligned_size(child_size)
            state.objects += 1

    def _step_churn(self, state: DriverState, sink) -> None:
        """One churn cohort with a sampled lifetime."""
        spec = self.spec
        rng = state.rng
        while state.pending and state.pending[0][0] <= state.clock:
            _, _, dead_head = heapq.heappop(state.pending)
            sink.remove_root(dead_head)
            state.expired += 1
        head_size = spec.small.sample(rng)
        head = sink.alloc(head_size)
        sink.add_root(head)
        state.clock += aligned_size(head_size)
        state.objects += 1
        state.cohorts += 1
        lifetime = spec.sample_lifetime(rng)
        heapq.heappush(state.pending, (state.clock + lifetime, state.sequence, head))
        state.sequence += 1
        for _ in range(spec.cohort_size - 1):
            pinned = rng.random() < spec.pinned_fraction
            child_size = spec.sample_size(rng)
            child = sink.alloc(child_size, pinned=pinned)
            sink.add_ref(head, child)
            state.clock += aligned_size(child_size)
            state.objects += 1
            if spec.mutations_per_object > 0:
                state.mutation_budget += spec.mutations_per_object
                while state.mutation_budget >= 1.0:
                    sink.mutate(child)
                    state.mutation_budget -= 1.0
            if state.clock >= spec.total_alloc_bytes:
                break

    def result(self) -> DriveResult:
        state = self.state
        if state is None:
            raise RuntimeError("the driver never ran")
        return DriveResult(
            allocated_objects=state.objects,
            allocated_bytes=state.clock,
            cohorts=state.cohorts,
            expired_cohorts=state.expired,
        )

    # ------------------------------------------------------------------
    def run(self, sink) -> DriveResult:
        """Drive the whole trace in one call (fresh start)."""
        self.begin()
        while self.step(sink):
            pass
        return self.result()


def estimate_min_heap(
    spec: WorkloadSpec,
    seed: int = 0,
    geometry: Optional[Geometry] = None,
    headroom: float = 1.30,
) -> int:
    """The benchmark's minimum heap, block-aligned (paper section 5).

    A dry run measures peak live bytes; the minimum workable heap adds
    collector headroom (a heap exactly equal to peak live thrashes).
    The estimate is collector-independent, as in the paper, which picks
    one minimum per benchmark and sizes all configurations from it.
    """
    geometry = geometry or Geometry()
    probe = LivenessProbe(geometry)
    TraceDriver(spec, seed).run(probe)
    raw = int(probe.peak_live_bytes * headroom) + 2 * geometry.block
    block = geometry.block
    return (raw + block - 1) // block * block
