"""The trace driver: turns a :class:`WorkloadSpec` into allocations.

One driver, two sinks:

* a :class:`VirtualMachine` — the real run;
* :class:`LivenessProbe` — a VM-free dry run that tracks live bytes, used
  to determine each benchmark's *minimum heap* (the paper sizes every
  experiment as a multiple of the per-benchmark minimum).

Because lifetimes are measured in allocated bytes, the driver advances
its own clock (in aligned object footprints), and all randomness comes
from the seeded generator, the event stream is identical for every
sink, collector, and failure configuration: only the memory manager's
reaction differs, exactly like replay methodology in the paper.
"""

from __future__ import annotations

import heapq
import random
import zlib
from dataclasses import dataclass
from typing import List, Optional

from ..hardware.geometry import Geometry
from ..heap.object_model import aligned_size
from ..units import KiB
from .spec import WorkloadSpec


class LivenessProbe:
    """A sink that only tracks liveness (for min-heap estimation)."""

    def __init__(self, geometry: Optional[Geometry] = None) -> None:
        self.geometry = geometry or Geometry()
        self.live_bytes = 0
        self.peak_live_bytes = 0
        self._cohort_bytes: dict = {}
        self._next_id = 0
        self.objects_allocated = 0

    class _Stub:
        __slots__ = ("oid", "size")

        def __init__(self, oid: int, size: int) -> None:
            self.oid = oid
            self.size = size

    def _footprint(self, size: int) -> int:
        total = aligned_size(size)
        if total > 8 * KiB:  # large objects occupy whole pages
            page = self.geometry.page
            total = (total + page - 1) // page * page
        return total

    def alloc(self, size: int, pinned: bool = False):
        stub = self._Stub(self._next_id, self._footprint(size))
        self._next_id += 1
        self.objects_allocated += 1
        self.live_bytes += stub.size
        self.peak_live_bytes = max(self.peak_live_bytes, self.live_bytes)
        return stub

    def add_root(self, obj) -> None:
        self._cohort_bytes[obj.oid] = obj.size

    def remove_root(self, obj) -> None:
        self.live_bytes -= self._cohort_bytes.pop(obj.oid)

    def add_ref(self, parent, child) -> None:
        # Cohort members live and die with their head.
        self._cohort_bytes[parent.oid] += child.size

    def mutate(self, obj) -> None:
        return None


@dataclass
class DriveResult:
    """Summary of one driven run."""

    allocated_objects: int
    allocated_bytes: int
    cohorts: int
    expired_cohorts: int


class TraceDriver:
    """Drives a sink through one iteration of a workload."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed

    def run(self, sink) -> DriveResult:
        spec = self.spec
        # crc32, not hash(): str hashes are randomized per process
        # (PYTHONHASHSEED), which made traces — and thus every result —
        # irreproducible across processes, workers, and cache entries.
        rng = random.Random((self.seed << 16) ^ (zlib.crc32(spec.name.encode()) & 0xFFFF))
        clock = 0
        cohorts = 0
        expired = 0
        objects = 0
        # (death_clock, sequence, head) — sequence breaks ties.
        pending: List[tuple] = []
        sequence = 0

        # --------------------------------------------------------------
        # Immortal data: rooted once, never removed.
        # --------------------------------------------------------------
        immortal = 0
        while immortal < spec.immortal_bytes:
            head_size = spec.small.sample(rng)
            head = sink.alloc(head_size)
            sink.add_root(head)
            immortal += aligned_size(head_size)
            objects += 1
            for _ in range(spec.cohort_size - 1):
                if immortal >= spec.immortal_bytes:
                    break
                child_size = spec.sample_size(rng)
                child = sink.alloc(child_size)
                sink.add_ref(head, child)
                immortal += aligned_size(child_size)
                objects += 1
        clock += immortal

        # --------------------------------------------------------------
        # Churn: cohorts with sampled lifetimes.
        # --------------------------------------------------------------
        mutation_budget = 0.0
        while clock < spec.total_alloc_bytes:
            while pending and pending[0][0] <= clock:
                _, _, dead_head = heapq.heappop(pending)
                sink.remove_root(dead_head)
                expired += 1
            head_size = spec.small.sample(rng)
            head = sink.alloc(head_size)
            sink.add_root(head)
            clock += aligned_size(head_size)
            objects += 1
            cohorts += 1
            lifetime = spec.sample_lifetime(rng)
            heapq.heappush(pending, (clock + lifetime, sequence, head))
            sequence += 1
            for _ in range(spec.cohort_size - 1):
                pinned = rng.random() < spec.pinned_fraction
                child_size = spec.sample_size(rng)
                child = sink.alloc(child_size, pinned=pinned)
                sink.add_ref(head, child)
                clock += aligned_size(child_size)
                objects += 1
                if spec.mutations_per_object > 0:
                    mutation_budget += spec.mutations_per_object
                    while mutation_budget >= 1.0:
                        sink.mutate(child)
                        mutation_budget -= 1.0
                if clock >= spec.total_alloc_bytes:
                    break
        return DriveResult(
            allocated_objects=objects,
            allocated_bytes=clock,
            cohorts=cohorts,
            expired_cohorts=expired,
        )


def estimate_min_heap(
    spec: WorkloadSpec,
    seed: int = 0,
    geometry: Optional[Geometry] = None,
    headroom: float = 1.30,
) -> int:
    """The benchmark's minimum heap, block-aligned (paper section 5).

    A dry run measures peak live bytes; the minimum workable heap adds
    collector headroom (a heap exactly equal to peak live thrashes).
    The estimate is collector-independent, as in the paper, which picks
    one minimum per benchmark and sizes all configurations from it.
    """
    geometry = geometry or Geometry()
    probe = LivenessProbe(geometry)
    TraceDriver(spec, seed).run(probe)
    raw = int(probe.peak_live_bytes * headroom) + 2 * geometry.block
    block = geometry.block
    return (raw + block - 1) // block * block
