"""Workload specifications (paper section 5, benchmarks).

The paper evaluates DaCapo Java benchmarks. Java itself is out of reach
here, so each benchmark is modelled as a *workload specification*: an
allocation-size mix, a steady live-set target, cohort-based object
lifetimes following the weak generational hypothesis, and optional
pinning/mutation behaviour. The per-benchmark parameters are chosen to
match the paper's narrative (see :mod:`repro.workloads.dacapo`).

Lifetimes are expressed in *allocated bytes* (the standard GC notion of
time), so the trace a spec generates is completely independent of which
collector or failure configuration runs it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigError
from ..units import KiB, MiB


@dataclass(frozen=True)
class SizeBand:
    """Uniformly sampled payload-size range in bytes."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if not 0 < self.lo <= self.hi:
            raise ConfigError(f"invalid size band [{self.lo}, {self.hi}]")

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.lo, self.hi)


#: Default bands relative to the paper's geometry: small fits one
#: 256 B Immix line, medium spans lines within a block, large exceeds
#: the 8 KB LOS threshold.
SMALL = SizeBand(16, 120)
MEDIUM = SizeBand(300, 2 * KiB)
LARGE = SizeBand(9 * KiB, 40 * KiB)


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete synthetic benchmark definition."""

    name: str
    description: str
    #: Total allocation volume for one iteration.
    total_alloc_bytes: int
    #: Bytes of immortal data built at startup (never dies).
    immortal_bytes: int
    #: Mean lifetime (allocated bytes) of short-lived cohorts.
    short_lifetime_bytes: int
    #: Mean lifetime of long-lived cohorts.
    long_lifetime_bytes: int
    #: Fraction of cohorts that are long-lived.
    long_fraction: float
    #: Allocation-count weights for (small, medium, large) objects.
    size_weights: Tuple[float, float, float]
    #: Objects per cohort (one shared death time per cohort).
    cohort_size: int = 24
    #: Fraction of objects pinned at allocation (C# interop-style).
    pinned_fraction: float = 0.0
    #: Mean application stores per object (drives wear experiments).
    mutations_per_object: float = 0.0
    small: SizeBand = SMALL
    medium: SizeBand = MEDIUM
    large: SizeBand = LARGE

    def __post_init__(self) -> None:
        if self.total_alloc_bytes <= 0:
            raise ConfigError("total_alloc_bytes must be positive")
        if self.immortal_bytes < 0:
            raise ConfigError("immortal_bytes must be >= 0")
        if not 0.0 <= self.long_fraction <= 1.0:
            raise ConfigError("long_fraction outside [0, 1]")
        if len(self.size_weights) != 3 or any(w < 0 for w in self.size_weights):
            raise ConfigError("size_weights must be three non-negative numbers")
        if sum(self.size_weights) == 0:
            raise ConfigError("size_weights must not all be zero")
        if self.cohort_size < 1:
            raise ConfigError("cohort_size must be >= 1")
        if not 0.0 <= self.pinned_fraction <= 1.0:
            raise ConfigError("pinned_fraction outside [0, 1]")

    # ------------------------------------------------------------------
    def sample_size(self, rng: random.Random) -> int:
        """Draw one payload size from the mixture."""
        small_w, medium_w, large_w = self.size_weights
        pick = rng.random() * (small_w + medium_w + large_w)
        if pick < small_w:
            return self.small.sample(rng)
        if pick < small_w + medium_w:
            return self.medium.sample(rng)
        return self.large.sample(rng)

    def sample_lifetime(self, rng: random.Random) -> int:
        """Draw one cohort lifetime in allocated bytes (exponential)."""
        if rng.random() < self.long_fraction:
            mean = self.long_lifetime_bytes
        else:
            mean = self.short_lifetime_bytes
        return max(1, int(rng.expovariate(1.0 / mean)))

    def expected_churn_live_bytes(self) -> float:
        """Steady-state live bytes from churn alone (analytical).

        With allocation as the clock, steady-state live volume equals
        the mean lifetime in allocated bytes.
        """
        return (
            (1.0 - self.long_fraction) * self.short_lifetime_bytes
            + self.long_fraction * self.long_lifetime_bytes
        )

    def expected_live_bytes(self) -> float:
        return self.immortal_bytes + self.expected_churn_live_bytes()

    def mean_object_bytes(self) -> float:
        """Expected payload size (useful for sizing runs)."""
        small_w, medium_w, large_w = self.size_weights
        total = small_w + medium_w + large_w
        mean = lambda band: (band.lo + band.hi) / 2  # noqa: E731
        return (
            small_w * mean(self.small)
            + medium_w * mean(self.medium)
            + large_w * mean(self.large)
        ) / total

    def approx_object_count(self) -> int:
        return int(self.total_alloc_bytes / max(1.0, self.mean_object_bytes()))

    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "WorkloadSpec":
        """A cheaper copy: same live set and mix, less total allocation.

        Used by quick benchmark modes; the live set, sizes, and
        lifetimes are untouched, so memory-pressure behaviour per GC is
        preserved — there are simply fewer collections.
        """
        if factor <= 0:
            raise ConfigError("scale factor must be positive")
        return WorkloadSpec(
            name=self.name,
            description=self.description,
            total_alloc_bytes=max(256 * KiB, int(self.total_alloc_bytes * factor)),
            immortal_bytes=self.immortal_bytes,
            short_lifetime_bytes=self.short_lifetime_bytes,
            long_lifetime_bytes=self.long_lifetime_bytes,
            long_fraction=self.long_fraction,
            size_weights=self.size_weights,
            cohort_size=self.cohort_size,
            pinned_fraction=self.pinned_fraction,
            mutations_per_object=self.mutations_per_object,
            small=self.small,
            medium=self.medium,
            large=self.large,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: {self.total_alloc_bytes / MiB:.1f} MB allocated, "
            f"~{self.expected_live_bytes() / KiB:.0f} KB live, "
            f"weights s/m/l = {self.size_weights}"
        )
