"""Tests for the cross-layer heap auditor (repro.check).

Two halves: the coordinator mechanics (levels, hooks, record-only
mode, report rendering), and detection power — each checker must flag a
deliberately seeded corruption of its layer's state.
"""

import pytest

from repro.check import (
    PARANOID_ALLOC_INTERVAL,
    VERIFY_LEVELS,
    AuditReport,
    HeapAuditor,
    Violation,
    audit_vm,
    check_verify_level,
    run_campaign,
)
from repro.errors import ConfigError, HeapAuditError
from repro.faults.generator import FailureModel
from repro.heap.line_table import FREE
from repro.runtime.vm import VirtualMachine, VmConfig
from repro.units import KiB, MiB
from repro.workloads.driver import TraceDriver
from repro.workloads.spec import WorkloadSpec

SPEC = WorkloadSpec(
    name="audit-unit",
    description="tiny unpinned workload for auditor tests",
    total_alloc_bytes=256 * KiB,
    immortal_bytes=16 * KiB,
    short_lifetime_bytes=16 * KiB,
    long_lifetime_bytes=48 * KiB,
    long_fraction=0.10,
    size_weights=(0.90, 0.08, 0.02),
    cohort_size=8,
    pinned_fraction=0.0,
)


def make_vm(rate=0.20, verify="off", **config):
    vm = VirtualMachine(
        VmConfig(
            heap_bytes=1 * MiB,
            failure_model=FailureModel(rate=rate, hw_region_pages=2),
            seed=3,
            verify=verify,
            **config,
        )
    )
    TraceDriver(SPEC, 3).run(vm)
    return vm


def found_invariants(vm, trigger="final"):
    return {violation.invariant for violation in audit_vm(vm, trigger).violations}


# ======================================================================
# Coordinator mechanics
# ======================================================================
class TestViolation:
    def test_where_and_describe(self):
        violation = Violation(
            invariant="line-mark-drift",
            layer="heap",
            message="disagrees",
            expected="FAILED",
            actual="FREE",
            block=4,
            line=17,
        )
        assert violation.where() == "block=4, line=17"
        text = violation.describe()
        assert "[heap] line-mark-drift" in text
        assert "expected: FAILED" in text and "actual:   FREE" in text
        assert Violation("x", "os", "m").where() == "heap-wide"

    def test_to_dict_round_trips_fields(self):
        violation = Violation("inv", "runtime", "msg", page=2)
        data = violation.to_dict()
        assert data["invariant"] == "inv" and data["page"] == 2
        assert data["block"] is None


class TestAuditReport:
    def test_render_clean(self):
        report = AuditReport(trigger="gc", checks_run=8)
        assert report.ok
        assert "no violations" in report.render()

    def test_render_with_violations(self):
        report = AuditReport(
            trigger="final",
            violations=[Violation("inv", "os", "broken")],
            checks_run=8,
        )
        assert not report.ok
        assert "1 violation(s)" in report.render()
        assert "inv" in report.render()


class TestVerifyLevels:
    def test_known_levels_pass_through(self):
        for level in VERIFY_LEVELS:
            assert check_verify_level(level) == level

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigError):
            check_verify_level("extreme")
        with pytest.raises(ConfigError):
            HeapAuditor(object(), level="extreme")

    def test_vm_rejects_unknown_level(self):
        with pytest.raises(ConfigError):
            VirtualMachine(VmConfig(heap_bytes=1 * MiB, verify="extreme"))

    def test_env_variable_selects_level(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "gc")
        vm = VirtualMachine(VmConfig(heap_bytes=1 * MiB))
        assert vm.auditor.level == "gc"
        # Explicit config wins over the environment.
        vm = VirtualMachine(VmConfig(heap_bytes=1 * MiB, verify="off"))
        assert vm.auditor.level == "off"


class TestHookGating:
    def make_counting_auditor(self, level):
        auditor = HeapAuditor(object(), level=level)
        calls = []
        auditor.audit = lambda trigger="manual": calls.append(trigger)
        return auditor, calls

    def test_off_never_audits(self):
        auditor, calls = self.make_counting_auditor("off")
        auditor.after_gc()
        auditor.after_upcall()
        auditor.after_alloc()
        assert auditor.final() is None
        assert calls == []

    def test_gc_level_audits_gc_and_final_only(self):
        auditor, calls = self.make_counting_auditor("gc")
        auditor.after_gc()
        auditor.after_upcall()
        auditor.after_alloc()
        auditor.final()
        assert calls == ["gc", "final"]

    def test_upcall_level_adds_upcall_audits(self):
        auditor, calls = self.make_counting_auditor("upcall")
        auditor.after_upcall()
        auditor.after_alloc()
        assert calls == ["upcall"]

    def test_paranoid_samples_allocations(self):
        auditor, calls = self.make_counting_auditor("paranoid")
        for _ in range(PARANOID_ALLOC_INTERVAL * 2):
            auditor.after_alloc()
        assert calls == ["alloc", "alloc"]


# ======================================================================
# Detection power: every seeded corruption must be flagged
# ======================================================================
def block_with_failures(vm):
    for block in vm.collector.blocks:
        if block.failed_lines:
            return block
    pytest.skip("run produced no block with failed lines")


class TestDetection:
    def test_clean_run_audits_clean(self):
        vm = make_vm()
        report = audit_vm(vm, "final")
        assert report.ok, report.render()
        assert report.checks_run == 11

    def test_masked_failed_line(self):
        vm = make_vm()
        block = block_with_failures(vm)
        line = next(iter(block.failed_lines))
        block.line_states[line] = FREE
        assert "failed-line-masked" in found_invariants(vm)

    def test_object_overlap(self):
        vm = make_vm()
        block = next(b for b in vm.collector.blocks if b.objects)
        victim = block.objects[0]
        intruder = vm.factory.make(64)
        block.place(intruder, victim.offset)
        assert "object-overlap" in found_invariants(vm)

    def test_phantom_failed_line_seeding(self):
        vm = make_vm()
        block = next(b for b in vm.collector.blocks)
        free_line = next(
            line for line in range(block.n_lines) if line not in block.failed_lines
        )
        block.failed_lines.add(free_line)
        assert "failed-line-seeding" in found_invariants(vm)

    def test_failure_table_divergence(self):
        vm = make_vm()
        pcm = vm.injector.pcm
        pcm._failed_logical.add(max(pcm._failed_logical, default=0) + 1)
        assert "failure-table-sync" in found_invariants(vm)

    def test_leaked_failure_buffer_entry(self):
        from repro.hardware.failure_buffer import FailureEntry

        vm = make_vm()
        # Seed the entry behind the interrupt line: a real insert()
        # interrupts the OS, which correctly services and drains it.
        buffer = vm.injector.pcm.failure_buffer
        buffer._entries[0x40] = FailureEntry(0x40, "leaked")
        assert "failure-buffer-drained" in found_invariants(vm, trigger="final")
        # Mid-service audits must tolerate parked entries.
        assert "failure-buffer-drained" not in found_invariants(vm, trigger="upcall")

    def test_orphaned_pool_page(self):
        vm = make_vm()
        pools = vm.os.pools
        pools._allocated.discard(next(iter(pools._allocated)))
        assert "page-pool-partition" in found_invariants(vm)

    def test_stale_page_directory(self):
        vm = make_vm()
        directory = vm.collector.page_directory
        del directory[next(iter(directory))]
        assert "page-directory-sync" in found_invariants(vm)

    def test_borrow_ledger_divergence(self):
        vm = make_vm()
        vm.supply.accountant.borrow()
        assert "borrow-penalty-accounting" in found_invariants(vm)

    def test_corrupt_redirection_map(self):
        vm = make_vm()
        rmap = vm.injector.pcm.clustering.map_for_region(0)
        rmap.installed = True
        rmap.logical_to_physical[0] = rmap.logical_to_physical[1]
        assert "redirection-permutation" in found_invariants(vm)

    def test_redirection_failures_must_be_reported(self):
        vm = make_vm()
        pcm = vm.injector.pcm
        per_region = vm.geometry.lines_per_region
        n_regions = pcm.n_lines // per_region
        hw_regions = {line // per_region for line in pcm.failed_logical_lines()}
        physical_regions = {line // per_region for line in pcm._failed_physical}
        clean = next(
            (
                r
                for r in range(n_regions)
                if r not in hw_regions and r not in physical_regions
            ),
            None,
        )
        if clean is None:
            pytest.skip("every region has failures at this seed")
        rmap = pcm.clustering.map_for_region(clean)
        rmap.installed = True
        rmap.failed_count = 1  # claims a failure the module never saw
        invariants = found_invariants(vm)
        assert "redirection-reported" in invariants
        assert "redirection-overcount" in invariants


class TestAuditorModes:
    def test_record_only_collects_instead_of_raising(self):
        vm = make_vm()
        block = block_with_failures(vm)
        block.line_states[next(iter(block.failed_lines))] = FREE
        auditor = HeapAuditor(vm, level="gc", record_only=True)
        report = auditor.audit("manual")
        assert not report.ok
        assert auditor.violations and auditor.audits_run == 1

    def test_strict_mode_raises_heap_audit_error(self):
        vm = make_vm()
        block = block_with_failures(vm)
        block.line_states[next(iter(block.failed_lines))] = FREE
        auditor = HeapAuditor(vm, level="gc")
        with pytest.raises(HeapAuditError):
            auditor.audit("manual")

    def test_vm_hook_raises_end_to_end(self):
        # The corruption must survive a collection (the sweep rebuilds
        # line marks, healing heap-layer damage), so break OS state.
        vm = make_vm(verify="gc")
        pools = vm.os.pools
        pools._allocated.discard(next(iter(pools._allocated)))
        with pytest.raises(HeapAuditError):
            vm.collect()


class TestCampaign:
    def test_single_workload_campaign_is_clean(self):
        result = run_campaign(seed=0, workloads=["luindex"], scale=0.05)
        assert len(result.runs) == 1
        run = result.runs[0]
        assert run.audits > 0
        assert run.dynamic_failures > 0, "campaign must exercise dynamic failures"
        assert result.ok, result.render()
        assert "0 violation" in result.render()

    def test_campaign_not_ok_without_dynamic_failures(self):
        from repro.check.campaign import CampaignResult, CampaignRun

        result = CampaignResult(
            runs=[
                CampaignRun(
                    workload="w",
                    scenario="s",
                    seed=0,
                    heap_bytes=0,
                    audits=1,
                    dynamic_failures=0,
                    duplicate_failures=0,
                    upcalls=0,
                    collections=0,
                )
            ]
        )
        assert not result.ok
        assert "WARNING" in result.render()
