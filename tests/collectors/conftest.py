"""Shared helpers for collector tests."""

import pytest

from repro.hardware.geometry import Geometry
from repro.heap.line_table import FAILED
from repro.heap.page_supply import HeapPage, PageSupply

G = Geometry()


def build_supply(n_blocks=8, failure_map=None, geometry=G):
    """A supply of n_blocks worth of pages; failure_map maps page index
    to a set of failed PCM line offsets."""
    failure_map = failure_map or {}
    pages = [
        HeapPage(index, frozenset(failure_map.get(index, ())))
        for index in range(n_blocks * geometry.pages_per_block)
    ]
    return PageSupply(pages, geometry)


def assert_no_object_on_failed_line(collector):
    """The paper's core invariant: live objects never overlap failures."""
    line_size = collector.geometry.immix_line
    for block in collector.blocks:
        for obj in block.objects:
            for line in obj.line_span(line_size):
                assert line not in block.failed_lines, (
                    f"object {obj.oid} overlaps failed line {line} "
                    f"of block {block.virtual_index}"
                )


def assert_no_overlapping_objects(collector):
    """No two objects may occupy the same bytes of a block."""
    for block in collector.blocks:
        extents = sorted((obj.offset, obj.offset + obj.size) for obj in block.objects)
        for (_, prev_end), (next_start, _) in zip(extents, extents[1:]):
            assert prev_end <= next_start, f"overlap in block {block.virtual_index}"


def assert_heap_consistent(collector):
    assert_no_object_on_failed_line(collector)
    assert_no_overlapping_objects(collector)
