"""Tests for discontiguous-array (arraylet) allocation."""

import pytest

from repro.collectors.immix import ImmixCollector, ImmixConfig
from repro.hardware.geometry import Geometry
from repro.heap.object_model import ObjectFactory

from .conftest import assert_heap_consistent, build_supply

G = Geometry()


def make_collector(n_blocks=8, failure_map=None, arraylet_bytes=2048):
    supply = build_supply(n_blocks, failure_map)
    factory = ObjectFactory()
    collector = ImmixCollector(
        supply,
        G,
        config=ImmixConfig(
            generational=True, arraylets=True, arraylet_bytes=arraylet_bytes
        ),
        factory=factory,
    )
    return collector, factory


class TestAllocation:
    def test_large_object_becomes_chunks(self):
        collector, factory = make_collector()
        obj = factory.make(20 * 1024)
        assert collector.allocate(obj)
        assert obj.is_large
        placement = obj.los_placement
        assert placement.n_pages == 0
        # ceil(obj.size / 2048) chunks, all placed in block space.
        expected = -(-obj.size // 2048)
        assert len(placement.chunks) == expected
        assert collector.stats.arraylet_spines == 1
        assert collector.stats.arraylet_chunks == expected
        assert len(collector.los) == 0  # nothing touched the page LOS
        for chunk in placement.chunks:
            assert chunk.block is not None

    def test_spine_references_keep_chunks_alive(self):
        collector, factory = make_collector()
        obj = factory.make(20 * 1024)
        collector.allocate(obj)
        chunks = set(obj.los_placement.chunks)
        collector.collect_full([obj])
        survivors = {o for b in collector.blocks for o in b.objects}
        assert chunks <= survivors

    def test_chunks_die_with_spine(self):
        collector, factory = make_collector()
        obj = factory.make(20 * 1024)
        collector.allocate(obj)
        collector.collect_full([])  # spine unreachable
        assert all(not b.objects for b in collector.blocks)

    def test_no_perfect_pages_consumed(self):
        # Every page imperfect: the page-grained LOS would have to
        # borrow; arraylets place everything in line space.
        failure_map = {page: {0} for page in range(8 * G.pages_per_block)}
        collector, factory = make_collector(failure_map=failure_map)
        obj = factory.make(16 * 1024)
        assert collector.allocate(obj)
        assert collector.supply.accountant.borrowed == 0
        assert_heap_consistent(collector)

    def test_small_arraylets_avoid_medium_runs(self):
        collector, factory = make_collector(arraylet_bytes=240)
        obj = factory.make(4 * 1024 + 8200)  # forces the large path
        assert collector.allocate(obj)
        line = G.immix_line
        for chunk in obj.los_placement.chunks:
            assert chunk.size <= line

    def test_rollback_on_exhaustion(self):
        collector, factory = make_collector(n_blocks=1)
        big = factory.make(64 * 1024)  # cannot fit in one block
        assert not collector.allocate(big)
        # All partially placed chunks were rolled back.
        placed = sum(len(b.objects) for b in collector.blocks)
        assert placed == 0

    def test_virtual_base_is_first_chunk(self):
        collector, factory = make_collector()
        obj = factory.make(20 * 1024)
        collector.allocate(obj)
        assert obj.address == obj.los_placement.chunks[0].address


class TestGenerationalInterplay:
    def test_chunks_survive_nursery_via_spine(self):
        collector, factory = make_collector()
        obj = factory.make(20 * 1024)
        collector.allocate(obj)
        collector.collect_nursery([obj])
        survivors = {o for b in collector.blocks for o in b.objects}
        assert set(obj.los_placement.chunks) <= survivors
        assert all(chunk.old for chunk in obj.los_placement.chunks)

    def test_chunk_evacuation_on_dynamic_failure(self):
        collector, factory = make_collector()
        obj = factory.make(20 * 1024)
        collector.allocate(obj)
        chunk = obj.los_placement.chunks[0]
        block = chunk.block
        page = block.pages[block.page_slot_of_line(chunk.line_span(G.immix_line)[0])]
        needs_gc = collector.note_dynamic_failure(
            page.index, (chunk.offset % G.page) // G.pcm_line
        )
        assert needs_gc
        collector.collect_full([obj])
        assert chunk.moved_count >= 0  # moved or its line unaffected
        assert_heap_consistent(collector)
