"""Tests for the (failure-aware) Immix collector."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectors.immix import ImmixCollector, ImmixConfig
from repro.hardware.geometry import Geometry
from repro.heap.object_model import ObjectFactory

from .conftest import assert_heap_consistent, build_supply

G = Geometry()


def make_collector(n_blocks=8, failure_map=None, generational=False, **cfg):
    supply = build_supply(n_blocks, failure_map)
    config = ImmixConfig(generational=generational, **cfg)
    return ImmixCollector(supply, G, config=config), ObjectFactory()


class TestAllocation:
    def test_small_objects_bump_contiguously(self):
        collector, factory = make_collector()
        a = factory.make(24)
        b = factory.make(24)
        assert collector.allocate(a) and collector.allocate(b)
        assert a.block is b.block
        assert b.offset == a.offset + a.size
        assert collector.stats.fast_path_allocs == 2

    def test_allocation_skips_failed_lines(self):
        # Page 0 fully failed: first 16 Immix lines unusable.
        failure_map = {0: set(range(G.lines_per_page))}
        collector, factory = make_collector(failure_map=failure_map)
        obj = factory.make(24)
        assert collector.allocate(obj)
        assert obj.offset >= G.page

    def test_allocation_around_scattered_holes(self):
        # Fail PCM line 0 of every page of block 0.
        failure_map = {page: {0} for page in range(G.pages_per_block)}
        collector, factory = make_collector(failure_map=failure_map)
        placed = []
        for _ in range(200):
            obj = factory.make(200)
            assert collector.allocate(obj)
            placed.append(obj)
        assert_heap_consistent(collector)

    def test_medium_object_uses_overflow_block(self):
        collector, factory = make_collector()
        small = factory.make(24)
        collector.allocate(small)
        # Fill the current run artificially by allocating a run-sized
        # object: with a fresh block the run is the whole block, so
        # instead verify the overflow stat path with a medium object
        # that does fit (fast path) vs one diverted after a run change.
        medium = factory.make(1000)
        assert collector.allocate(medium)
        assert collector.stats.objects_allocated == 2

    def test_large_objects_go_to_los(self):
        collector, factory = make_collector()
        big = factory.make(20 * 1024)
        assert collector.allocate(big)
        assert big.is_large
        assert collector.stats.los_allocs == 1
        assert len(collector.los) == 1

    def test_exhaustion_returns_false(self):
        collector, factory = make_collector(n_blocks=1)
        placed = 0
        while collector.allocate(factory.make(2000)):
            placed += 1
        assert placed > 0
        # 1 block = 32 KB minus metadata rounding.
        assert placed <= 32 * 1024 // 2008


class TestCollection:
    def run_churn(self, collector, factory, n=2000, live_target=200, seed=0,
                  sizes=(24, 64, 120, 500)):
        rng = random.Random(seed)
        roots = []
        for _ in range(n):
            obj = factory.make(rng.choice(sizes))
            if not collector.allocate(obj):
                collector.collect(roots)
                assert collector.allocate(obj)
            roots.append(obj)
            if len(roots) > live_target:
                roots.pop(rng.randrange(len(roots)))
        return roots

    def test_collection_reclaims_dead(self):
        collector, factory = make_collector(n_blocks=4)
        roots = self.run_churn(collector, factory)
        assert collector.stats.collections > 0
        collector.collect_full(roots)
        live_in_blocks = sum(len(b.objects) for b in collector.blocks)
        assert live_in_blocks == len([r for r in roots if not r.is_large])
        assert_heap_consistent(collector)

    def test_empty_blocks_release_pages(self):
        collector, factory = make_collector(n_blocks=4)
        self.run_churn(collector, factory, live_target=10)
        collector.collect_full([])
        # Everything dead: all pages back in the supply.
        assert collector.supply.available_pages() == 4 * G.pages_per_block
        assert collector.blocks == []

    def test_full_collection_marks_survivors_old(self):
        collector, factory = make_collector()
        obj = factory.make(64)
        collector.allocate(obj)
        collector.collect_full([obj])
        assert obj.old

    def test_collection_with_failures_preserves_invariants(self):
        failure_map = {page: {1, 7, 30} for page in range(2 * G.pages_per_block)}
        collector, factory = make_collector(n_blocks=6, failure_map=failure_map)
        roots = self.run_churn(collector, factory, n=3000, live_target=300)
        collector.collect_full(roots)
        assert_heap_consistent(collector)

    def test_stats_track_sweeping(self):
        collector, factory = make_collector()
        obj = factory.make(64)
        collector.allocate(obj)
        collector.collect_full([obj])
        assert collector.stats.lines_swept >= G.immix_lines_per_block
        assert collector.stats.blocks_swept >= 1


class TestSticky:
    def test_nursery_collects_young_dead(self):
        collector, factory = make_collector(generational=True)
        keep = factory.make(64)
        collector.allocate(keep)
        dead = [factory.make(64) for _ in range(10)]
        for obj in dead:
            collector.allocate(obj)
        result = collector.collect_nursery([keep])
        assert result["kind"] == "nursery"
        assert keep.old
        live_objs = {o.oid for b in collector.blocks for o in b.objects}
        assert keep.oid in live_objs
        for obj in dead:
            assert obj.oid not in live_objs

    def test_old_objects_implicitly_live_in_nursery(self):
        collector, factory = make_collector(generational=True)
        elder = factory.make(64)
        collector.allocate(elder)
        collector.collect_full([elder])
        assert elder.old
        # A nursery collection with *no* roots must keep the old object.
        collector.collect_nursery([])
        live_objs = {o.oid for b in collector.blocks for o in b.objects}
        assert elder.oid in live_objs

    def test_remset_keeps_young_reachable_from_old(self):
        collector, factory = make_collector(generational=True)
        parent = factory.make(64)
        collector.allocate(parent)
        collector.collect_full([parent])
        child = factory.make(64)
        collector.allocate(child)
        parent.add_ref(child)
        collector.write_barrier(parent, child)
        collector.collect_nursery([])
        live_objs = {o.oid for b in collector.blocks for o in b.objects}
        assert child.oid in live_objs
        assert child.old

    def test_without_barrier_young_child_of_old_dies(self):
        # Documents why the write barrier is required.
        collector, factory = make_collector(generational=True)
        parent = factory.make(64)
        collector.allocate(parent)
        collector.collect_full([parent])
        child = factory.make(64)
        collector.allocate(child)
        parent.add_ref(child)  # no barrier!
        collector.collect_nursery([])
        live_objs = {o.oid for b in collector.blocks for o in b.objects}
        assert child.oid not in live_objs

    def test_survivor_copying_compacts(self):
        collector, factory = make_collector(generational=True)
        keep = []
        for _ in range(50):
            obj = factory.make(64)
            collector.allocate(obj)
            keep.append(obj)
            for _ in range(5):
                collector.allocate(factory.make(64))
        collector.collect_nursery(keep)
        assert collector.stats.objects_copied > 0
        assert_heap_consistent(collector)

    def test_pinned_survivors_not_copied(self):
        collector, factory = make_collector(generational=True)
        pinned = factory.make(64, pinned=True)
        collector.allocate(pinned)
        where = (pinned.block, pinned.offset)
        collector.collect_nursery([pinned])
        assert (pinned.block, pinned.offset) == where
        assert pinned.moved_count == 0


class TestDynamicFailures:
    def test_block_failure_flags_evacuation(self):
        collector, factory = make_collector()
        obj = factory.make(64)
        collector.allocate(obj)
        page = obj.block.pages[0]
        needs_gc = collector.note_dynamic_failure(page.index, 0)
        assert needs_gc
        assert obj.block.evacuate

    def test_evacuation_moves_objects_off_failed_line(self):
        collector, factory = make_collector()
        obj = factory.make(64)
        collector.allocate(obj)
        block = obj.block
        page = block.pages[0]
        collector.note_dynamic_failure(page.index, 0)  # poisons line 0
        collector.collect_full([obj])
        assert obj.moved_count == 1
        assert obj.block is not block or 0 not in obj.line_span(G.immix_line)
        assert_heap_consistent(collector)

    def test_pinned_object_is_not_evacuated(self):
        collector, factory = make_collector()
        obj = factory.make(64, pinned=True)
        collector.allocate(obj)
        page = obj.block.pages[0]
        collector.note_dynamic_failure(page.index, 0)
        collector.collect_full([obj])
        assert obj.moved_count == 0
        assert collector.stats.evacuations_aborted == 0  # pinned skipped, not aborted

    def test_los_page_failure_reallocates_object(self):
        collector, factory = make_collector()
        big = factory.make(20 * 1024)
        collector.allocate(big)
        page = big.los_placement.pages[0]
        old_base = big.los_placement.virtual_base
        needs_gc = collector.note_dynamic_failure(page.index, 3)
        assert not needs_gc
        assert big.moved_count == 1
        assert big.los_placement.virtual_base != old_base
        assert all(p.is_perfect for p in big.los_placement.pages)

    def test_failure_on_unknown_page_ignored(self):
        collector, _ = make_collector()
        assert not collector.note_dynamic_failure(99999, 0)

    def test_los_sweep_keeps_directory_entry_of_transmuted_page(self):
        # Only page 0 is perfect; every other page has a hole.
        collector, factory = make_collector(
            n_blocks=2,
            failure_map={i: {0} for i in range(1, 2 * G.pages_per_block)},
            large_threshold=2048,
        )
        dead = factory.make(3000)
        assert collector.allocate(dead)  # takes perfect page 0
        live = factory.make(3000)
        assert collector.allocate(live, after_gc=True)  # no perfect left: borrows
        borrowed_index = live.los_placement.pages[0].index
        assert borrowed_index < 0
        assert collector.page_directory[borrowed_index] == ("los", live)
        # Sweeping the dead object releases perfect page 0 while debt is
        # outstanding: the borrowed placement silently becomes page 0.
        live.mark = 5
        collector._sweep_los(epoch=5, keep_old=False)
        page = live.los_placement.pages[0]
        assert page.index == 0 and not page.borrowed
        # The directory must follow the re-key — the dead object's late
        # cleanup must not clobber the live holder's entry — so a
        # dynamic failure on page 0 still reaches the live object.
        assert collector.page_directory[0] == ("los", live)
        assert not collector.note_dynamic_failure(0, 3)
        assert live.moved_count == 1


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31), st.integers(min_value=0, max_value=3))
    def test_random_churn_preserves_invariants(self, seed, fail_case):
        failure_map = {}
        if fail_case:
            rng = random.Random(fail_case)
            for page in range(4 * G.pages_per_block):
                failure_map[page] = {
                    off for off in range(G.lines_per_page) if rng.random() < 0.1
                }
        collector, factory = make_collector(
            n_blocks=4, failure_map=failure_map, generational=True
        )
        rng = random.Random(seed)
        roots = []
        for _ in range(800):
            size = rng.choice([24, 56, 120, 400, 900, 3000])
            obj = factory.make(size, pinned=rng.random() < 0.02)
            if not collector.allocate(obj):
                collector.collect(roots)
                if not collector.allocate(obj):
                    collector.collect(roots, force_full=True)
                    if not collector.allocate(obj):
                        break
            roots.append(obj)
            if len(roots) > 60:
                roots.pop(rng.randrange(len(roots)))
        collector.collect_full(roots)
        assert_heap_consistent(collector)
        live_small = {r.oid for r in roots if not r.is_large}
        in_blocks = {o.oid for b in collector.blocks for o in b.objects}
        assert live_small == in_blocks
