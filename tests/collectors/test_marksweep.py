"""Tests for the mark-sweep baseline."""

import random

import pytest

from repro.collectors.marksweep import (
    SIZE_CLASSES,
    MarkSweepCollector,
    size_class_for,
)
from repro.hardware.geometry import Geometry
from repro.heap.object_model import ObjectFactory

from .conftest import build_supply

G = Geometry()


def make_ms(n_blocks=8, failure_map=None, **kwargs):
    supply = build_supply(n_blocks, failure_map)
    return MarkSweepCollector(supply, G, **kwargs), ObjectFactory()


class TestSizeClasses:
    def test_monotonic(self):
        assert list(SIZE_CLASSES) == sorted(SIZE_CLASSES)

    def test_smallest_fit(self):
        assert size_class_for(16) == 16
        assert size_class_for(17) == 24
        assert size_class_for(8192) == 8192

    def test_large_is_none(self):
        assert size_class_for(8193) is None


class TestAllocation:
    def test_objects_of_same_class_share_blocks(self):
        ms, factory = make_ms()
        a = factory.make(24)  # -> 32 B class
        b = factory.make(20)  # -> 32 B class
        ms.allocate(a)
        ms.allocate(b)
        assert a.block is b.block
        assert b.offset - a.offset == 32

    def test_classes_use_distinct_blocks(self):
        ms, factory = make_ms()
        small = factory.make(24)
        big = factory.make(1000)
        ms.allocate(small)
        ms.allocate(big)
        assert small.block is not big.block

    def test_internal_fragmentation_tracked(self):
        ms, factory = make_ms()
        obj = factory.make(25)  # 40 B with header -> 48 B class
        ms.allocate(obj)
        assert ms.stats.freelist_waste_bytes == 48 - obj.size

    def test_large_objects_to_los(self):
        ms, factory = make_ms()
        obj = factory.make(16 * 1024)
        assert ms.allocate(obj)
        assert obj.is_large

    def test_exhaustion(self):
        ms, factory = make_ms(n_blocks=1)
        count = 0
        while ms.allocate(factory.make(1000)):
            count += 1
        assert count == 32 * 1024 // 1024  # one block of 1 KB cells


class TestCollection:
    def test_full_collection_recycles_cells(self):
        ms, factory = make_ms(n_blocks=2)
        keep = factory.make(56)
        ms.allocate(keep)
        for _ in range(100):
            ms.allocate(factory.make(56))
        ms.collect_full([keep])
        census = ms.heap_census()
        assert census["free_cells"] > 0
        # Allocation reuses freed cells without growing the heap.
        blocks_before = census["blocks"]
        for _ in range(50):
            assert ms.allocate(factory.make(56))
        assert ms.heap_census()["blocks"] == blocks_before

    def test_empty_blocks_release_pages(self):
        ms, factory = make_ms(n_blocks=2)
        for _ in range(100):
            ms.allocate(factory.make(56))
        ms.collect_full([])
        assert ms.heap_census()["blocks"] == 0
        assert ms.supply.available_pages() == 2 * G.pages_per_block

    def test_churn_completes_in_fixed_heap(self):
        ms, factory = make_ms(n_blocks=4)
        rng = random.Random(1)
        roots = []
        for _ in range(5000):
            obj = factory.make(rng.choice([24, 56, 120, 500]))
            if not ms.allocate(obj):
                ms.collect(roots)
                assert ms.allocate(obj)
            roots.append(obj)
            if len(roots) > 150:
                roots.pop(rng.randrange(len(roots)))
        assert ms.stats.collections > 0
        assert ms.stats.cells_swept > 0

    def test_sticky_nursery(self):
        ms, factory = make_ms(generational=True)
        keep = factory.make(56)
        ms.allocate(keep)
        dead = [factory.make(56) for _ in range(20)]
        for obj in dead:
            ms.allocate(obj)
        result = ms.collect_nursery([keep])
        assert result["kind"] == "nursery"
        assert keep.old
        free_cells = ms.heap_census()["free_cells"]
        assert free_cells >= 20

    def test_sticky_remset(self):
        ms, factory = make_ms(generational=True)
        parent = factory.make(56)
        ms.allocate(parent)
        ms.collect_full([parent])
        child = factory.make(56)
        ms.allocate(child)
        parent.add_ref(child)
        ms.write_barrier(parent, child)
        ms.collect_nursery([])
        assert child.old
        assert child.block is not None


class TestFailureAwareFreeList:
    def test_cells_overlapping_failures_skipped(self):
        # Fail the first PCM line of page 0: Immix line 0 (256 B) dies,
        # killing cells that overlap bytes 0..255.
        failure_map = {0: {0}}
        ms, factory = make_ms(failure_map=failure_map, failure_aware=True)
        obj = factory.make(56)  # 64 B cells
        ms.allocate(obj)
        assert obj.offset >= 256

    def test_large_cells_amplify_waste(self):
        # One failed 64 B line kills a whole 4 KB cell: the paper's
        # granularity-mismatch argument (section 3.3.1).
        failure_map = {0: {0}}
        ms, factory = make_ms(failure_map=failure_map, failure_aware=True)
        obj = factory.make(4000)  # 4 KB class
        ms.allocate(obj)
        assert obj.offset >= 4096

    def test_unaware_collector_would_use_failed_cells(self):
        failure_map = {0: {0}}
        ms, factory = make_ms(failure_map=failure_map, failure_aware=False)
        obj = factory.make(56)
        ms.allocate(obj)
        assert obj.offset == 0  # lands on the failure: why awareness matters
