"""Tests for collection policies: escalation, overflow protocol, census."""

import random

from repro.collectors.immix import ImmixCollector, ImmixConfig
from repro.hardware.geometry import Geometry
from repro.heap.object_model import ObjectFactory

from .conftest import build_supply

G = Geometry()


def make(n_blocks=8, failure_map=None, **cfg):
    supply = build_supply(n_blocks, failure_map)
    return ImmixCollector(supply, G, config=ImmixConfig(**cfg)), ObjectFactory()


class TestStickyEscalation:
    def test_non_generational_always_full(self):
        collector, factory = make(generational=False)
        obj = factory.make(64)
        collector.allocate(obj)
        assert collector.should_collect_full()
        collector.collect([obj])
        assert collector.stats.full_collections == 1
        assert collector.stats.nursery_collections == 0

    def test_generational_prefers_nursery(self):
        collector, factory = make(generational=True)
        obj = factory.make(64)
        collector.allocate(obj)
        collector.collect([obj])
        assert collector.stats.nursery_collections == 1

    def test_force_full_overrides(self):
        collector, factory = make(generational=True)
        obj = factory.make(64)
        collector.allocate(obj)
        collector.collect([obj], force_full=True)
        assert collector.stats.full_collections == 1

    def test_escalates_after_cap(self):
        collector, factory = make(generational=True)
        obj = factory.make(64)
        collector.allocate(obj)
        for _ in range(16):
            collector.collect_nursery([obj])
        assert collector.should_collect_full()

    def test_escalates_when_free_space_low(self):
        # Fill the heap with live data so nursery yield stays tiny.
        collector, factory = make(n_blocks=2, generational=True)
        keep = []
        while True:
            obj = factory.make(2000)
            if not collector.allocate(obj):
                break
            keep.append(obj)
        collector.collect(keep)
        # A nursery ran and found nothing; policy escalated to full.
        assert collector.stats.full_collections >= 1


class TestCollectBeforePerfect:
    def fill_imperfect(self, collector, factory, roots):
        """Exhaust contiguous space so a medium must overflow."""
        rng = random.Random(0)
        while True:
            obj = factory.make(rng.choice([40, 80]))
            if not collector.allocate(obj):
                break
            if rng.random() < 0.5:
                roots.append(obj)

    def test_default_defers_perfect_until_after_gc(self):
        failure_map = {
            page: set(range(0, 64, 3)) for page in range(2 * G.pages_per_block)
        }
        collector, factory = make(
            n_blocks=4, failure_map=failure_map, generational=True,
            collect_before_perfect=True,
        )
        roots = []
        self.fill_imperfect(collector, factory, roots)
        medium = factory.make(4000)
        assert not collector.allocate(medium)  # must collect first
        before = collector.stats.perfect_block_requests
        collector.collect_full(roots)
        collector.allocate(medium, after_gc=True)
        assert collector.stats.perfect_block_requests >= before

    def test_ablation_serves_perfect_immediately(self):
        failure_map = {
            page: set(range(0, 64, 2)) for page in range(4 * G.pages_per_block)
        }
        collector, factory = make(
            n_blocks=4, failure_map=failure_map, generational=True,
            collect_before_perfect=False,
        )
        roots = []
        self.fill_imperfect(collector, factory, roots)
        # Half of every page failed: an 8 KB-run medium cannot fit in
        # line space, and without the protocol gate the allocator goes
        # straight to the perfect/borrow path on the first attempt.
        medium = factory.make(7500)
        placed = collector.allocate(medium)
        assert collector.stats.perfect_block_requests >= 1 or not placed


class TestCensus:
    def test_census_shape(self):
        collector, factory = make()
        collector.allocate(factory.make(64))
        collector.allocate(factory.make(20_000))
        census = collector.heap_census()
        assert census["blocks"] >= 1
        assert census["los_objects"] == 1
        assert census["free_pages"] >= 0
        assert set(census) == {
            "blocks", "recycled", "los_objects", "free_pages",
            "failed_lines", "free_lines",
        }
