"""Tests for the debit-credit perfect-page accounting."""

import pytest

from repro.faults.accounting import PerfectPageAccountant


class TestDebitCredit:
    def test_perfect_hit_creates_no_debt(self):
        acct = PerfectPageAccountant()
        acct.record_perfect_hit()
        assert acct.debt == 0
        assert acct.total_perfect_demand == 1
        assert acct.satisfied_from_pcm == 1

    def test_borrow_creates_debt_and_penalty(self):
        acct = PerfectPageAccountant()
        acct.borrow()
        assert acct.debt == 1
        assert acct.space_penalty_pages == 1
        assert acct.borrowed == 1

    def test_relaxed_keeps_page_without_debt(self):
        acct = PerfectPageAccountant()
        assert acct.offer_perfect_to_relaxed()
        assert acct.repaid == 0

    def test_relaxed_surrenders_page_to_repay(self):
        acct = PerfectPageAccountant()
        acct.borrow()
        assert not acct.offer_perfect_to_relaxed()
        assert acct.debt == 0
        assert acct.repaid == 1
        # Next offer is keepable again.
        assert acct.offer_perfect_to_relaxed()

    def test_peak_debt_tracked(self):
        acct = PerfectPageAccountant()
        for _ in range(3):
            acct.borrow()
        acct.offer_perfect_to_relaxed()
        acct.borrow()
        assert acct.peak_debt == 3
        assert acct.debt == 3

    def test_bulk_counts(self):
        acct = PerfectPageAccountant()
        acct.record_perfect_hit(4)
        acct.borrow(2)
        assert acct.total_perfect_demand == 6
        assert acct.debt == 2

    def test_counts_must_be_positive(self):
        acct = PerfectPageAccountant()
        with pytest.raises(ValueError):
            acct.record_perfect_hit(0)
        with pytest.raises(ValueError):
            acct.borrow(0)

    def test_demand_log_checkpoints(self):
        acct = PerfectPageAccountant()
        acct.record_perfect_hit()
        acct.checkpoint_demand()
        acct.borrow()
        acct.checkpoint_demand()
        assert acct.demand_log == [1, 2]

    def test_summary_shape(self):
        acct = PerfectPageAccountant()
        acct.borrow()
        summary = acct.summary()
        assert summary["perfect_demand"] == 1
        assert summary["borrowed"] == 1
        assert summary["outstanding_debt"] == 1
        assert set(summary) == {
            "perfect_demand",
            "satisfied_from_pcm",
            "borrowed",
            "repaid",
            "outstanding_debt",
            "peak_debt",
        }
