"""Analytic checks of the paper's false-failure arithmetic (section 6.2).

With uniformly failed 64 B PCM lines at rate f, the probability that a
256 B Immix line is poisoned is 1 - (1 - f)^4. At f = 10 % that is
~34.4 % — which is why compensation (x1.11 raw memory) cannot rescue a
256 B-line heap, and why figure 6(b) punishes large Immix lines.
"""

import pytest

from repro.faults.generator import uniform_map
from repro.hardware.geometry import Geometry

G256 = Geometry(immix_line=256)
G128 = Geometry(immix_line=128)
G64 = Geometry(immix_line=64)

N_LINES = 400_000  # 25 MB of PCM: enough for tight tolerances


@pytest.mark.parametrize("rate", [0.10, 0.25, 0.50])
def test_immix_line_poisoning_matches_analytical(rate):
    fmap = uniform_map(N_LINES, rate, seed=11)
    for geometry, pcm_per_immix in ((G256, 4), (G128, 2), (G64, 1)):
        poisoned = len(fmap.immix_line_view(geometry))
        total = N_LINES // pcm_per_immix
        expected = 1.0 - (1.0 - rate) ** pcm_per_immix
        assert poisoned / total == pytest.approx(expected, abs=0.01), (
            f"line={geometry.immix_line} rate={rate}"
        )


def test_paper_example_10_percent_256B():
    # The specific numbers behind section 6.2's discussion.
    expected = 1.0 - 0.9**4
    assert expected == pytest.approx(0.3439, abs=1e-4)
    fmap = uniform_map(N_LINES, 0.10, seed=3)
    measured = len(fmap.immix_line_view(G256)) / (N_LINES // 4)
    assert measured == pytest.approx(expected, abs=0.01)


def test_compensation_cannot_cover_false_failures():
    # Compensation restores raw failed bytes (f), but the usable
    # fraction of a 256 B-line heap is (1-f)^4 / (1-f) of the intended
    # heap — strictly less than 1 for any f in (0, 1).
    for rate in (0.05, 0.10, 0.25):
        usable_fraction = (1.0 - rate) ** 4 / (1.0 - rate)
        assert usable_fraction < 1.0
    # At 10%: only ~73% of the intended heap remains usable, the source
    # of figure 5's residual gap after compensation.
    assert (0.9**4) / 0.9 == pytest.approx(0.729, abs=1e-3)


def test_page_perfection_probability():
    # P(4 KB page perfect) = (1-f)^64: ~0.12% at 10% failures — perfect
    # PCM pages essentially vanish, driving figure 9(b)'s demand curves.
    fmap = uniform_map(N_LINES, 0.10, seed=5)
    perfect = fmap.perfect_page_count(G256)
    total_pages = N_LINES // G256.lines_per_page
    expected = 0.9**64
    assert perfect / total_pages == pytest.approx(expected, abs=0.004)


def test_clustering_restores_perfect_pages():
    from repro.faults.generator import apply_hardware_clustering

    g2 = Geometry(region_pages=2)
    fmap = uniform_map(N_LINES, 0.10, seed=5)
    clustered = apply_hardware_clustering(fmap, g2)
    # With 2-page clustering at 10%, nearly every region packs its
    # ~13 failures into one page, leaving the other perfect: the
    # perfect-page fraction jumps from ~0.1% to ~50%.
    fraction = clustered.perfect_page_count(g2) / (N_LINES // g2.lines_per_page)
    assert fraction > 0.45
