"""Tests for failure-map generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.faults.generator import (
    PAPER_FAILURE_RATES,
    FailureModel,
    apply_hardware_clustering,
    clustered_map,
    uniform_map,
)
from repro.faults.maps import FailureMap
from repro.hardware.geometry import Geometry

G1 = Geometry(region_pages=1)
G2 = Geometry(region_pages=2)


class TestUniform:
    def test_rate_zero_fails_nothing(self):
        assert uniform_map(10_000, 0.0).failed_count == 0

    def test_rate_one_fails_everything(self):
        assert uniform_map(100, 1.0).failed_count == 100

    def test_rate_respected_within_tolerance(self):
        fmap = uniform_map(200_000, 0.25, seed=1)
        assert fmap.failure_rate == pytest.approx(0.25, abs=0.01)

    def test_deterministic_per_seed(self):
        assert uniform_map(1000, 0.3, seed=5) == uniform_map(1000, 0.3, seed=5)
        assert uniform_map(1000, 0.3, seed=5) != uniform_map(1000, 0.3, seed=6)

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigError):
            uniform_map(10, 1.5)
        with pytest.raises(ConfigError):
            uniform_map(10, -0.1)


class TestClusteredLimitStudy:
    def test_failures_come_in_aligned_runs(self):
        # 512 B clusters = 8 lines.
        fmap = clustered_map(10_000, 0.25, 512, G1, seed=3)
        failed = fmap.failed_lines
        clusters = {line // 8 for line in failed}
        for cluster in clusters:
            assert all(cluster * 8 + i in failed for i in range(8))

    def test_per_line_probability_preserved(self):
        # Section 6.4: "the probability of any given line having failed
        # remains p" even though gaps are at least 2^N wide.
        fmap = clustered_map(400_000, 0.25, 1024, G1, seed=7)
        assert fmap.failure_rate == pytest.approx(0.25, abs=0.02)

    def test_line_sized_cluster_equals_uniform(self):
        assert clustered_map(5000, 0.3, 64, G1, seed=9) == uniform_map(5000, 0.3, seed=9)

    def test_non_power_of_two_cluster_rejected(self):
        with pytest.raises(ConfigError):
            clustered_map(100, 0.1, 192, G1)

    def test_trailing_partial_cluster_clamped(self):
        fmap = clustered_map(10, 1.0, 512, G1)
        assert fmap.failed_count == 10


class TestHardwareClustering:
    def test_failures_move_to_region_edges(self):
        n = 4 * G1.lines_per_region
        fmap = FailureMap(n, [10, 50, G1.lines_per_region + 30])
        clustered = apply_hardware_clustering(fmap, G1)
        assert clustered.failed_lines == frozenset(
            {0, 1, 2 * G1.lines_per_region - 1}
        )

    def test_two_page_regions_leave_perfect_pages(self):
        n = 2 * G2.lines_per_region
        # Scatter failures across all four pages, < 1 page per region.
        fmap = FailureMap(n, list(range(0, n, 5)))
        clustered = apply_hardware_clustering(fmap, G2)
        perfect = clustered.perfect_page_count(G2)
        assert perfect >= 2  # each region concentrates into one page

    def test_counts_preserved(self):
        fmap = uniform_map(10_000, 0.2, seed=11)
        # Round up to whole regions to avoid clamping effects.
        clustered = apply_hardware_clustering(fmap, G2)
        assert clustered.failed_count == fmap.failed_count


class TestFailureModel:
    def test_zero_rate_builds_empty_map(self):
        model = FailureModel(rate=0.0)
        assert model.build(1000, G2).failed_count == 0

    def test_describe_mentions_configuration(self):
        model = FailureModel(rate=0.5, hw_region_pages=2)
        text = model.describe()
        assert "50%" in text and "2-page" in text
        assert FailureModel().describe() == "no failures"

    def test_hw_clustering_overrides_geometry_region(self):
        model = FailureModel(rate=0.25, hw_region_pages=1)
        fmap = model.build(4 * G2.lines_per_region, G2, seed=2)
        # With 1-page clustering, each page's failures pack at one edge:
        # every failed run must fit within a single page.
        per_page = G2.lines_per_page
        for page in range(8):
            offsets = sorted(
                line - page * per_page
                for line in fmap.failed_lines
                if page * per_page <= line < (page + 1) * per_page
            )
            if not offsets:
                continue
            # Contiguous run anchored at one end of the page.
            assert offsets == list(range(offsets[0], offsets[0] + len(offsets)))
            assert offsets[0] == 0 or offsets[-1] == per_page - 1

    def test_cluster_bytes_mode(self):
        model = FailureModel(rate=0.25, cluster_bytes=512)
        fmap = model.build(10_000, G1, seed=3)
        assert fmap == clustered_map(10_000, 0.25, 512, G1, seed=3)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FailureModel(rate=2.0)
        with pytest.raises(ConfigError):
            FailureModel(hw_region_pages=-1)

    def test_paper_rates_constant(self):
        assert PAPER_FAILURE_RATES == (0.0, 0.10, 0.25, 0.50)

    @settings(max_examples=25)
    @given(
        st.sampled_from([0.0, 0.1, 0.25, 0.5]),
        st.sampled_from([0, 1, 2]),
        st.integers(min_value=0, max_value=3),
    )
    def test_build_is_deterministic(self, rate, hw_pages, seed):
        model = FailureModel(rate=rate, hw_region_pages=hw_pages)
        a = model.build(2048, G2, seed)
        b = model.build(2048, G2, seed)
        assert a == b
