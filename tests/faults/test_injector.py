"""Tests for the fault-injection shim."""

import pytest

from repro.faults.generator import FailureModel
from repro.faults.injector import FaultInjector
from repro.hardware.geometry import Geometry

G = Geometry()


class TestCompensation:
    def test_paper_formula(self):
        # h / (1 - f), rounded up to pages (section 6.2).
        raw = FaultInjector.compensated_bytes(100 * G.page, 0.5, G.page)
        assert raw == 200 * G.page

    def test_zero_rate_identity(self):
        assert FaultInjector.compensated_bytes(10 * G.page, 0.0, G.page) == 10 * G.page

    def test_rounds_up_to_page(self):
        raw = FaultInjector.compensated_bytes(10 * G.page, 0.1, G.page)
        assert raw % G.page == 0
        assert raw >= 10 * G.page / 0.9

    def test_full_failure_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector.compensated_bytes(G.page, 1.0, G.page)


class TestInjection:
    def test_injected_rate_visible_through_os(self):
        model = FailureModel(rate=0.25)
        injector = FaultInjector(model, pcm_bytes=64 * G.region, seed=3)
        table = injector.os.failure_table
        rate = table.failed_line_count() / injector.pcm.n_lines
        assert rate == pytest.approx(0.25, abs=0.03)

    def test_zero_rate_injects_nothing(self):
        injector = FaultInjector(FailureModel(), pcm_bytes=4 * G.region)
        assert injector.static_map.failed_count == 0
        assert injector.os.pools.free_imperfect == 0

    def test_hw_clustering_enables_module_clustering(self):
        injector = FaultInjector(
            FailureModel(rate=0.1, hw_region_pages=2), pcm_bytes=8 * G.region
        )
        assert injector.pcm.clustering is not None
        # Every failure is packed at a region edge.
        for region in range(8):
            lines = [
                line - region * G.lines_per_region
                for line in injector.pcm.failed_logical_lines()
                if region * G.lines_per_region <= line < (region + 1) * G.lines_per_region
            ]
            if lines:
                run = sorted(lines)
                assert run == list(range(run[0], run[0] + len(run)))

    def test_failure_map_for_pages_rebases(self):
        model = FailureModel(rate=0.5)
        injector = FaultInjector(model, pcm_bytes=4 * G.region, seed=1)
        sub = injector.failure_map_for_pages(2, 2)
        assert sub.n_lines == 2 * G.lines_per_page
        expected = injector.static_map.subset(2 * G.lines_per_page, 2 * G.lines_per_page)
        assert sub == expected

    def test_describe_mentions_seed(self):
        injector = FaultInjector(FailureModel(rate=0.1), pcm_bytes=4 * G.region, seed=9)
        assert "seed 9" in injector.describe()

    def test_seeds_differ(self):
        maps = {
            FaultInjector(
                FailureModel(rate=0.3), pcm_bytes=4 * G.region, seed=s
            ).static_map
            for s in range(3)
        }
        assert len(maps) == 3
