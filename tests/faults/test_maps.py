"""Tests for the failure-map abstraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressError
from repro.faults.maps import FailureMap, coarsen
from repro.hardware.geometry import Geometry

G = Geometry()  # 64 B PCM lines, 256 B Immix lines, 4 KB pages


class TestBasics:
    def test_empty_map(self):
        fmap = FailureMap(100)
        assert fmap.failed_count == 0
        assert fmap.failure_rate == 0.0
        assert not fmap.is_failed(0)

    def test_failed_lines_recorded(self):
        fmap = FailureMap(100, [3, 7])
        assert fmap.is_failed(3) and fmap.is_failed(7)
        assert not fmap.is_failed(4)
        assert fmap.failure_rate == pytest.approx(0.02)

    def test_out_of_range_rejected(self):
        with pytest.raises(AddressError):
            FailureMap(10, [10])

    def test_iteration_sorted(self):
        assert list(FailureMap(10, [9, 1, 5])) == [1, 5, 9]

    def test_equality_and_hash(self):
        a = FailureMap(10, [1, 2])
        b = FailureMap(10, [2, 1])
        assert a == b and hash(a) == hash(b)
        assert a != FailureMap(11, [1, 2])

    def test_range_queries(self):
        fmap = FailureMap(100, [10, 20, 30])
        assert fmap.failed_in_range(10, 11) == {10, 20}
        assert fmap.any_failed_in_range(25, 10)
        assert not fmap.any_failed_in_range(31, 50)


class TestOsViews:
    def test_page_bitmap_matches_paper_layout(self):
        # Line offsets 0 and 63 of page 1.
        lines = [G.lines_per_page, 2 * G.lines_per_page - 1]
        fmap = FailureMap(4 * G.lines_per_page, lines)
        bitmap = fmap.page_bitmap(1, G)
        assert bitmap == (1 | (1 << 63))
        assert fmap.page_bitmap(0, G) == 0

    def test_perfect_page_detection(self):
        fmap = FailureMap(4 * G.lines_per_page, [G.lines_per_page + 3])
        assert fmap.page_is_perfect(0, G)
        assert not fmap.page_is_perfect(1, G)
        assert fmap.perfect_page_count(G) == 3


class TestFalseFailures:
    def test_single_pcm_line_poisons_whole_immix_line(self):
        fmap = FailureMap(64, [5])
        # 256 B Immix lines = 4 PCM lines; line 5 sits in Immix line 1.
        assert fmap.immix_line_view(G) == {1}

    def test_false_failure_overhead_paper_example(self):
        # Section 6.2: one failed 64 B line overstates failure by 192 B
        # with 256 B Immix lines.
        fmap = FailureMap(64, [5])
        assert fmap.false_failure_overhead(G) == 192

    def test_no_false_failures_at_matching_granularity(self):
        g64 = Geometry(immix_line=64)
        fmap = FailureMap(64, [5, 9])
        assert fmap.false_failure_overhead(g64) == 0

    @given(st.sets(st.integers(min_value=0, max_value=255), max_size=64))
    def test_immix_view_covers_all_failures(self, failed):
        fmap = FailureMap(256, failed)
        view = fmap.immix_line_view(G)
        for line in failed:
            assert line // 4 in view


class TestTransforms:
    def test_union(self):
        a = FailureMap(10, [1])
        b = FailureMap(10, [2])
        assert a.union(b) == FailureMap(10, [1, 2])
        with pytest.raises(ValueError):
            a.union(FailureMap(11))

    def test_with_failure(self):
        fmap = FailureMap(10, [1]).with_failure(3)
        assert fmap.failed_lines == frozenset({1, 3})

    def test_subset_rebases(self):
        fmap = FailureMap(100, [10, 15, 50])
        sub = fmap.subset(10, 10)
        assert sub.n_lines == 10
        assert sub.failed_lines == frozenset({0, 5})

    def test_subset_bounds_checked(self):
        with pytest.raises(AddressError):
            FailureMap(10).subset(5, 6)


class TestCoarsen:
    def test_groups_fail_wholly(self):
        fmap = FailureMap(16, [5])
        coarse = coarsen(fmap, 4)
        assert coarse.failed_lines == frozenset({4, 5, 6, 7})

    def test_identity_at_granularity_one(self):
        fmap = FailureMap(16, [3, 9])
        assert coarsen(fmap, 1) == fmap

    def test_trailing_partial_group_clamped(self):
        fmap = FailureMap(6, [5])
        coarse = coarsen(fmap, 4)
        assert coarse.failed_lines == frozenset({4, 5})

    def test_validation(self):
        with pytest.raises(ValueError):
            coarsen(FailureMap(4), 0)

    @given(
        st.sets(st.integers(min_value=0, max_value=63), max_size=20),
        st.sampled_from([1, 2, 4, 8]),
    )
    def test_coarsening_only_grows(self, failed, granularity):
        fmap = FailureMap(64, failed)
        coarse = coarsen(fmap, granularity)
        assert fmap.failed_lines <= coarse.failed_lines
        assert coarse.failed_count % min(granularity, 64) == 0 or granularity == 1
