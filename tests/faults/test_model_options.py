"""Tests for FailureModel's secondary options (granularity, metadata)."""

import pytest

from repro.errors import ConfigError
from repro.faults.generator import FailureModel
from repro.hardware.geometry import Geometry

G = Geometry()


class TestMapGranularity:
    def test_coarse_map_fails_whole_groups(self):
        model = FailureModel(rate=0.05, map_granularity_lines=4)
        fmap = model.build(4096, G, seed=1)
        assert fmap.failed_count % 4 == 0
        for line in fmap.failed_lines:
            group_start = line // 4 * 4
            assert all(fmap.is_failed(group_start + i) for i in range(4))

    def test_granularity_one_is_identity(self):
        fine = FailureModel(rate=0.10).build(4096, G, seed=2)
        same = FailureModel(rate=0.10, map_granularity_lines=1).build(4096, G, seed=2)
        assert fine == same

    def test_coarser_maps_lose_more_memory(self):
        rates = []
        for granularity in (1, 4, 16, 64):
            model = FailureModel(rate=0.10, map_granularity_lines=granularity)
            rates.append(model.build(64_000, G, seed=3).failure_rate)
        assert rates == sorted(rates)
        # Page-granularity (64 lines) at 10% approaches total loss:
        # P(page hit) = 1 - 0.9^64 ~ 99.9%.
        assert rates[-1] > 0.99

    def test_invalid_granularity_rejected(self):
        with pytest.raises(ConfigError):
            FailureModel(map_granularity_lines=0)

    def test_composes_with_clustering(self):
        model = FailureModel(rate=0.10, hw_region_pages=2, map_granularity_lines=4)
        fmap = model.build(4 * G.lines_per_region, G, seed=4)
        # Clustering packs failures at region edges; the coarse map can
        # only extend those runs, never scatter them.
        per_region = G.lines_per_region
        for region in range(4):
            offsets = sorted(
                line - region * per_region
                for line in fmap.failed_lines
                if region * per_region <= line < (region + 1) * per_region
            )
            if offsets:
                assert offsets == list(range(offsets[0], offsets[0] + len(offsets)))


class TestMetadataCharging:
    def test_metadata_lines_charged(self):
        with_meta = FailureModel(rate=0.10, hw_region_pages=2, include_metadata=True)
        without = FailureModel(rate=0.10, hw_region_pages=2)
        n = 8 * G.lines_per_region
        charged = with_meta.build(n, G, seed=5).failed_count
        plain = without.build(n, G, seed=5).failed_count
        # Two redirection-map lines per touched region (paper: 889 bits).
        assert charged > plain
        assert charged - plain <= 2 * 8

    def test_describe_is_stable(self):
        model = FailureModel(rate=0.25, cluster_bytes=512, hw_region_pages=1)
        text = model.describe()
        assert "25%" in text and "512B" in text and "1-page" in text
