"""Tests for failure-clustering hardware (redirection maps)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.clustering import (
    ClusteringController,
    RedirectionMap,
    cluster_failure_map,
    region_direction,
)
from repro.hardware.geometry import Geometry


class TestRedirectionMap:
    def test_starts_as_identity(self):
        rmap = RedirectionMap(8)
        assert [rmap.translate(i) for i in range(8)] == list(range(8))
        assert not rmap.installed
        assert rmap.failed_count == 0

    def test_single_failure_clusters_to_start(self):
        rmap = RedirectionMap(8, direction="start")
        reported = rmap.record_failure(5)
        assert reported == 0
        assert rmap.installed
        assert list(rmap.failed_logical_offsets()) == [0]
        # The broken physical line 5 now backs logical offset 0.
        assert rmap.translate(0) == 5
        assert rmap.translate(5) == 0

    def test_single_failure_clusters_to_end(self):
        rmap = RedirectionMap(8, direction="end")
        reported = rmap.record_failure(2)
        assert reported == 7
        assert list(rmap.failed_logical_offsets()) == [7]
        assert rmap.translate(7) == 2

    def test_failed_zone_grows_contiguously(self):
        rmap = RedirectionMap(8, direction="start")
        for offset in (6, 3, 5):
            rmap.record_failure(offset)
        assert list(rmap.failed_logical_offsets()) == [0, 1, 2]
        assert list(rmap.working_span()) == [3, 4, 5, 6, 7]

    def test_failure_at_boundary_slot_itself(self):
        rmap = RedirectionMap(4, direction="start")
        assert rmap.record_failure(0) == 0
        assert rmap.translate(0) == 0

    def test_cannot_refail_failed_zone(self):
        rmap = RedirectionMap(4, direction="start")
        rmap.record_failure(2)
        with pytest.raises(ValueError):
            rmap.record_failure(0)

    def test_all_lines_can_fail(self):
        rmap = RedirectionMap(4, direction="end")
        for _ in range(4):
            rmap.record_failure(rmap.working_span()[0])
        assert rmap.failed_count == 4
        with pytest.raises(ValueError):
            rmap.record_failure(0)

    @given(st.data())
    def test_mapping_stays_a_permutation(self, data):
        n = 16
        rmap = RedirectionMap(n, direction=data.draw(st.sampled_from(["start", "end"])))
        failures = data.draw(st.integers(min_value=0, max_value=n))
        for _ in range(failures):
            span = list(rmap.working_span())
            if not span:
                break
            rmap.record_failure(data.draw(st.sampled_from(span)))
        assert sorted(rmap.logical_to_physical) == list(range(n))

    def test_validation(self):
        with pytest.raises(ValueError):
            RedirectionMap(1)
        with pytest.raises(ValueError):
            RedirectionMap(8, direction="sideways")


class TestClusteringController:
    def test_parity_directions(self):
        assert region_direction(0) == "start"
        assert region_direction(1) == "end"
        assert region_direction(2) == "start"

    def test_translate_identity_without_failures(self):
        controller = ClusteringController(Geometry())
        assert controller.translate_line(12345) == 12345
        assert controller.installed_map_count() == 0

    def test_failure_reported_at_region_edge(self):
        g = Geometry()
        controller = ClusteringController(g)
        # A failure in region 0 (even, clusters to start).
        line = 50
        reported = controller.record_failure(line)
        assert reported == 0
        # In region 1 (odd, clusters to end).
        line = g.lines_per_region + 10
        reported = controller.record_failure(line)
        assert reported == 2 * g.lines_per_region - 1

    def test_translate_follows_swap(self):
        g = Geometry()
        controller = ClusteringController(g)
        controller.record_failure(50)
        # Logical line 0 is now backed by broken physical line 50.
        assert controller.translate_line(0) == 50
        assert controller.translate_line(50) == 0
        assert controller.installed_map_count() == 1


class TestClusterFailureMap:
    def test_counts_preserved_per_region(self):
        g = Geometry(region_pages=1)
        failed = {3, 17, 40, 64 + 5, 64 + 60}
        logical = cluster_failure_map(failed, g)
        per_region = g.lines_per_region
        region0 = {line for line in logical if line < per_region}
        region1 = {line for line in logical if line >= per_region}
        assert len(region0) == 3 and len(region1) == 2

    def test_even_region_packs_at_start(self):
        g = Geometry(region_pages=1)
        logical = cluster_failure_map({10, 20, 30}, g)
        assert logical == {0, 1, 2}

    def test_odd_region_packs_at_end(self):
        g = Geometry(region_pages=1)
        n = g.lines_per_region
        logical = cluster_failure_map({n + 10, n + 20}, g)
        assert logical == {2 * n - 2, 2 * n - 1}

    def test_two_page_region_keeps_second_page_perfect(self):
        g = Geometry(region_pages=2)
        # 30 failures spread over both pages of region 0 (128 lines).
        failed = set(range(0, 120, 4))
        logical = cluster_failure_map(failed, g)
        assert logical == set(range(30))
        # Page 1 of the region (lines 64..127) is now logically perfect.
        assert all(line < g.lines_per_page for line in logical)

    def test_metadata_lines_charged_when_requested(self):
        g = Geometry(region_pages=2)
        logical = cluster_failure_map({5}, g, include_metadata=True)
        # 1 failure + 2 redirection-map lines.
        assert logical == {0, 1, 2}

    def test_metadata_never_exceeds_region(self):
        g = Geometry(region_pages=1)
        n = g.lines_per_region
        logical = cluster_failure_map(set(range(n)), g, include_metadata=True)
        assert logical == set(range(n))

    def test_empty_input(self):
        assert cluster_failure_map(set(), Geometry()) == set()

    @given(st.sets(st.integers(min_value=0, max_value=1023), max_size=200))
    def test_total_count_preserved_without_metadata(self, failed):
        g = Geometry(region_pages=1)
        logical = cluster_failure_map(failed, g)
        # Counts per region match, hence totals match (regions can't overflow
        # because inputs are within existing regions).
        assert len(logical) == len(failed)
