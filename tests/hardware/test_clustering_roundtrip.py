"""Static vs dynamic clustering agreement (round-trip property).

The fault injector's static transform (:func:`cluster_failure_map`)
claims to produce exactly the logical failure view that the hardware
would reach by routing the same failures, one at a time and in any
order, through its per-region :class:`RedirectionMap`. These tests
replay physical failure sets through the dynamic path and require the
two views to be identical — including the boundary cases (a failure
landing on the boundary slot itself, a fully exhausted region).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.clustering import (
    ClusteringController,
    RedirectionMap,
    cluster_failure_map,
    region_direction,
)
from repro.hardware.geometry import Geometry


def replay_dynamic(physical_failures, geometry):
    """Feed physical line failures through the redirection hardware.

    A physical line fails at whatever *logical* offset currently maps to
    it, exactly as a wearing module would observe it; returns the set of
    global logical lines reported failed.
    """
    controller = ClusteringController(geometry)
    per_region = geometry.lines_per_region
    logical_failed = set()
    for line in physical_failures:
        region, physical_offset = divmod(line, per_region)
        rmap = controller.map_for_region(region)
        logical_offset = rmap.logical_to_physical.index(physical_offset)
        reported = controller.record_failure(region * per_region + logical_offset)
        logical_failed.add(reported)
    return logical_failed


class TestRoundTrip:
    @pytest.mark.parametrize("region_pages", [1, 2])
    def test_both_parities_agree(self, region_pages):
        g = Geometry(region_pages=region_pages)
        n = g.lines_per_region
        # Failures scattered over region 0 (even, packs to start) and
        # region 1 (odd, packs to end).
        physical = {3, 11, n - 1, n, n + 7, 2 * n - 1}
        assert replay_dynamic(sorted(physical), g) == cluster_failure_map(physical, g)

    def test_failure_on_boundary_slot(self):
        g = Geometry(region_pages=1)
        # Physical line 0 *is* the even region's boundary slot: the swap
        # is a self-swap and the reported line is the line itself.
        assert replay_dynamic([0], g) == cluster_failure_map({0}, g) == {0}

    def test_exhausted_region_rejects_further_failures(self):
        g = Geometry(region_pages=1)
        n = g.lines_per_region
        replayed = replay_dynamic(range(n), g)
        assert replayed == cluster_failure_map(set(range(n)), g) == set(range(n))
        rmap = ClusteringController(g).map_for_region(0)
        for _ in range(n):
            rmap.record_failure(rmap.working_span()[0])
        with pytest.raises(ValueError):
            rmap.record_failure(0)

    def test_refailing_the_failed_zone_rejected(self):
        rmap = RedirectionMap(8, direction="start")
        rmap.record_failure(5)
        with pytest.raises(ValueError):
            rmap.record_failure(0)  # logical 0 is inside the failed zone

    @given(st.data())
    def test_any_order_matches_static_transform(self, data):
        region_pages = data.draw(st.sampled_from([1, 2]))
        g = Geometry(region_pages=region_pages)
        n = 2 * g.lines_per_region  # two regions, one of each parity
        physical = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), max_size=48)
        )
        order = data.draw(st.permutations(sorted(physical)))
        assert replay_dynamic(order, g) == cluster_failure_map(physical, g)

    @given(st.sets(st.integers(min_value=0, max_value=255), max_size=64))
    def test_dynamic_maps_stay_permutations(self, physical):
        g = Geometry(region_pages=1)
        controller = ClusteringController(g)
        per_region = g.lines_per_region
        for line in sorted(physical):
            region, physical_offset = divmod(line, per_region)
            rmap = controller.map_for_region(region)
            controller.record_failure(
                region * per_region + rmap.logical_to_physical.index(physical_offset)
            )
        for region, rmap in controller._maps.items():
            assert sorted(rmap.logical_to_physical) == list(range(rmap.n_lines))
            assert rmap.direction == region_direction(region)
