"""Tests for the perfect DRAM module."""

import pytest

from repro.errors import AddressError, OutOfMemoryError
from repro.hardware.dram import DramModule
from repro.hardware.geometry import Geometry

G = Geometry()


class TestDramModule:
    def test_size_must_be_page_multiple(self):
        with pytest.raises(AddressError):
            DramModule(G.page + 1)
        with pytest.raises(AddressError):
            DramModule(0)

    def test_allocation_and_free(self):
        dram = DramModule(4 * G.page)
        assert dram.n_pages == 4
        page = dram.allocate_page()
        assert dram.allocated_pages == 1
        assert dram.free_pages == 3
        dram.free_page(page)
        assert dram.free_pages == 4

    def test_exhaustion(self):
        dram = DramModule(2 * G.page)
        dram.allocate_page()
        dram.allocate_page()
        with pytest.raises(OutOfMemoryError):
            dram.allocate_page()

    def test_double_free_rejected(self):
        dram = DramModule(G.page)
        page = dram.allocate_page()
        dram.free_page(page)
        with pytest.raises(AddressError):
            dram.free_page(page)

    def test_peak_tracking(self):
        dram = DramModule(4 * G.page)
        pages = [dram.allocate_page() for _ in range(3)]
        for page in pages:
            dram.free_page(page)
        dram.allocate_page()
        assert dram.peak_allocated == 3

    def test_pages_are_distinct(self):
        dram = DramModule(4 * G.page)
        pages = {dram.allocate_page() for _ in range(4)}
        assert len(pages) == 4
