"""Tests for the ECP-style per-line error correction model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.ecc import DEFAULT_ENTRIES_PER_LINE, EccDomain, LineEcc


class TestLineEcc:
    def test_new_line_has_full_budget(self):
        line = LineEcc()
        assert line.capacity == DEFAULT_ENTRIES_PER_LINE
        assert line.remaining == DEFAULT_ENTRIES_PER_LINE
        assert not line.exhausted

    def test_budget_absorbs_exactly_capacity_distinct_bits(self):
        line = LineEcc(capacity=3)
        assert line.record_stuck_bit(0)
        assert line.record_stuck_bit(1)
        assert line.record_stuck_bit(2)
        assert not line.exhausted
        assert not line.record_stuck_bit(3)
        assert line.exhausted

    def test_repeated_bit_consumes_nothing(self):
        line = LineEcc(capacity=1)
        assert line.record_stuck_bit(5)
        assert line.record_stuck_bit(5)
        assert line.record_stuck_bit(5)
        assert line.remaining == 0
        assert not line.exhausted

    def test_exhausted_line_stays_failed(self):
        line = LineEcc(capacity=0)
        assert not line.record_stuck_bit(0)
        assert not line.record_stuck_bit(99)
        assert line.exhausted

    def test_reclaimable_only_after_exhaustion(self):
        line = LineEcc(capacity=2)
        line.record_stuck_bit(0)
        assert line.reclaimable_entries() == 0
        line.record_stuck_bit(1)
        line.record_stuck_bit(2)
        assert line.exhausted
        assert line.reclaimable_entries() == 2

    @given(st.lists(st.integers(min_value=0, max_value=511), max_size=40))
    def test_exhaustion_iff_distinct_bits_exceed_capacity(self, bits):
        line = LineEcc(capacity=4)
        for bit in bits:
            line.record_stuck_bit(bit)
        assert line.exhausted == (len(set(bits)) > 4)


class TestEccDomain:
    def test_lazy_materialization(self):
        domain = EccDomain()
        assert domain.touched_line_count() == 0
        domain.record_stuck_bit(100, 0)
        assert domain.touched_line_count() == 1
        assert not domain.is_exhausted(100)
        assert not domain.is_exhausted(999)

    def test_exhausted_lines_sorted(self):
        domain = EccDomain(entries_per_line=0)
        for line in (30, 10, 20):
            domain.record_stuck_bit(line, 0)
        assert domain.exhausted_lines() == [10, 20, 30]

    def test_total_reclaimable(self):
        domain = EccDomain(entries_per_line=2)
        for bit in range(3):
            domain.record_stuck_bit(7, bit)
        assert domain.total_reclaimable_entries() == 2

    def test_independent_lines(self):
        domain = EccDomain(entries_per_line=1)
        domain.record_stuck_bit(1, 0)
        domain.record_stuck_bit(1, 1)
        domain.record_stuck_bit(2, 0)
        assert domain.is_exhausted(1)
        assert not domain.is_exhausted(2)
