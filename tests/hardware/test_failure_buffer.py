"""Tests for the hardware failure buffer."""

import pytest

from repro.errors import FailureBufferOverflowError, ProtocolError
from repro.hardware.failure_buffer import FailureBuffer, InterruptKind


def make_buffer(capacity=8, reserve=2):
    interrupts = []
    buffer = FailureBuffer(capacity=capacity, reserve=reserve, interrupt=interrupts.append)
    return buffer, interrupts


class TestAcknowledgeContract:
    def test_acknowledge_releases_and_returns_entry(self):
        buffer, _ = make_buffer()
        buffer.insert(0x40, "payload")
        entry = buffer.acknowledge(0x40)
        assert entry.address == 0x40 and entry.data == "payload"
        assert len(buffer) == 0

    def test_acknowledge_unknown_address_is_protocol_error(self):
        buffer, _ = make_buffer()
        with pytest.raises(ProtocolError):
            buffer.acknowledge(0x40)

    def test_double_acknowledge_is_protocol_error(self):
        buffer, _ = make_buffer()
        buffer.insert(0x40, "payload")
        buffer.acknowledge(0x40)
        with pytest.raises(ProtocolError):
            buffer.acknowledge(0x40)

    def test_acknowledge_unstalls_like_clear(self):
        buffer, interrupts = make_buffer(capacity=4, reserve=2)
        buffer.insert(0x0, "a")
        buffer.insert(0x40, "b")
        assert not buffer.accepting_writes
        buffer.acknowledge(0x0)
        assert buffer.accepting_writes


class TestInsertAndForward:
    def test_insert_raises_write_failure_interrupt(self):
        buffer, interrupts = make_buffer()
        buffer.insert(0x1000, "data")
        assert interrupts == [InterruptKind.WRITE_FAILURE]

    def test_forward_returns_latest_data(self):
        buffer, _ = make_buffer()
        buffer.insert(0x40, "old")
        buffer.insert(0x40, "new")
        assert buffer.forward(0x40) == "new"
        assert len(buffer) == 1

    def test_forward_misses_return_none(self):
        buffer, _ = make_buffer()
        assert buffer.forward(0x80) is None

    def test_fifo_order_of_first_failure(self):
        buffer, _ = make_buffer()
        buffer.insert(1, "a")
        buffer.insert(2, "b")
        buffer.insert(1, "a2")  # re-failure moves to the back
        assert [e.address for e in buffer.pending()] == [2, 1]

    def test_synthetic_entry_flag(self):
        buffer, _ = make_buffer()
        buffer.insert(0, None, synthetic=True)
        assert buffer.pending()[0].synthetic


class TestStallProtocol:
    def test_nearly_full_interrupt_and_stall(self):
        buffer, interrupts = make_buffer(capacity=4, reserve=2)
        buffer.insert(1, None)
        assert buffer.accepting_writes
        buffer.insert(2, None)
        assert not buffer.accepting_writes
        assert InterruptKind.BUFFER_NEARLY_FULL in interrupts

    def test_clear_unstalls(self):
        buffer, _ = make_buffer(capacity=4, reserve=2)
        buffer.insert(1, None)
        buffer.insert(2, None)
        assert not buffer.accepting_writes
        assert buffer.clear(1)
        assert buffer.accepting_writes

    def test_overflow_raises_when_stalled_and_full(self):
        buffer, _ = make_buffer(capacity=2, reserve=1)
        buffer.insert(1, None)
        buffer.insert(2, None)
        with pytest.raises(FailureBufferOverflowError):
            buffer.insert(3, None)

    def test_clear_unknown_address_returns_false(self):
        buffer, _ = make_buffer()
        assert not buffer.clear(0xDEAD)


class TestDrain:
    def test_drain_empties_and_unstalls(self):
        buffer, _ = make_buffer(capacity=4, reserve=2)
        buffer.insert(1, "a")
        buffer.insert(2, "b")
        entries = buffer.drain()
        assert [e.address for e in entries] == [1, 2]
        assert len(buffer) == 0
        assert buffer.accepting_writes

    def test_statistics(self):
        buffer, _ = make_buffer()
        for address in range(5):
            buffer.insert(address, None)
        buffer.drain()
        buffer.insert(9, None)
        assert buffer.total_inserted == 6
        assert buffer.high_water_mark == 5

    def test_contains(self):
        buffer, _ = make_buffer()
        buffer.insert(64, None)
        assert 64 in buffer
        assert 65 not in buffer

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureBuffer(capacity=0)
        with pytest.raises(ValueError):
            FailureBuffer(capacity=4, reserve=4)
