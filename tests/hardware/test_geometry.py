"""Tests for the shared address geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeometryError
from repro.hardware.geometry import PAPER_DEFAULT, Geometry


class TestConstruction:
    def test_paper_default_matches_paper(self):
        g = PAPER_DEFAULT
        assert g.pcm_line == 64
        assert g.page == 4096
        assert g.region_pages == 2
        assert g.immix_line == 256
        assert g.block == 32 * 1024

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(GeometryError):
            Geometry(pcm_line=96)

    def test_rejects_page_not_multiple_of_line(self):
        with pytest.raises(GeometryError):
            Geometry(pcm_line=64, page=64 * 3)

    def test_rejects_immix_line_smaller_than_pcm_line(self):
        with pytest.raises(GeometryError):
            Geometry(pcm_line=128, immix_line=64)

    def test_rejects_zero_region_pages(self):
        with pytest.raises(GeometryError):
            Geometry(region_pages=0)

    def test_rejects_block_not_multiple_of_page(self):
        with pytest.raises(GeometryError):
            Geometry(block=6 * 1024)


class TestDerivedCounts:
    def test_lines_per_page_is_64(self):
        assert PAPER_DEFAULT.lines_per_page == 64

    def test_lines_per_region_matches_paper_default(self):
        # Two 4 KB pages of 64 B lines = 128 lines (paper section 3.1.2).
        assert PAPER_DEFAULT.lines_per_region == 128

    def test_immix_lines_per_block(self):
        assert PAPER_DEFAULT.immix_lines_per_block == 128

    def test_pcm_lines_per_immix_line(self):
        assert PAPER_DEFAULT.pcm_lines_per_immix_line == 4
        assert Geometry(immix_line=64).pcm_lines_per_immix_line == 1

    def test_pages_per_block(self):
        assert PAPER_DEFAULT.pages_per_block == 8


class TestAddressArithmetic:
    def test_line_round_trip(self):
        g = PAPER_DEFAULT
        assert g.line_index(g.line_address(17)) == 17
        assert g.line_index(g.line_address(17) + 63) == 17
        assert g.line_index(g.line_address(17) + 64) == 18

    def test_region_lines_cover_region(self):
        g = PAPER_DEFAULT
        lines = g.region_lines(3)
        assert len(lines) == g.lines_per_region
        assert g.region_index(g.line_address(lines[0])) == 3
        assert g.region_index(g.line_address(lines[-1])) == 3

    def test_page_lines_cover_page(self):
        g = PAPER_DEFAULT
        lines = g.page_lines(5)
        assert len(lines) == 64
        assert g.page_index(g.line_address(lines[0])) == 5

    def test_line_offset_in_region(self):
        g = PAPER_DEFAULT
        assert g.line_offset_in_region(0) == 0
        assert g.line_offset_in_region(g.region + 64) == 1

    @given(st.integers(min_value=0, max_value=2**30))
    def test_line_index_consistent_with_offsets(self, address):
        g = PAPER_DEFAULT
        line = g.line_index(address)
        region = g.region_index(address)
        offset = g.line_offset_in_region(address)
        assert line == region * g.lines_per_region + offset


class TestRedirectionMapMetadata:
    def test_paper_example_889_bits(self):
        # Paper: 2-page region, 128 lines -> 126 redirection entries +
        # 1 boundary pointer, 7 bits each = 889 bits, i.e. two lines.
        g = PAPER_DEFAULT
        assert g.redirection_map_lines() == 2
        assert g.redirection_map_bits() == 889

    def test_one_page_region_fits_one_line(self):
        g = Geometry(region_pages=1)
        # 64 lines, 6-bit entries: (63 + 1) * 6 = 384 bits <= 512.
        assert g.redirection_map_lines() == 1

    def test_describe_mentions_sizes(self):
        text = PAPER_DEFAULT.describe()
        assert "64B" in text and "4KB" in text and "32KB" in text
