"""Tests for the PCM module behavioural model."""

import pytest

from repro.errors import AddressError
from repro.hardware.failure_buffer import InterruptKind
from repro.hardware.geometry import Geometry
from repro.hardware.pcm import EnduranceModel, PcmModule

REGION = Geometry().region


def make_module(**kwargs):
    interrupts = []
    module = PcmModule(
        size_bytes=kwargs.pop("size_bytes", 4 * REGION),
        on_interrupt=interrupts.append,
        **kwargs,
    )
    return module, interrupts


class TestEnduranceModel:
    def test_thresholds_are_stable_per_line(self):
        model = EnduranceModel(seed=7)
        assert model.first_failure_threshold(10) == model.first_failure_threshold(10)

    def test_thresholds_vary_across_lines(self):
        model = EnduranceModel(mean_writes=1000, cv=0.3, seed=7)
        thresholds = {model.first_failure_threshold(i) for i in range(50)}
        assert len(thresholds) > 20

    def test_zero_cv_gives_mean(self):
        model = EnduranceModel(mean_writes=500, cv=0.0)
        assert model.first_failure_threshold(3) == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            EnduranceModel(mean_writes=0)
        with pytest.raises(ValueError):
            EnduranceModel(cv=-1)
        with pytest.raises(ValueError):
            EnduranceModel(followup_fraction=0)


class TestStaticOperation:
    def test_size_must_be_region_multiple(self):
        with pytest.raises(AddressError):
            PcmModule(size_bytes=REGION + 64)

    def test_writes_succeed_without_endurance(self):
        module, interrupts = make_module()
        assert module.write(0, 64)
        assert module.write(REGION, 4096)
        assert interrupts == []
        assert module.failed_logical_lines() == set()

    def test_out_of_range_access_rejected(self):
        module, _ = make_module()
        with pytest.raises(AddressError):
            module.write(module.size_bytes, 1)
        with pytest.raises(AddressError):
            module.read(-1, 1)

    def test_inject_static_failures(self):
        module, _ = make_module()
        module.inject_static_failures([0, 5, 9])
        assert module.failed_logical_lines() == {0, 5, 9}

    def test_inject_rejects_out_of_range_line(self):
        module, _ = make_module()
        with pytest.raises(AddressError):
            module.inject_static_failures([module.n_lines])

    def test_write_to_failed_line_is_parked_not_lost(self):
        module, interrupts = make_module()
        module.inject_static_failures([1])
        assert not module.write(64, 8, data="payload")
        assert module.read(64) == "payload"
        assert InterruptKind.WRITE_FAILURE in interrupts


class TestWearOut:
    def test_line_fails_after_ecc_exhaustion(self):
        module, interrupts = make_module(
            endurance=EnduranceModel(mean_writes=10, cv=0.0, followup_fraction=0.1),
            ecc_entries_per_line=2,
        )
        failed = False
        for _ in range(100):
            if not module.write(0, 1, data="x"):
                failed = True
                break
        assert failed
        assert 0 in module.failed_logical_lines()
        assert module.take_pending_failures() == [(0, 0)]
        assert module.take_pending_failures() == []
        assert InterruptKind.WRITE_FAILURE in interrupts

    def test_zero_ecc_fails_at_first_stuck_bit(self):
        module, _ = make_module(
            endurance=EnduranceModel(mean_writes=5, cv=0.0),
            ecc_entries_per_line=0,
        )
        results = [module.write(0, 1) for _ in range(5)]
        assert results == [True] * 4 + [False]

    def test_wear_counts_tracked(self):
        module, _ = make_module(endurance=EnduranceModel(mean_writes=10_000, cv=0.0))
        for _ in range(7):
            module.write(0, 1)
        assert module.line_write_count(0) == 7
        assert module.write_count_histogram() == [7]

    def test_failed_fraction(self):
        module, _ = make_module()
        module.inject_static_failures(range(module.n_lines // 2))
        assert module.failed_fraction() == pytest.approx(0.5)


class TestClusteredDynamicFailures:
    def test_failure_reported_at_region_edge(self):
        module, _ = make_module(
            endurance=EnduranceModel(mean_writes=3, cv=0.0),
            ecc_entries_per_line=0,
            clustering_enabled=True,
        )
        # Wear out logical line 10 (region 0, even, clusters to start).
        target = 10 * 64
        for _ in range(3):
            module.write(target, 1)
        # Reported at the region edge; the write that failed was at
        # logical line 10.
        assert module.take_pending_failures() == [(0, 10)]
        assert 0 in module.failed_logical_lines()
        # Logical line 10 still works: the swap gave it a healthy line.
        assert 10 not in module.failed_logical_lines()

    def test_multiple_failures_stay_contiguous(self):
        module, _ = make_module(
            endurance=EnduranceModel(mean_writes=2, cv=0.0),
            ecc_entries_per_line=0,
            clustering_enabled=True,
        )
        geometry = module.geometry
        for line in (20, 30, 40):
            span = list(module.clustering.map_for_region(0).working_span())
            assert line in span
            for _ in range(2):  # exactly the endurance threshold
                module.write(geometry.line_address(line), 1)
        failed = module.failed_logical_lines()
        assert failed == {0, 1, 2}
