"""Tests for wear-leveling schemes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.wear_leveling import (
    NoWearLeveling,
    StartGapWearLeveler,
    spread_statistics,
)


class TestNoWearLeveling:
    def test_identity(self):
        leveler = NoWearLeveling()
        for line in (0, 7, 1000):
            assert leveler.translate(line) == line
        leveler.on_write(5)  # no effect, no error


class TestStartGap:
    def test_initial_mapping_is_identity(self):
        leveler = StartGapWearLeveler(domain_lines=8, gap_write_interval=4)
        assert [leveler.translate(i) for i in range(8)] == list(range(8))

    def test_gap_moves_after_interval(self):
        leveler = StartGapWearLeveler(domain_lines=8, gap_write_interval=4)
        for _ in range(4):
            leveler.on_write(0)
        assert leveler.gap_moves == 1

    def test_mapping_changes_as_gap_rotates(self):
        leveler = StartGapWearLeveler(domain_lines=8, gap_write_interval=1)
        before = [leveler.translate(i) for i in range(8)]
        for _ in range(8 + 1):
            leveler.on_write(0)
        after = [leveler.translate(i) for i in range(8)]
        assert before != after

    @given(st.integers(min_value=0, max_value=500))
    def test_mapping_is_always_within_domain(self, writes):
        n = 8
        leveler = StartGapWearLeveler(domain_lines=n, gap_write_interval=3)
        for _ in range(writes):
            leveler.on_write(0)
        translated = [leveler.translate(i) for i in range(n)]
        assert all(0 <= t < n for t in translated)

    def test_domains_are_independent(self):
        leveler = StartGapWearLeveler(domain_lines=4, gap_write_interval=1)
        for _ in range(10):
            leveler.on_write(0)  # domain 0
        # Domain 1 (lines 4..7) untouched: identity mapping.
        assert [leveler.translate(i) for i in range(4, 8)] == [4, 5, 6, 7]

    def test_rotation_counter(self):
        leveler = StartGapWearLeveler(domain_lines=4, gap_write_interval=1)
        # Gap must traverse all 5 slots before start advances.
        for _ in range(5):
            leveler.on_write(0)
        assert leveler.rotation_of(0) == 1

    def test_spreads_hot_line_wear(self):
        # Hammering one logical line must touch several physical lines.
        leveler = StartGapWearLeveler(domain_lines=16, gap_write_interval=2)
        touched = set()
        for _ in range(200):
            leveler.on_write(3)
            touched.add(leveler.translate(3))
        assert len(touched) > 4

    def test_validation(self):
        with pytest.raises(ValueError):
            StartGapWearLeveler(domain_lines=1)
        with pytest.raises(ValueError):
            StartGapWearLeveler(gap_write_interval=0)


class TestSpreadStatistics:
    def test_empty(self):
        stats = spread_statistics([])
        assert stats == {"max_over_mean": 0.0, "cv": 0.0}

    def test_uniform_counts(self):
        stats = spread_statistics([10, 10, 10, 10])
        assert stats["max_over_mean"] == pytest.approx(1.0)
        assert stats["cv"] == pytest.approx(0.0)

    def test_skewed_counts(self):
        stats = spread_statistics([100, 0, 0, 0])
        assert stats["max_over_mean"] == pytest.approx(4.0)
        assert stats["cv"] > 1.0

    def test_all_zero(self):
        assert spread_statistics([0, 0]) == {"max_over_mean": 0.0, "cv": 0.0}
