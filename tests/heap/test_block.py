"""Tests for Immix blocks and false-failure seeding."""

import pytest

from repro.hardware.geometry import Geometry
from repro.heap.block import Block, block_is_perfect, perfect_block
from repro.heap.line_table import FAILED, FREE, LIVE, LIVE_PINNED
from repro.heap.object_model import SimObject
from repro.heap.page_supply import HeapPage

G = Geometry()  # 256 B Immix lines, 4 KB pages, 32 KB blocks


def make_pages(failures=None):
    failures = failures or {}
    return [
        HeapPage(index, frozenset(failures.get(index, ())))
        for index in range(G.pages_per_block)
    ]


class TestConstruction:
    def test_wrong_page_count_rejected(self):
        with pytest.raises(ValueError):
            Block(0, [HeapPage(0)], G)

    def test_perfect_block_is_hole_free(self):
        block = Block(0, make_pages(), G)
        assert block_is_perfect(block)
        assert block.free_line_count() == G.immix_lines_per_block
        assert block.free_runs() == [(0, G.immix_lines_per_block)]

    def test_perfect_block_helper_rejects_holes(self):
        with pytest.raises(ValueError):
            perfect_block(0, make_pages({0: {3}}), G)

    def test_failed_pcm_line_poisons_immix_line(self):
        # PCM line offset 5 of page 0: bytes 320..383, Immix line 1.
        block = Block(0, make_pages({0: {5}}), G)
        assert block.line_states[1] == FAILED
        assert block.failed_line_count() == 1
        # One 64 B failure removes a whole 256 B line: false failure.
        assert block.free_line_count() == G.immix_lines_per_block - 1

    def test_failures_in_later_pages_map_correctly(self):
        # Page 2, PCM offset 0: byte 8192, Immix line 32.
        block = Block(0, make_pages({2: {0}}), G)
        assert block.line_states[32] == FAILED

    def test_multiple_pcm_failures_one_immix_line(self):
        # Offsets 0..3 of page 0 share Immix line 0 at 256 B lines.
        block = Block(0, make_pages({0: {0, 1, 2, 3}}), G)
        assert block.failed_line_count() == 1

    def test_virtual_base(self):
        block = Block(3, make_pages(), G)
        assert block.virtual_base == 3 * G.block


class TestPlacementAndSweep:
    def test_place_binds_object(self):
        block = Block(0, make_pages(), G)
        obj = SimObject(0, 64)
        block.place(obj, 512)
        assert obj.block is block
        assert obj.address == 512
        assert block.allocated_since_gc
        assert block.objects == [obj]

    def test_rebuild_marks_live_lines(self):
        block = Block(0, make_pages({0: {5}}), G)
        live = SimObject(0, 300)
        dead = SimObject(1, 300)
        block.place(live, 512)       # lines 2-3
        block.place(dead, 1024)      # lines 4-5
        live.mark = 7
        live_lines, scanned = block.rebuild_line_marks(epoch=7)
        assert scanned == G.immix_lines_per_block
        assert live_lines == 2
        assert block.line_states[2] == LIVE and block.line_states[3] == LIVE
        assert block.line_states[4] == FREE and block.line_states[5] == FREE
        assert block.line_states[1] == FAILED  # failures persist
        assert block.objects == [live]

    def test_rebuild_keeps_old_when_requested(self):
        block = Block(0, make_pages(), G)
        old = SimObject(0, 64)
        old.old = True
        young_dead = SimObject(1, 64)
        block.place(old, 0)
        block.place(young_dead, 256)
        block.rebuild_line_marks(epoch=9, keep_old=True)
        assert block.objects == [old]

    def test_pinned_lines_marked_pinned(self):
        block = Block(0, make_pages(), G)
        obj = SimObject(0, 64, pinned=True)
        block.place(obj, 0)
        obj.mark = 1
        block.rebuild_line_marks(epoch=1)
        assert block.line_states[0] == LIVE_PINNED

    def test_sweep_never_masks_failed_lines(self):
        # A surviving object overlapping a FAILED line (pinned, or an
        # aborted evacuation) must not overwrite the mark with LIVE: a
        # later sweep would hand the failed line back to the allocator.
        block = Block(0, make_pages({0: {0}}), G)  # Immix line 0 failed
        obj = SimObject(0, 300, pinned=True)  # spans lines 0-1
        block.place(obj, 0)
        obj.mark = 1
        block.rebuild_line_marks(epoch=1)
        assert block.line_states[0] == FAILED
        assert block.line_states[1] == LIVE_PINNED
        assert (obj.oid, 0) in block.mark_conflicts

    def test_sweep_resets_stale_conflicts(self):
        block = Block(0, make_pages({0: {0}}), G)
        obj = SimObject(0, 64, pinned=True)
        block.place(obj, 0)
        obj.mark = 1
        block.rebuild_line_marks(epoch=1)
        assert block.mark_conflicts == [(obj.oid, 0)]
        # The object dies; the next sweep clears the recorded conflict.
        block.rebuild_line_marks(epoch=2)
        assert block.mark_conflicts == []
        assert block.line_states[0] == FAILED

    def test_objects_overlapping_line(self):
        block = Block(0, make_pages(), G)
        a = SimObject(0, 300)
        block.place(a, 0)  # lines 0-1
        assert block.objects_overlapping_line(1) == [a]
        assert block.objects_overlapping_line(2) == []


class TestDynamicFailure:
    def test_dynamic_failure_flags_evacuation(self):
        block = Block(0, make_pages(), G)
        line, newly_failed = block.record_dynamic_failure(page_slot=1, pcm_offset=4)
        # Page 1 starts at Immix line 16; offset 4 -> line 17.
        assert line == 17
        assert newly_failed
        assert block.evacuate
        assert block.line_states[17] == FAILED

    def test_duplicate_pcm_failure_is_not_new(self):
        # PCM offsets 4 and 5 of page 1 both poison Immix line 17
        # (4 PCM lines per 256 B Immix line): the second hit is a
        # duplicate and must not re-flag the block for evacuation.
        block = Block(0, make_pages(), G)
        line1, new1 = block.record_dynamic_failure(page_slot=1, pcm_offset=4)
        assert (line1, new1) == (17, True)
        block.evacuate = False  # as if the forced collection already ran
        line2, new2 = block.record_dynamic_failure(page_slot=1, pcm_offset=5)
        assert (line2, new2) == (17, False)
        assert not block.evacuate
        assert block.line_states[17] == FAILED

    def test_page_slot_of_line(self):
        block = Block(0, make_pages(), G)
        assert block.page_slot_of_line(0) == 0
        assert block.page_slot_of_line(16) == 1
        assert block.page_slot_of_line(127) == 7


class TestMetrics:
    def test_usable_bytes(self):
        block = Block(0, make_pages({0: {0}}), G)
        assert block.usable_bytes() == (G.immix_lines_per_block - 1) * G.immix_line

    def test_wholly_free_requires_no_failures(self):
        assert Block(0, make_pages(), G).is_wholly_free()
        assert not Block(0, make_pages({0: {0}}), G).is_wholly_free()

    def test_largest_hole_bytes(self):
        block = Block(0, make_pages(), G)
        assert block.largest_hole_bytes() == G.block
