"""Whole-heap structure-of-arrays table tests (heap/heap_table.py).

The flat :class:`~repro.heap.heap_table.HeapTable` must agree with the
per-slot reference twins on every kernel, for every slot population —
including the edges the ISSUE calls out: an empty heap, all-FAILED
segments, and single-line free runs butting against block boundaries
(the guard byte must keep them from merging). Hypothesis drives
arbitrary segment contents and retire patterns; hand-built cases pin
the edges and the LineSegment view semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.geometry import Geometry
from repro.heap import line_table
from repro.heap.heap_table import UNMAPPED, HeapTable, LineSegment
from repro.heap.line_table import FAILED, FREE, LIVE, LIVE_PINNED

GEOMETRY = Geometry()
N_LINES = GEOMETRY.immix_lines_per_block


@pytest.fixture(autouse=True)
def _restore_kernel_mode():
    previous = line_table.kernel_mode()
    yield
    line_table.set_kernel_mode(previous)


class Owner:
    """Stand-in block: just enough surface for LineSegment writes."""

    def __init__(self, table):
        self.table = table
        self.touched = 0
        self.slot = table.register(self)
        self.segment = LineSegment(table, self.slot, self)

    def touch_lines(self):
        self.touched += 1
        self.table.touch()


def fill(table, slot, states):
    base = table.base(slot)
    table.lines[base : base + len(states)] = bytes(states)
    for i, state in enumerate(states):
        table.fail_marks[base + i] = 1 if state == FAILED else 0
    table.touch()


def reference_results(table):
    previous = line_table.set_kernel_mode("reference")
    try:
        return (
            table.free_line_count(),
            table.failed_line_count(),
            table.slots_with_free_lines(),
            [table.free_lines_in(s) for s in table.active_slots()],
            [table.failed_lines_in(s) for s in table.active_slots()],
        )
    finally:
        line_table.set_kernel_mode(previous)


def fast_results(table):
    previous = line_table.set_kernel_mode("fast")
    try:
        return (
            table.free_line_count(),
            table.failed_line_count(),
            table.slots_with_free_lines(),
            [table.free_lines_in(s) for s in table.active_slots()],
            [table.failed_lines_in(s) for s in table.active_slots()],
        )
    finally:
        line_table.set_kernel_mode(previous)


line_state = st.sampled_from([FREE, LIVE, LIVE_PINNED, FAILED])
segment_states = st.lists(line_state, min_size=N_LINES, max_size=N_LINES)


class TestKernelEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(
        segments=st.lists(segment_states, min_size=0, max_size=4),
        retire_mask=st.lists(st.booleans(), min_size=4, max_size=4),
    )
    def test_fast_matches_reference(self, segments, retire_mask):
        table = HeapTable(GEOMETRY)
        slots = []
        for states in segments:
            slot = table.register(object())
            fill(table, slot, states)
            slots.append(slot)
        for slot, retired in zip(slots, retire_mask):
            if retired:
                table.retire(slot)
        assert fast_results(table) == reference_results(table)

    def test_empty_heap(self):
        table = HeapTable(GEOMETRY)
        assert fast_results(table) == reference_results(table)
        assert table.free_line_count() == 0
        assert table.slots_with_free_lines() == []

    def test_all_failed_segments(self):
        table = HeapTable(GEOMETRY)
        for _ in range(3):
            fill(table, table.register(object()), [FAILED] * N_LINES)
        assert table.free_line_count() == 0
        assert table.failed_line_count() == 3 * N_LINES
        assert table.slots_with_free_lines() == []
        assert fast_results(table) == reference_results(table)

    def test_single_line_runs_at_block_boundaries(self):
        # A FREE line ending one segment and a FREE line starting the
        # next: the guard byte must keep the flat scan from treating
        # them as one run spanning two blocks.
        table = HeapTable(GEOMETRY)
        first = table.register(object())
        second = table.register(object())
        fill(table, first, [LIVE] * (N_LINES - 1) + [FREE])
        fill(table, second, [FREE] + [LIVE] * (N_LINES - 1))
        assert table.free_line_count() == 2
        assert table.slots_with_free_lines() == [first, second]
        assert table.free_lines_in(first) == 1
        assert table.free_lines_in(second) == 1
        assert fast_results(table) == reference_results(table)

    def test_retired_hole_mid_heap(self):
        table = HeapTable(GEOMETRY)
        slots = [table.register(object()) for _ in range(3)]
        for slot in slots:
            fill(table, slot, [FREE] * N_LINES)
        table.retire(slots[1])
        assert table.slots_with_free_lines() == [slots[0], slots[2]]
        assert table.free_line_count() == 2 * N_LINES
        assert fast_results(table) == reference_results(table)


class TestSlotLifecycle:
    def test_register_lays_out_guard_bytes(self):
        table = HeapTable(GEOMETRY)
        a = table.register(object())
        b = table.register(object())
        assert len(table.lines) == 2 * table.stride
        for slot in (a, b):
            assert table.lines[table.base(slot) + N_LINES] == UNMAPPED

    def test_retire_blanks_and_recycles_lifo(self):
        table = HeapTable(GEOMETRY)
        slots = [table.register(object()) for _ in range(3)]
        for slot in slots:
            fill(table, slot, [FREE] * N_LINES)
        table.retire(slots[0])
        table.retire(slots[2])
        base = table.base(slots[0])
        assert bytes(table.lines[base : base + N_LINES]) == bytes([UNMAPPED]) * N_LINES
        assert bytes(table.fail_marks[base : base + N_LINES]) == bytes(N_LINES)
        # LIFO recycling: the most recently retired slot comes back first.
        assert table.register(object()) == slots[2]
        assert table.register(object()) == slots[0]
        # A recycled slot starts FREE again.
        assert table.free_lines_in(slots[2]) == N_LINES

    def test_retire_is_idempotent(self):
        table = HeapTable(GEOMETRY)
        slot = table.register(object())
        table.retire(slot)
        table.retire(slot)
        assert table.active_slots() == []
        assert table.register(object()) == slot
        assert table.active_slots() == [slot]

    def test_mutations_bump_generation(self):
        table = HeapTable(GEOMETRY)
        before = table.generation
        slot = table.register(object())
        assert table.generation > before
        count = table.free_line_count()
        base = table.base(slot)
        table.lines[base] = LIVE
        table.touch()
        assert table.free_line_count() == count - 1


class TestLineSegment:
    def test_sequence_protocol(self):
        table = HeapTable(GEOMETRY)
        owner = Owner(table)
        seg = owner.segment
        assert len(seg) == N_LINES
        assert seg[0] == FREE
        assert seg[-1] == FREE
        assert bytes(seg) == bytes(N_LINES)
        assert seg == bytes(N_LINES)
        assert list(iter(seg))[:3] == [FREE, FREE, FREE]
        assert seg.count(FREE) == N_LINES
        with pytest.raises(IndexError):
            seg[N_LINES]

    def test_writes_touch_owner_and_stay_in_segment(self):
        table = HeapTable(GEOMETRY)
        left = Owner(table)
        right = Owner(table)
        left.segment[N_LINES - 1] = LIVE
        assert left.touched == 1
        # The write lands inside left's segment; the guard byte and the
        # right neighbour are untouched.
        assert table.lines[table.base(left.slot) + N_LINES] == UNMAPPED
        assert right.segment == bytes(N_LINES)
        left.segment[0:4] = bytes([FAILED] * 4)
        assert left.touched == 2
        assert left.segment[0:4] == bytes([FAILED] * 4)

    def test_writes_cannot_resize(self):
        table = HeapTable(GEOMETRY)
        owner = Owner(table)
        with pytest.raises(ValueError):
            owner.segment[0:2] = bytes(3)

    def test_translate_and_slicing(self):
        table = HeapTable(GEOMETRY)
        owner = Owner(table)
        owner.segment[0] = LIVE
        mapping = bytearray(range(256))
        mapping[LIVE] = FREE
        assert owner.segment.translate(bytes(mapping)) == bytes(N_LINES)
        assert owner.segment[::2] == bytes(owner.segment)[::2]

    @settings(max_examples=25, deadline=None)
    @given(states=segment_states)
    def test_view_equals_bytes_semantics(self, states):
        table = HeapTable(GEOMETRY)
        owner = Owner(table)
        owner.segment[0:N_LINES] = bytes(states)
        raw = bytes(states)
        seg = owner.segment
        assert bytes(seg) == raw
        assert seg == raw
        assert seg.count(FREE) == raw.count(FREE)
        assert seg.count(FAILED, 3, 17) == raw.count(FAILED, 3, 17)
        assert [seg[i] for i in range(len(raw))] == list(raw)
