"""Tests for the large object space."""

import pytest

from repro.hardware.geometry import Geometry
from repro.heap.large_object_space import LargeObjectSpace
from repro.heap.object_model import SimObject
from repro.heap.page_supply import HeapPage, PageSupply

G = Geometry()


def make_los(perfect=8, imperfect=0):
    pages = [HeapPage(i) for i in range(perfect)]
    pages += [HeapPage(perfect + i, frozenset({0})) for i in range(imperfect)]
    supply = PageSupply(pages, G)
    return LargeObjectSpace(supply, G), supply


class TestAllocation:
    def test_pages_needed_rounds_up(self):
        los, _ = make_los()
        assert los.pages_needed(1) == 1
        assert los.pages_needed(G.page) == 1
        assert los.pages_needed(G.page + 1) == 2

    def test_allocate_places_object(self):
        los, supply = make_los(perfect=8)
        obj = SimObject(0, 3 * G.page)
        assert los.allocate(obj)
        assert obj.is_large
        assert obj.los_placement.n_pages == 3
        assert obj.address is not None
        assert los.pages_in_use == 3
        assert supply.accountant.satisfied_from_pcm == 3

    def test_allocation_uses_only_perfect_pages_or_borrows(self):
        los, supply = make_los(perfect=0, imperfect=8)
        obj = SimObject(0, G.page)
        assert los.allocate(obj)
        assert obj.los_placement.pages[0].borrowed
        assert supply.accountant.debt == 1

    def test_failed_allocation_reports_false(self):
        los, _ = make_los(perfect=8, imperfect=0)
        # 12 pages needed: 8 perfect exist; borrowing the rest needs
        # parkable free pages, which have all been consumed.
        obj = SimObject(0, 12 * G.page)
        assert not los.allocate(obj)
        assert los.failed_allocations == 1

    def test_virtual_addresses_disjoint(self):
        los, _ = make_los(perfect=8)
        a, b = SimObject(0, G.page), SimObject(1, G.page)
        los.allocate(a)
        los.allocate(b)
        assert a.address != b.address
        assert abs(a.address - b.address) >= G.page


class TestFreeAndSweep:
    def test_free_returns_pages(self):
        los, supply = make_los(perfect=8)
        obj = SimObject(0, 2 * G.page)
        los.allocate(obj)
        los.free(obj)
        assert los.pages_in_use == 0
        assert supply.free_perfect == 8
        assert not obj.is_large

    def test_double_free_rejected(self):
        los, _ = make_los()
        obj = SimObject(0, G.page)
        los.allocate(obj)
        los.free(obj)
        with pytest.raises(ValueError):
            los.free(obj)

    def test_sweep_frees_unmarked(self):
        los, _ = make_los(perfect=8)
        live, dead = SimObject(0, G.page), SimObject(1, G.page)
        los.allocate(live)
        los.allocate(dead)
        live.mark = 5
        freed = los.sweep(epoch=5)
        assert len(freed) == 1
        assert len(los) == 1
        assert los.objects() == [live]

    def test_sweep_keep_old(self):
        los, _ = make_los(perfect=8)
        old = SimObject(0, G.page)
        old.old = True
        young_dead = SimObject(1, G.page)
        los.allocate(old)
        los.allocate(young_dead)
        freed = los.sweep(epoch=9, keep_old=True)
        assert len(freed) == 1
        assert los.objects() == [old]

    def test_peak_pages(self):
        los, _ = make_los(perfect=8)
        a = SimObject(0, 4 * G.page)
        los.allocate(a)
        los.free(a)
        b = SimObject(1, G.page)
        los.allocate(b)
        assert los.peak_pages == 4
