"""Tests for line states and free-run computation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap import line_table
from repro.heap.line_table import FAILED, FREE, LIVE, LIVE_PINNED


def states(*chars):
    mapping = {".": FREE, "L": LIVE, "P": LIVE_PINNED, "X": FAILED}
    return bytearray(mapping[c] for c in "".join(chars))


class TestFreeRuns:
    def test_empty(self):
        assert line_table.free_runs(bytearray()) == []

    def test_all_free(self):
        assert line_table.free_runs(states("....")) == [(0, 4)]

    def test_holes_split_runs(self):
        assert line_table.free_runs(states("..X..L.")) == [(0, 2), (3, 2), (6, 1)]

    def test_no_free(self):
        assert line_table.free_runs(states("XXLL")) == []

    def test_trailing_run(self):
        assert line_table.free_runs(states("L...")) == [(1, 3)]

    @given(st.binary(min_size=0, max_size=64).map(bytearray))
    def test_runs_partition_free_lines(self, raw):
        table = bytearray(b % 4 for b in raw)
        runs = line_table.free_runs(table)
        covered = set()
        for start, length in runs:
            assert length > 0
            for line in range(start, start + length):
                assert table[line] == FREE
                covered.add(line)
        free = {i for i, s in enumerate(table) if s == FREE}
        assert covered == free


class TestAggregates:
    def test_largest_free_run(self):
        assert line_table.largest_free_run(states("..X....L..")) == 4
        assert line_table.largest_free_run(states("XX")) == 0

    def test_count_state(self):
        table = states("..XLP")
        assert line_table.count_state(table, FREE) == 2
        assert line_table.count_state(table, FAILED) == 1
        assert line_table.count_state(table, LIVE_PINNED) == 1

    def test_fragmentation_index(self):
        assert line_table.fragmentation_index(states("....")) == 0.0
        assert line_table.fragmentation_index(states("..X..")) == pytest.approx(0.5)
        assert line_table.fragmentation_index(states("XX")) == 0.0

    def test_state_names(self):
        assert line_table.state_name(FREE) == "free"
        assert line_table.state_name(FAILED) == "failed"
        assert "?" in line_table.state_name(42)
