"""Fast-vs-reference kernel equivalence (property + edge-case tests).

The vectorized kernels in :mod:`repro.heap.line_table`,
:class:`repro.heap.block.Block`, and the OS failure table must be
bit-identical to the retained pure-Python reference implementations on
every input — that is what lets ``REPRO_KERNELS`` switch between them
without perturbing any experiment. Hypothesis drives arbitrary line
tables; hand-built cases pin the edges (empty, all-FAILED, all-FREE,
single-line runs at both boundaries).
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.geometry import Geometry
from repro.heap import line_table
from repro.heap.block import Block, sorted_defrag_candidates
from repro.heap.line_table import FAILED, FREE, LIVE, LIVE_PINNED
from repro.heap.object_model import ObjectFactory
from repro.heap.page_supply import HeapPage
from repro.sim.microbench import (
    MULTI_LINE_OBJECT_SIZES,
    build_synthetic_block,
    build_synthetic_failure_table,
    synthetic_line_tables,
)


@pytest.fixture(autouse=True)
def _restore_kernel_mode():
    previous = line_table.kernel_mode()
    yield
    line_table.set_kernel_mode(previous)


def in_reference_mode(fn, *args, **kwargs):
    previous = line_table.set_kernel_mode("reference")
    try:
        return fn(*args, **kwargs)
    finally:
        line_table.set_kernel_mode(previous)


def states(*chars):
    mapping = {".": FREE, "L": LIVE, "P": LIVE_PINNED, "X": FAILED}
    return bytearray(mapping[c] for c in "".join(chars))


#: Hand-built edge tables: the shapes most likely to break a scanning
#: kernel's boundary arithmetic.
EDGE_TABLES = [
    bytearray(),                     # empty
    states("."),                     # single free line
    states("X"),                     # single failed line
    states("...."),                  # all free
    states("XXXX"),                  # all failed
    states("LLLL"),                  # all live (no runs)
    states(".LLL"),                  # single-line run at the left edge
    states("LLL."),                  # single-line run at the right edge
    states(".LL."),                  # single-line runs at both edges
    states(".L.L."),                 # alternating, free at both edges
    states("L.L.L"),                 # alternating, live at both edges
    states("..XP..LX.."),            # mixed states, multiple runs
]


class TestKernelModeSwitch:
    def test_set_returns_previous_and_applies(self):
        line_table.set_kernel_mode("fast")
        assert line_table.kernel_mode() == "fast"
        assert not line_table.use_reference_kernels()
        assert line_table.set_kernel_mode("reference") == "fast"
        assert line_table.use_reference_kernels()
        assert line_table.set_kernel_mode("fast") == "reference"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            line_table.set_kernel_mode("turbo")

    def test_reference_mode_routes_free_runs(self):
        table = states("..L.")
        line_table.set_kernel_mode("reference")
        assert line_table.free_runs(table) == [(0, 2), (3, 1)]


class TestScanEquivalence:
    @pytest.mark.parametrize("table", EDGE_TABLES, ids=repr)
    def test_edges(self, table):
        assert line_table.free_runs(table) == line_table.free_runs_reference(table)
        fast = line_table.free_run_summary(table)
        reference = in_reference_mode(line_table.free_run_summary, table)
        assert fast == reference
        assert line_table.fragmentation_index(
            table
        ) == line_table.fragmentation_index_reference(table)
        assert line_table.largest_free_run(
            table
        ) == line_table.largest_free_run_reference(table)

    @given(st.binary(min_size=0, max_size=600).map(bytearray))
    def test_free_runs_property(self, raw):
        table = bytearray(b % 4 for b in raw)
        assert line_table.free_runs(table) == line_table.free_runs_reference(table)

    @given(st.binary(min_size=0, max_size=600).map(bytearray))
    def test_summary_property(self, raw):
        table = bytearray(b % 4 for b in raw)
        fast = line_table.free_run_summary(table)
        reference = in_reference_mode(line_table.free_run_summary, table)
        assert fast == reference
        assert fast.free_lines == line_table.count_state(table, FREE)

    @given(st.binary(min_size=0, max_size=600).map(bytearray))
    def test_fragmentation_index_property(self, raw):
        table = bytearray(b % 4 for b in raw)
        # Bit-identical floats, not approximately equal: both paths must
        # execute the same final division.
        assert line_table.fragmentation_index(
            table
        ) == line_table.fragmentation_index_reference(table)

    def test_synthetic_profiles_agree(self):
        for immix_line in (64, 128, 256):
            geometry = Geometry(immix_line=immix_line)
            for table in synthetic_line_tables(
                geometry.immix_lines_per_block
            ).values():
                assert line_table.free_runs(
                    table
                ) == line_table.free_runs_reference(table)


# ======================================================================
# Block: cached summary, vectorized sweep, extent index
# ======================================================================
def fresh_block(geometry=None, failed=(3, 17)):
    geometry = geometry or Geometry()
    pages = [HeapPage(i, frozenset()) for i in range(geometry.pages_per_block)]
    block = Block(0, pages, geometry)
    for line in failed:
        block.failed_lines.add(line)
        block.line_states[line] = FAILED
        block.touch_lines()
    return block


class TestBlockSummaryCache:
    def test_cache_hit_returns_same_object(self):
        line_table.set_kernel_mode("fast")
        block = fresh_block()
        assert block.line_summary() is block.line_summary()

    def test_line_mutation_invalidates(self):
        block = fresh_block()
        before = block.line_summary()
        block.line_states[40] = LIVE
        block.touch_lines()
        after = block.line_summary()
        assert after is not before
        assert after.free_lines == before.free_lines - 1

    def test_place_keeps_summary_live(self):
        # Allocation never mutates line states, so the cached summary
        # must survive placements (the original code rescanned the
        # unchanged table; same answer either way).
        line_table.set_kernel_mode("fast")
        block = fresh_block()
        before = block.line_summary()
        block.place(ObjectFactory().make(64), 0)
        assert block.line_summary() is before

    def test_accessors_match_reference_mode(self):
        block = build_synthetic_block(Geometry(), seed=5)
        fast = (
            block.free_runs(),
            block.free_line_count(),
            block.usable_bytes(),
            block.largest_hole_bytes(),
            block.fragmentation_index(),
        )
        reference = in_reference_mode(
            lambda: (
                block.free_runs(),
                block.free_line_count(),
                block.usable_bytes(),
                block.largest_hole_bytes(),
                block.fragmentation_index(),
            )
        )
        assert fast == reference

    def test_reference_mode_bypasses_cache(self):
        block = fresh_block()
        block.line_summary()
        line_table.set_kernel_mode("reference")
        # Mutate WITHOUT touching: the reference path recomputes per
        # query, so it must see the change the stale cache would miss.
        block.line_states[40] = LIVE
        assert block.line_summary().free_lines == block.n_lines - 3


def sweep_state(block):
    return (
        bytes(block.line_states),
        list(block.mark_conflicts),
        [obj.oid for obj in block.objects],
        block.allocated_since_gc,
    )


class TestSweepEquivalence:
    @pytest.mark.parametrize("immix_line", [64, 128, 256])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_blocks(self, immix_line, seed):
        geometry = Geometry(immix_line=immix_line)
        fast = build_synthetic_block(geometry, seed, pinned_weight=0.2)
        reference = build_synthetic_block(geometry, seed, pinned_weight=0.2)
        # Kill a deterministic subset so the sweep drops objects too.
        for block in (fast, reference):
            rng = random.Random(seed)
            for obj in block.objects:
                if rng.random() < 0.3:
                    obj.mark = 0
        fast_counts = fast.rebuild_line_marks(1)
        reference_counts = in_reference_mode(reference.rebuild_line_marks, 1)
        assert fast_counts == reference_counts
        assert sweep_state(fast) == sweep_state(reference)

    def test_multi_line_objects(self):
        geometry = Geometry(immix_line=64)
        fast = build_synthetic_block(
            geometry, 7, object_sizes=MULTI_LINE_OBJECT_SIZES
        )
        reference = build_synthetic_block(
            geometry, 7, object_sizes=MULTI_LINE_OBJECT_SIZES
        )
        assert fast.rebuild_line_marks(1) == in_reference_mode(
            reference.rebuild_line_marks, 1
        )
        assert sweep_state(fast) == sweep_state(reference)

    def test_keep_old_sticky_sweep(self):
        fast = build_synthetic_block(Geometry(), 3)
        reference = build_synthetic_block(Geometry(), 3)
        for block in (fast, reference):
            for index, obj in enumerate(block.objects):
                obj.mark = 0
                obj.old = index % 3 == 0
        assert fast.rebuild_line_marks(9, keep_old=True) == in_reference_mode(
            reference.rebuild_line_marks, 9, keep_old=True
        )
        assert sweep_state(fast) == sweep_state(reference)

    def test_conflicts_recorded_for_survivor_on_failed_line(self):
        geometry = Geometry()
        fast = fresh_block(geometry, failed=(2,))
        reference = fresh_block(geometry, failed=(2,))
        for block in (fast, reference):
            obj = ObjectFactory().make(3 * geometry.immix_line, pinned=True)
            obj.oid = 99
            obj.mark = 1
            block.place(obj, geometry.immix_line)  # spans lines 1..3
        fast.rebuild_line_marks(1)
        in_reference_mode(reference.rebuild_line_marks, 1)
        assert fast.mark_conflicts == [(99, 2)]
        assert sweep_state(fast) == sweep_state(reference)


class TestExtentIndex:
    def test_matches_reference_lookup(self):
        block = build_synthetic_block(Geometry(), seed=11)
        for line in range(block.n_lines):
            fast = [o.oid for o in block.objects_overlapping_line(line)]
            reference = in_reference_mode(
                lambda: [o.oid for o in block.objects_overlapping_line(line)]
            )
            assert fast == reference

    def test_remove_object_invalidates(self):
        block = build_synthetic_block(Geometry(), seed=11)
        victim = block.objects[0]
        line = victim.offset // block.geometry.immix_line
        assert victim in block.objects_overlapping_line(line)
        block.remove_object(victim)
        assert victim not in block.objects_overlapping_line(line)

    def test_replace_objects_invalidates(self):
        block = build_synthetic_block(Geometry(), seed=11)
        keep = block.objects[: len(block.objects) // 2]
        block.replace_objects(list(keep))
        indexed, starts = block.extent_index()
        assert sorted(o.oid for o in indexed) == sorted(o.oid for o in keep)
        assert starts == sorted(starts)

    def test_duplicate_offsets_do_not_crash(self):
        # A corrupted heap (two objects at one offset) must still index:
        # the auditor reports the overlap instead of dying inside sort.
        block = fresh_block()
        factory = ObjectFactory()
        for _ in range(2):
            block.place(factory.make(64), 128)
        objs, _starts = block.extent_index()
        assert len(objs) == 2
        assert block.objects_overlapping_line(0)


class TestDefragOrdering:
    def test_matches_plain_sorted_and_keeps_tie_order(self):
        from repro.heap.block import sort_key_most_holes

        blocks = [build_synthetic_block(Geometry(), seed=s) for s in range(6)]
        blocks += [fresh_block(), fresh_block()]  # guaranteed tie pair
        expected = sorted(blocks, key=sort_key_most_holes)
        assert sorted_defrag_candidates(blocks) == expected
        assert sorted_defrag_candidates(blocks) == in_reference_mode(
            lambda: sorted_defrag_candidates(blocks)
        )


# ======================================================================
# OS failure table
# ======================================================================
class TestFailureTableEquivalence:
    def test_decode_matches_reference(self):
        table = build_synthetic_failure_table(Geometry(), seed=4)
        pages = table.imperfect_pages()
        fast = (
            table.failed_line_count(),
            table.compressed_size_bytes(),
            {page: set(table.failed_offsets(page)) for page in pages},
        )
        reference = in_reference_mode(
            lambda: (
                table.failed_line_count(),
                table.compressed_size_bytes(),
                {page: set(table.failed_offsets(page)) for page in pages},
            )
        )
        assert fast == reference

    def test_incremental_count_tracks_records(self):
        geometry = Geometry()
        table = build_synthetic_failure_table(geometry, failures=50, seed=2)
        before = table.failed_line_count()
        page = table.imperfect_pages()[0]
        # Recording an already-failed line must not double count.
        offset = next(iter(table.failed_offsets(page)))
        table.record_failure(page, offset)
        assert table.failed_line_count() == before
        fresh = next(p for p in range(table.n_pages) if table.is_perfect(p))
        table.record_failure(fresh, 0)
        assert table.failed_line_count() == before + 1
        assert table.failed_line_count() == in_reference_mode(
            table.failed_line_count
        )

    def test_restore_round_trip(self):
        geometry = Geometry()
        table = build_synthetic_failure_table(geometry, failures=80, seed=6)
        from repro.osim.failure_table import FailureTable

        restored = FailureTable.restore(table.save(), table.n_pages, geometry)
        assert restored.failed_line_count() == table.failed_line_count()
        assert restored.compressed_size_bytes() == table.compressed_size_bytes()
