"""Tests for the simulated object model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.heap.object_model import (
    ALIGNMENT,
    HEADER_BYTES,
    ObjectFactory,
    SimObject,
    aligned_size,
    reachable_from,
)


class TestAlignedSize:
    def test_includes_header(self):
        assert aligned_size(0) == HEADER_BYTES

    def test_rounds_to_alignment(self):
        assert aligned_size(1) % ALIGNMENT == 0
        assert aligned_size(24) == 32  # 24 + 8 header

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            aligned_size(-1)

    @given(st.integers(min_value=0, max_value=1 << 20))
    def test_always_aligned_and_sufficient(self, size):
        total = aligned_size(size)
        assert total % ALIGNMENT == 0
        assert total >= size + HEADER_BYTES


class TestSimObject:
    def test_unplaced_has_no_address(self):
        obj = SimObject(0, 64)
        assert obj.address is None
        assert not obj.is_large

    def test_line_span_requires_placement(self):
        obj = SimObject(0, 64)
        with pytest.raises(ValueError):
            obj.line_span(256)

    def test_line_span_spans_lines(self):
        class FakeBlock:
            virtual_base = 0

        obj = SimObject(0, 300)
        obj.block = FakeBlock()
        obj.offset = 200
        # Bytes 200..499 with 256 B lines -> lines 0 and 1.
        assert list(obj.line_span(256)) == [0, 1]

    def test_refs(self):
        a, b = SimObject(0, 16), SimObject(1, 16)
        a.add_ref(b)
        assert a.refs == [b]
        a.clear_refs()
        assert a.refs == []

    def test_repr_mentions_pin(self):
        assert "pinned" in repr(SimObject(0, 16, pinned=True))


class TestObjectFactory:
    def test_unique_ids_and_totals(self):
        factory = ObjectFactory()
        a = factory.make(24)
        b = factory.make(24)
        assert a.oid != b.oid
        assert factory.allocated_objects == 2
        assert factory.allocated_bytes == a.size + b.size


class TestReachability:
    def build_graph(self):
        objs = [SimObject(i, 16) for i in range(6)]
        # 0 -> 1 -> 2, 3 -> 4, 5 isolated.
        objs[0].add_ref(objs[1])
        objs[1].add_ref(objs[2])
        objs[3].add_ref(objs[4])
        return objs

    def test_transitive_closure(self):
        objs = self.build_graph()
        live = reachable_from([objs[0]], epoch=1)
        assert {o.oid for o in live} == {0, 1, 2}
        assert all(o.mark == 1 for o in live)
        assert objs[5].mark == 0

    def test_multiple_roots(self):
        objs = self.build_graph()
        live = reachable_from([objs[0], objs[3]], epoch=2)
        assert {o.oid for o in live} == {0, 1, 2, 3, 4}

    def test_cycles_terminate(self):
        a, b = SimObject(0, 16), SimObject(1, 16)
        a.add_ref(b)
        b.add_ref(a)
        live = reachable_from([a], epoch=7)
        assert {o.oid for o in live} == {0, 1}

    def test_epoch_isolation(self):
        objs = self.build_graph()
        reachable_from([objs[0]], epoch=1)
        live = reachable_from([objs[0]], epoch=2)
        assert {o.oid for o in live} == {0, 1, 2}

    def test_already_marked_roots_skipped(self):
        a = SimObject(0, 16)
        a.mark = 3
        assert reachable_from([a], epoch=3) == []
